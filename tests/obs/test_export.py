"""Prometheus exposition: rendering, parsing, the live HTTP endpoint."""

from __future__ import annotations

import urllib.request

import pytest

from repro.obs.export import (
    CONTENT_TYPE,
    MetricsExporter,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry, metrics


class TestNames:
    def test_prefix_and_dots(self):
        assert (
            sanitize_metric_name("net.pictures.sent")
            == "repro_net_pictures_sent"
        )

    def test_invalid_chars_replaced(self):
        name = sanitize_metric_name("a-b c/d")
        assert " " not in name and "-" not in name and "/" not in name


class TestRender:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("net.pictures.sent").inc(5)
        reg.gauge("serve.queue.depth").set(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("serve.task.ms").observe(v)
        return reg

    def test_counters_as_total(self):
        text = render_exposition(self._registry().snapshot())
        assert "# TYPE repro_net_pictures_sent_total counter" in text
        assert "repro_net_pictures_sent_total 5" in text

    def test_gauges_with_max(self):
        text = render_exposition(self._registry().snapshot())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_queue_depth_max 3" in text

    def test_histograms_as_summaries(self):
        text = render_exposition(self._registry().snapshot())
        assert "# TYPE repro_serve_task_ms summary" in text
        assert 'repro_serve_task_ms{quantile="0.5"}' in text
        assert "repro_serve_task_ms_count 4" in text
        assert "repro_serve_task_ms_sum 10" in text

    def test_round_trip_through_parser(self):
        text = render_exposition(self._registry().snapshot())
        series = parse_exposition(text)
        assert series["repro_net_pictures_sent_total"] == 5.0
        assert series["repro_serve_queue_depth"] == 3.0
        assert 1.0 <= series['repro_serve_task_ms{quantile="0.5"}'] <= 4.0
        assert series["repro_serve_task_ms_count"] == 4.0

    def test_empty_snapshot_renders(self):
        text = render_exposition(MetricsRegistry().snapshot())
        assert parse_exposition(text) == {}


class TestHTTPEndpoint:
    def test_scrape_over_http(self):
        metrics().counter("net.pictures.sent").inc(7)
        exporter = MetricsExporter()
        port = exporter.start()
        try:
            url = f"http://127.0.0.1:{port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode()
        finally:
            exporter.stop()
        series = parse_exposition(body)
        assert series["repro_net_pictures_sent_total"] == 7.0
        # The scrape metered itself.
        assert "repro_obs_export_scrapes_total" in series

    def test_unknown_path_404(self):
        exporter = MetricsExporter()
        port = exporter.start()
        try:
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/nope"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=5)
            assert err.value.code == 404
        finally:
            exporter.stop()

    def test_exporter_url_property(self):
        exporter = MetricsExporter()
        port = exporter.start()
        try:
            assert exporter.url == f"http://127.0.0.1:{port}/metrics"
        finally:
            exporter.stop()

    def test_stop_is_idempotent(self):
        exporter = MetricsExporter()
        exporter.start()
        exporter.stop()
        exporter.stop()

    def test_scrapes_own_registry_not_global(self):
        reg = MetricsRegistry()
        reg.counter("custom.thing").inc()
        metrics().counter("net.pictures.sent").inc()
        exporter = MetricsExporter(registry=reg)
        port = exporter.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as resp:
                body = resp.read().decode()
        finally:
            exporter.stop()
        series = parse_exposition(body)
        assert "repro_custom_thing_total" in series
        assert "repro_net_pictures_sent_total" not in series
