"""End-to-end codec: encoder -> bitstream -> decoder invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream import find_start_codes
from repro.bitstream.emulation import contains_start_code_prefix
from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder, decode_sequence
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import build_index
from repro.video.metrics import psnr, sequence_psnr
from repro.video.synthetic import SyntheticVideo


class TestStreamStructure:
    def test_index_layout(self, small_stream):
        idx = build_index(small_stream)
        assert idx.sequence_header.width == 64
        assert idx.sequence_header.height == 48
        assert len(idx.gops) == 1
        assert len(idx.gops[0].pictures) == 13
        assert idx.slices_per_picture == 3  # 48/16 rows
        assert idx.gops[0].closed_gop

    def test_picture_types_follow_gop_structure(self, small_stream):
        idx = build_index(small_stream)
        letters = "".join(
            p.picture_type.letter for p in idx.gops[0].pictures
        )
        assert letters == "IPBBPBBPBBPBB"  # coding order for IBBP..., M=3

    def test_temporal_references_are_display_positions(self, small_stream):
        idx = build_index(small_stream)
        trefs = sorted(p.temporal_reference for p in idx.gops[0].pictures)
        assert trefs == list(range(13))

    def test_slice_start_codes_carry_rows(self, small_stream):
        idx = build_index(small_stream)
        for pic in idx.gops[0].pictures:
            rows = [s.vertical_position for s in pic.slices]
            assert rows == [1, 2, 3]

    def test_no_emulated_start_codes_in_payloads(self, small_stream):
        hits = find_start_codes(small_stream)
        for i, hit in enumerate(hits):
            start = hit.payload_offset
            end = hits[i + 1].offset if i + 1 < len(hits) else len(small_stream)
            assert not contains_start_code_prefix(small_stream[start:end])

    def test_two_gop_stream(self, two_gop_stream):
        idx = build_index(two_gop_stream)
        assert len(idx.gops) == 2
        assert all(len(g.pictures) == 4 for g in idx.gops)


class TestRoundtrip:
    def test_decoded_sequence_matches_sources(self, small_video, small_stream):
        decoded = decode_sequence(small_stream)
        assert len(decoded) == len(small_video)
        value = sequence_psnr(small_video, decoded)
        assert value > 32.0, f"PSNR too low: {value:.1f} dB"

    def test_display_order_restored(self, small_stream):
        decoded = decode_sequence(small_stream)
        assert [f.temporal_reference for f in decoded] == list(range(13))

    def test_i_picture_alone_decodable(self, small_video):
        data = encode_sequence(small_video[:1], EncoderConfig(gop_size=1))
        decoded = decode_sequence(data)
        assert len(decoded) == 1
        assert psnr(small_video[0], decoded[0]) > 32.0

    def test_all_picture_types_present_and_reasonable(self, small_stream):
        idx = build_index(small_stream)
        sizes = {t: [] for t in PictureType}
        for p in idx.gops[0].pictures:
            sizes[p.picture_type].append(p.wire_bytes)
        assert sizes[PictureType.I] and sizes[PictureType.P] and sizes[PictureType.B]
        # Compression ordering: I biggest, B smallest on average.
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(sizes[PictureType.I]) > mean(sizes[PictureType.P])
        assert mean(sizes[PictureType.P]) > mean(sizes[PictureType.B])

    def test_gop_decode_matches_full_decode(self, two_gop_stream):
        dec = SequenceDecoder(two_gop_stream)
        full = dec.decode_all()
        by_gop = []
        for gop in dec.index.gops:
            by_gop.extend(dec.decode_gop(gop))
        assert len(full) == len(by_gop)
        for a, b in zip(full, by_gop):
            assert a.same_pixels(b)

    def test_decode_is_deterministic(self, small_stream):
        a = decode_sequence(small_stream)
        b = decode_sequence(small_stream)
        for fa, fb in zip(a, b):
            assert fa.same_pixels(fb)

    def test_work_counters_populated(self, small_stream):
        dec = SequenceDecoder(small_stream)
        counters = WorkCounters()
        dec.decode_all(counters)
        idx = dec.index
        # 13 pictures x 4x3 macroblocks.
        assert counters.macroblocks == 13 * 12
        assert counters.bits > 0
        assert counters.idct_blocks > 0
        assert counters.mc_macroblocks > 0
        assert counters.pixels == 13 * 12 * (256 + 64 + 64)
        # headers: 1 GOP + 13 pictures + 39 slices
        assert counters.headers == 1 + 13 + 39


class TestEncoderBehaviours:
    def test_rejects_partial_gop(self, small_video):
        with pytest.raises(ValueError):
            encode_sequence(small_video[:5], EncoderConfig(gop_size=4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            encode_sequence([], EncoderConfig())

    def test_rejects_mixed_sizes(self, small_video):
        odd = SyntheticVideo(width=32, height=32).frames(1)
        with pytest.raises(ValueError):
            encode_sequence(small_video[:12] + odd, EncoderConfig(gop_size=13))

    def test_quantiser_quality_tradeoff(self, small_video):
        fine = encode_sequence(small_video, EncoderConfig(gop_size=13, qscale_code=2))
        coarse = encode_sequence(small_video, EncoderConfig(gop_size=13, qscale_code=16))
        assert len(fine) > len(coarse)
        psnr_fine = sequence_psnr(small_video, decode_sequence(fine))
        psnr_coarse = sequence_psnr(small_video, decode_sequence(coarse))
        assert psnr_fine > psnr_coarse

    def test_rate_control_steers_size(self, small_video):
        target = 1800 * 8  # bits/picture
        data = encode_sequence(
            small_video,
            EncoderConfig(gop_size=13, qscale_code=2,
                          target_bits_per_picture=target),
        )
        bits_per_pic = len(data) * 8 / 13
        uncontrolled = encode_sequence(
            small_video, EncoderConfig(gop_size=13, qscale_code=2)
        )
        # The controller must pull the size toward the budget compared
        # with the uncontrolled encode at the same starting quantiser.
        assert abs(bits_per_pic - target) < abs(len(uncontrolled) * 8 / 13 - target)

    def test_padded_dimensions(self):
        # 40x24 display -> 48x32 coded (3x2 macroblocks).
        video = SyntheticVideo(width=40, height=24, seed=5)
        frames = video.frames(4)
        data = encode_sequence(frames, EncoderConfig(gop_size=4, qscale_code=3))
        decoded = decode_sequence(data)
        assert decoded[0].display_width == 40
        assert decoded[0].coded_width == 48
        assert sequence_psnr(frames, decoded) > 30.0

    def test_reference_reconstruction_loop_closed(self, small_video, small_stream):
        """Last P of the GOP (depth-4 prediction chain) stays clean —
        evidence that encoder references == decoder output, or drift
        would compound."""
        decoded = decode_sequence(small_stream)
        assert psnr(small_video[12], decoded[12]) > 30.0
