"""GOP-level parallel decoder (paper Section 5.1).

One scan process locates closed GOPs and enqueues them; ``P`` worker
processes each dequeue a GOP and decode it end-to-end; one display
process reorders decoded pictures into display order.  Tasks are
coarse and independent: the only shared state is the task queue and
the display queue, so synchronisation is minimal — the paper's
motivation for this design.  Its cost is memory: every decoded picture
lives until the display process drains it, and with ``P`` workers on
consecutive GOPs that backlog reaches ``P x GOP size`` frames
(Figs. 8-9), plus the scanned stream bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.obs.stalls import REASON_MERGE, REASON_POOL_SLOT, StallTable
from repro.parallel.pacing import DisplayPacer
from repro.parallel.profile import StreamProfile, profile_stream
from repro.parallel.queues import SimQueue
from repro.smp.costs import CostModel, DEFAULT_COST_MODEL
from repro.smp.engine import Compute, Halt, Process, Simulator, SleepUntil, Stall
from repro.smp.machine import CHALLENGE, MachineConfig
from repro.smp.memtrack import MemoryTracker


@dataclass(frozen=True)
class ParallelConfig:
    """Shared knobs of both parallel decoders.

    ``workers`` is the paper's ``P``: decode processes, excluding the
    scan and display processes (total processors = P + 2).
    ``remote_fraction`` only matters on NUMA machines: ``None`` models
    no data placement (Section 7.2's measured case); a small value
    models the proposed round-robin GOP placement with task stealing.
    """

    workers: int
    machine: MachineConfig = CHALLENGE
    cost: CostModel = DEFAULT_COST_MODEL
    #: Actually decode in workers (slow; enables output verification).
    execute: bool = False
    remote_fraction: float | None = None
    #: When set, the display process paces output at this rate and
    #: deadline misses are counted (real-time playback simulation).
    display_rate_hz: float | None = None
    #: Startup buffer for paced playback, in pictures (player preroll).
    display_preroll_pictures: int = 0
    #: GOP decoder: cap on decoded frames awaiting display.  ``None``
    #: reproduces the paper's unbounded behaviour (Figs. 8-9 memory
    #: growth); a cap trades throughput for bounded memory.  The worker
    #: on the display-front GOP is exempt, which keeps the pipeline
    #: deadlock-free at any cap.
    max_frames_in_flight: int | None = None
    #: Decode engine used by ``execute=True`` runs (see
    #: :class:`~repro.mpeg2.decoder.SequenceDecoder`): the batched
    #: two-phase fast path by default, ``"scalar"`` for the oracle.
    #: Simulated cycle counts are engine-independent (identical
    #: counters); only the wall-clock cost of executing runs changes.
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.workers + 2 > self.machine.processors:
            raise ValueError(
                f"{self.workers} workers + scan + display exceed the "
                f"{self.machine.processors}-processor machine"
            )
        if self.max_frames_in_flight is not None and self.max_frames_in_flight < 1:
            raise ValueError("max_frames_in_flight must be >= 1")


@dataclass
class DecodeRunResult:
    """Outcome of one simulated parallel decode."""

    config: ParallelConfig
    picture_count: int
    #: Virtual time (cycles) when the last picture was displayed.
    finish_cycles: int = 0
    #: Per-worker statistics, indexed by worker number.
    worker_busy: list[int] = field(default_factory=list)
    worker_stall: list[int] = field(default_factory=list)
    worker_sync: list[int] = field(default_factory=list)
    #: Virtual display time of each picture, in display order.
    display_times: list[int] = field(default_factory=list)
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    #: Decoded frames in display order (``execute=True`` runs only).
    frames: list[Frame] | None = None
    #: Real-time pacing stats (``display_rate_hz`` runs only).
    late_pictures: int = 0
    max_lateness_cycles: int = 0
    startup_cycles: int = 0
    #: Stall attribution (cycles) under the canonical reason vocabulary
    #: of :mod:`repro.obs.stalls` — the simulated counterpart of the mp
    #: pipeline's wall-clock stall table.
    stalls: StallTable = field(default_factory=StallTable)

    @property
    def finish_seconds(self) -> float:
        return self.config.machine.seconds(self.finish_cycles)

    @property
    def pictures_per_second(self) -> float:
        return self.picture_count / self.finish_seconds

    @property
    def peak_memory(self) -> int:
        return self.memory.peak()

    @property
    def max_lateness_seconds(self) -> float:
        return self.config.machine.seconds(self.max_lateness_cycles)

    @property
    def startup_seconds(self) -> float:
        """Latency from simulation start to the first displayed picture."""
        return self.config.machine.seconds(self.startup_cycles)

    @property
    def met_realtime(self) -> bool:
        """True if a paced run displayed every picture by its deadline."""
        return self.late_pictures == 0

    def worker_exec(self, i: int) -> int:
        """Execution (busy + stall) time of worker ``i``."""
        return self.worker_busy[i] + self.worker_stall[i]

    @property
    def mean_sync_ratio(self) -> float:
        """Average over workers of sync_wait / execution time (Fig. 12).

        Workers that never received a task (more workers than tasks —
        the paper avoids this by using long streams) are excluded:
        their wait is stream exhaustion, not synchronisation.
        """
        ratios = [
            self.worker_sync[i] / self.worker_exec(i)
            for i in range(len(self.worker_busy))
            if self.worker_exec(i) > 0
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason.

        Denominator: ``finish_cycles x (workers + scan + display)`` —
        the simulated analogue of "wall seconds x processes" used by
        the real mp pipeline, so the two breakdowns are directly
        comparable in ``repro.analysis.obs_report``.
        """
        processes = self.config.workers + 2
        return self.stalls.breakdown(self.finish_cycles * processes)


@dataclass(frozen=True)
class _GopTask:
    gop_index: int


@dataclass(frozen=True)
class _DisplayItem:
    display_index: int


class GopLevelDecoder:
    """Simulate the GOP-level parallel decoder over a stream profile."""

    def __init__(self, profile: StreamProfile, data: bytes | None = None) -> None:
        self.profile = profile
        self._data = data

    @classmethod
    def from_stream(cls, data: bytes) -> "GopLevelDecoder":
        profile, _ = profile_stream(data)
        return cls(profile, data)

    # ------------------------------------------------------------------
    def run(self, config: ParallelConfig) -> DecodeRunResult:
        profile = self.profile
        if config.execute and self._data is None:
            raise ValueError("execute=True needs the stream bytes")

        sim = Simulator()
        cost = config.cost
        machine = config.machine
        memory = MemoryTracker()
        result = DecodeRunResult(
            config=config, picture_count=profile.picture_count, memory=memory
        )
        task_queue = SimQueue("gop-tasks", cost.queue_op_cycles)
        display_queue = SimQueue("display", cost.queue_op_cycles)
        decoder = (
            SequenceDecoder(self._data, engine=config.engine)
            if config.execute
            else None
        )
        decoded: dict[int, Frame] = {}
        fbytes = profile.frame_bytes
        pixels = profile.picture_pixels

        # Bounded frame pool (max_frames_in_flight).  ``display_progress``
        # tracks the next display index so workers can tell whether they
        # hold the display-front GOP (always exempt from the cap).
        from repro.smp.engine import SignalCondition, WaitCondition
        from repro.smp.sync import Condition

        frames_in_flight = [0]
        display_progress = [0]
        pool_cond = Condition("frame-pool", reason=REASON_POOL_SLOT)
        gop_first_display: list[int] = []
        acc = 0
        for g in profile.gops:
            gop_first_display.append(acc)
            acc += len(g.pictures)
        gop_first_display.append(acc)

        def _front_gop() -> int:
            """Index of the GOP the display process is draining."""
            import bisect

            return bisect.bisect_right(gop_first_display, display_progress[0]) - 1

        # -- scan process (paper Fig. 4) --------------------------------
        def scan_body(proc: Process):
            for gop in profile.gops:
                yield Compute(cost.scan_cycles(gop.wire_bytes))
                memory.allocate(sim.now, gop.wire_bytes, "stream")
                yield from task_queue.put(_GopTask(gop.index))
            yield from task_queue.close()

        # -- worker processes -------------------------------------------
        def worker_body(proc: Process):
            while True:
                task = yield from task_queue.get()
                if task is None:
                    break
                gop = profile.gops[task.gop_index]
                display_base = sum(
                    len(g.pictures) for g in profile.gops[: task.gop_index]
                )
                if config.execute:
                    frames = decoder.decode_gop(decoder.index.gops[task.gop_index])
                    for k, f in enumerate(frames):
                        decoded[display_base + k] = f
                for pic in gop.pictures:
                    if config.max_frames_in_flight is not None:
                        while (
                            frames_in_flight[0] >= config.max_frames_in_flight
                            and task.gop_index != _front_gop()
                        ):
                            yield WaitCondition(pool_cond)
                    frames_in_flight[0] += 1
                    memory.allocate(sim.now, fbytes, "frames")
                    busy = cost.decode_cycles(pic.total_counters())
                    yield Compute(busy)
                    yield Stall(
                        cost.stall_cycles(
                            busy, machine, pixels, config.remote_fraction
                        )
                    )
                    yield from display_queue.put(
                        _DisplayItem(display_index=pic.display_index)
                    )
                memory.free(sim.now, gop.wire_bytes, "stream")

        # -- display process ---------------------------------------------
        pacer = DisplayPacer(
            machine, config.display_rate_hz, config.display_preroll_pictures
        )

        def display_body(proc: Process):
            import heapq

            pending: list[int] = []
            arrival: dict[int, int] = {}
            next_index = 0
            total = profile.picture_count
            while next_index < total:
                item = yield from display_queue.get()
                assert item is not None, "display queue closed early"
                heapq.heappush(pending, item.display_index)
                arrival[item.display_index] = sim.now
                while pending and pending[0] == next_index:
                    heapq.heappop(pending)
                    held = sim.now - arrival.pop(next_index)
                    if held > 0:
                        # Completed out of display order: the time it sat
                        # in the reorder buffer is a merge stall (the mp
                        # pipeline records the same quantity in seconds).
                        sim.stalls.record(proc.name, REASON_MERGE, held)
                    target = pacer.on_ready(next_index, sim.now)
                    if target is not None:
                        yield SleepUntil(target)
                    yield Compute(cost.display_cycles())
                    memory.free(sim.now, fbytes, "frames")
                    frames_in_flight[0] -= 1
                    result.display_times.append(sim.now)
                    next_index += 1
                    display_progress[0] = next_index
                    if config.max_frames_in_flight is not None:
                        yield SignalCondition(pool_cond)
            yield Halt()

        sim.add_process("scan", scan_body)
        workers = [
            sim.add_process(f"worker-{i}", worker_body)
            for i in range(config.workers)
        ]
        sim.add_process("display", display_body)
        sim.run()

        result.finish_cycles = result.display_times[-1]
        result.stalls = sim.stalls
        result.worker_busy = [w.stats.busy for w in workers]
        result.worker_stall = [w.stats.stall for w in workers]
        result.worker_sync = [w.stats.sync_wait for w in workers]
        result.late_pictures = pacer.late_pictures
        result.max_lateness_cycles = pacer.max_lateness
        result.startup_cycles = pacer.startup_cycles or (
            result.display_times[0] if result.display_times else 0
        )
        if config.execute:
            result.frames = [decoded[i] for i in range(profile.picture_count)]
        return result
