"""SLO tracker: budget accounting, burn rate, breach detection."""

from __future__ import annotations

import pytest

from repro.obs.slo import SLOPolicy, SLOTracker


class TestPolicy:
    def test_defaults_valid(self):
        p = SLOPolicy()
        assert 0 < p.deadline_miss_budget < 1
        assert p.window_pictures > 0

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            SLOPolicy(deadline_miss_budget=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(deadline_miss_budget=1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SLOPolicy(window_pictures=0)

    def test_to_json_is_plain(self):
        j = SLOPolicy().to_json()
        assert j["deadline_miss_budget"] == 0.05
        assert j["p99_lateness_ms"] == 100.0


class TestTracker:
    def test_no_breach_before_min_pictures(self):
        t = SLOTracker(SLOPolicy(min_pictures=10))
        for _ in range(9):
            t.observe(late_s=10.0)  # catastrophically late
        assert t.breaches() == []
        assert not t.burned_out
        t.observe(late_s=10.0)
        assert "deadline-miss-budget" in t.breaches()
        assert t.burned_out

    def test_on_time_pictures_never_breach(self):
        t = SLOTracker(SLOPolicy(min_pictures=1))
        for _ in range(100):
            t.observe(late_s=0.0)
        assert t.breaches() == []
        assert t.miss_rate == 0.0
        assert t.budget_spent == 0.0

    def test_budget_spent_is_miss_rate_over_budget(self):
        t = SLOTracker(SLOPolicy(deadline_miss_budget=0.1, min_pictures=1))
        for i in range(10):
            t.observe(late_s=1.0 if i == 0 else 0.0)
        assert t.miss_rate == pytest.approx(0.1)
        assert t.budget_spent == pytest.approx(1.0)

    def test_shed_counts_as_miss(self):
        t = SLOTracker(SLOPolicy(min_pictures=1))
        t.observe(shed=True)
        assert t.snapshot()["misses"] == 1
        assert t.snapshot()["shed"] == 1

    def test_burn_rate_windowed(self):
        # Misses all concentrated at the start: lifetime budget stays
        # burnt but the rolling window recovers once they age out.
        t = SLOTracker(
            SLOPolicy(
                deadline_miss_budget=0.1, window_pictures=10,
                min_pictures=1,
            )
        )
        for _ in range(5):
            t.observe(late_s=1.0)
        burn_hot = t.burn_rate
        for _ in range(50):
            t.observe(late_s=0.0)
        assert burn_hot > 1.0
        assert t.burn_rate == 0.0
        assert t.budget_spent > 0.0

    def test_p99_lateness_breach(self):
        t = SLOTracker(
            SLOPolicy(p99_lateness_ms=5.0, min_pictures=1,
                      deadline_miss_budget=0.999)
        )
        for _ in range(100):
            t.observe(late_s=0.010)
        assert "p99-lateness" in t.breaches()

    def test_conceal_rate_breach(self):
        t = SLOTracker(
            SLOPolicy(conceal_rate_ceiling=0.01, min_pictures=1)
        )
        for _ in range(20):
            t.observe(late_s=0.0, concealed_rows=1, rows=10)
        assert "conceal-rate" in t.breaches()

    def test_snapshot_json_safe(self):
        import json

        t = SLOTracker(session="s#0")
        t.observe(late_s=0.002, concealed_rows=1, rows=8)
        snap = t.snapshot()
        json.dumps(snap)
        assert snap["session"] == "s#0"
        assert snap["pictures"] == 1
        assert "policy" in snap
        assert "burn_rate" in snap
        assert "burned_out" in snap
