"""Stream profiling: per-task work counters for replay simulation.

Decoding is deterministic (paper Section 2), so the work performed by
any task — a GOP or a slice — is a property of the bitstream, not of
the schedule.  We exploit that: the stream is decoded *once* by the
instrumented sequential decoder, recording exact work counters per
slice; processor-count sweeps then replay those counters through the
cost model on the simulated machine without re-decoding.  This is the
same trick TangoLite-style trace-driven simulation plays, and it keeps
a 14-point speedup sweep as cheap as one decode.

Profiles are picklable and cached on disk next to the encoded streams.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.frame import Frame, frame_bytes
from repro.mpeg2.constants import PictureType


@dataclass
class SliceProfile:
    """One slice task: its row and exact decode work."""

    vertical_position: int
    counters: WorkCounters


@dataclass
class PictureProfile:
    """One picture: type, ordering info, per-slice work."""

    picture_type: PictureType
    temporal_reference: int
    #: Position within the GOP in coding (bitstream) order.
    coding_position: int
    #: Global display index across the whole stream.
    display_index: int
    #: Wire bytes of the picture (header + slices, with start codes).
    wire_bytes: int
    header_bits: int
    slices: list[SliceProfile] = field(default_factory=list)

    def total_counters(self) -> WorkCounters:
        total = WorkCounters()
        total.bits += self.header_bits
        total.headers += 1
        for s in self.slices:
            total.add(s.counters)
        return total

    @property
    def slice_count(self) -> int:
        return len(self.slices)


@dataclass
class GopProfile:
    """One closed GOP: its pictures in coding order."""

    index: int
    wire_bytes: int
    header_bits: int
    pictures: list[PictureProfile] = field(default_factory=list)

    def total_counters(self) -> WorkCounters:
        total = WorkCounters()
        total.bits += self.header_bits
        total.headers += 1
        for p in self.pictures:
            total.add(p.total_counters())
        return total

    def reference_positions(self, coding_position: int) -> list[int]:
        """Coding positions of the pictures this one references.

        Uses the standard two-slot reference rule over coding order:
        a P references the previous reference picture; a B references
        the previous two.
        """
        refs: list[int] = []
        ref_old: int | None = None
        ref_new: int | None = None
        for pos, pic in enumerate(self.pictures):
            if pos == coding_position:
                if pic.picture_type is PictureType.P:
                    refs = [r for r in (ref_new,) if r is not None]
                elif pic.picture_type is PictureType.B:
                    refs = [r for r in (ref_old, ref_new) if r is not None]
                return refs
            if pic.picture_type.is_reference:
                ref_old, ref_new = ref_new, pos
        raise IndexError(f"coding position {coding_position} out of range")

    def dependents(self, coding_position: int) -> list[int]:
        """Coding positions of pictures that reference this one."""
        return [
            pos
            for pos in range(len(self.pictures))
            if coding_position in self.reference_positions(pos)
        ]


@dataclass
class StreamProfile:
    """Everything the parallel simulations need to know about a stream."""

    width: int
    height: int
    frame_rate: float
    bit_rate: int
    total_bytes: int
    gops: list[GopProfile] = field(default_factory=list)

    @property
    def picture_count(self) -> int:
        return sum(len(g.pictures) for g in self.gops)

    @property
    def slice_count(self) -> int:
        return sum(p.slice_count for g in self.gops for p in g.pictures)

    @property
    def slices_per_picture(self) -> int:
        return self.gops[0].pictures[0].slice_count

    @property
    def frame_bytes(self) -> int:
        """Decoded 4:2:0 frame size (the memory-model unit)."""
        return frame_bytes(self.width, self.height)

    @property
    def picture_pixels(self) -> int:
        return self.width * self.height

    @property
    def gop_size(self) -> int:
        return len(self.gops[0].pictures)

    def total_counters(self) -> WorkCounters:
        total = WorkCounters()
        for g in self.gops:
            total.add(g.total_counters())
        return total


def profile_stream(
    data: bytes, keep_frames: bool = False, engine: str = "batched"
) -> tuple[StreamProfile, list[Frame] | None]:
    """Decode ``data`` sequentially, recording per-slice work counters.

    Returns ``(profile, frames)`` where ``frames`` is the
    display-ordered decode output when ``keep_frames`` is true (used by
    correctness tests), else ``None``.  ``engine`` selects the decode
    path (see :class:`~repro.mpeg2.decoder.SequenceDecoder`); both
    engines produce identical profiles — the batched default just gets
    there several times faster.
    """
    dec = SequenceDecoder(data, engine=engine)
    idx = dec.index
    seq = idx.sequence_header
    profile = StreamProfile(
        width=seq.width,
        height=seq.height,
        frame_rate=seq.frame_rate,
        bit_rate=seq.bit_rate,
        total_bytes=idx.total_bytes,
    )
    frames: list[Frame] = []
    display_base = 0
    for gi, gop in enumerate(idx.gops):
        gp = GopProfile(
            index=gi,
            wire_bytes=gop.wire_bytes,
            header_bits=(gop.header_payload_end - gop.header_payload_start + 4) * 8,
        )
        ref_old: Frame | None = None
        ref_new: Frame | None = None
        gop_frames: list[Frame] = []
        for pos, pic in enumerate(gop.pictures):
            if pic.picture_type.is_reference:
                fwd, bwd = ref_new, None
            else:
                fwd, bwd = ref_old, ref_new
            frame, slice_counters, _local = dec.decode_picture_with_slices(
                pic, fwd, bwd
            )
            pp = PictureProfile(
                picture_type=pic.picture_type,
                temporal_reference=pic.temporal_reference,
                coding_position=pos,
                display_index=display_base + pic.temporal_reference,
                wire_bytes=pic.wire_bytes,
                header_bits=(pic.header_payload_end - pic.header_payload_start + 4) * 8,
            )
            pp.slices.extend(
                SliceProfile(vertical_position=vpos, counters=counters)
                for vpos, counters in slice_counters
            )
            gp.pictures.append(pp)
            if pic.picture_type.is_reference:
                ref_old, ref_new = ref_new, frame
            gop_frames.append(frame)
        profile.gops.append(gp)
        if keep_frames:
            gop_frames.sort(key=lambda f: f.temporal_reference)
            frames.extend(gop_frames)
        display_base += len(gop.pictures)
    return profile, (frames if keep_frames else None)


def tile_profile(profile: StreamProfile, repeats: int) -> StreamProfile:
    """Extend a profile by repeating its GOPs ``repeats`` times.

    The paper built its 1120-picture test streams by *repeating* a
    short clip (Section 3); tiling a profiled stream is the same
    methodology one level up: every GOP's work counters are exact,
    and closed GOPs make the repetition semantically valid.  Slice
    profiles are shared (not copied) — only the ordering metadata is
    rebuilt.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    out = StreamProfile(
        width=profile.width,
        height=profile.height,
        frame_rate=profile.frame_rate,
        bit_rate=profile.bit_rate,
        total_bytes=profile.total_bytes * repeats,
    )
    display_base = 0
    for r in range(repeats):
        for gop in profile.gops:
            new_gop = GopProfile(
                index=len(out.gops),
                wire_bytes=gop.wire_bytes,
                header_bits=gop.header_bits,
            )
            for pic in gop.pictures:
                new_gop.pictures.append(
                    PictureProfile(
                        picture_type=pic.picture_type,
                        temporal_reference=pic.temporal_reference,
                        coding_position=pic.coding_position,
                        display_index=display_base + pic.temporal_reference,
                        wire_bytes=pic.wire_bytes,
                        header_bits=pic.header_bits,
                        slices=pic.slices,
                    )
                )
            display_base += len(gop.pictures)
            out.gops.append(new_gop)
    return out


def slice_gops(profile: StreamProfile, start: int, end: int | None = None) -> StreamProfile:
    """A sub-profile covering GOPs ``start:end`` (renumbered from 0).

    Used to drop the encoder's rate-control warm-up GOP before tiling:
    the first GOP of a stream is coded at the controller's initial
    quantiser and is not representative of steady state.
    """
    gops = profile.gops[start:end]
    if not gops:
        raise ValueError(f"empty GOP range {start}:{end}")
    out = StreamProfile(
        width=profile.width,
        height=profile.height,
        frame_rate=profile.frame_rate,
        bit_rate=profile.bit_rate,
        total_bytes=0,
    )
    display_base = 0
    for gi, gop in enumerate(gops):
        new_gop = GopProfile(
            index=gi, wire_bytes=gop.wire_bytes, header_bits=gop.header_bits
        )
        for pic in gop.pictures:
            new_gop.pictures.append(
                PictureProfile(
                    picture_type=pic.picture_type,
                    temporal_reference=pic.temporal_reference,
                    coding_position=pic.coding_position,
                    display_index=display_base + pic.temporal_reference,
                    wire_bytes=pic.wire_bytes,
                    header_bits=pic.header_bits,
                    slices=pic.slices,
                )
            )
        display_base += len(gop.pictures)
        out.total_bytes += gop.wire_bytes
        out.gops.append(new_gop)
    return out


def synthesize_profile(
    base: StreamProfile, gop_size: int, gops: int, ip_distance: int = 3
) -> StreamProfile:
    """Build a profile with a different GOP structure from measured data.

    Used by the GOP-size sweeps (Figs. 5, 6, 8, 9): the per-picture
    work of an I, P or B picture does not depend on the GOP length, so
    a ``gop_size``-picture GOP is assembled by drawing measured
    pictures of the right type from ``base`` (round-robin, preserving
    their per-slice variation).  Structure comes from
    :class:`~repro.mpeg2.gop.GopStructure`; work counters come from
    real decodes.
    """
    from repro.mpeg2.gop import GopStructure

    structure = GopStructure(gop_size, ip_distance)
    by_type: dict[PictureType, list[PictureProfile]] = {t: [] for t in PictureType}
    for g in base.gops:
        for p in g.pictures:
            by_type[p.picture_type].append(p)
    for t, pool in by_type.items():
        if not pool and any(
            structure.type_of(d) is t for d in range(gop_size)
        ):
            raise ValueError(f"base profile has no {t.letter}-pictures to draw from")

    counters: dict[PictureType, int] = {t: 0 for t in PictureType}

    def draw(ptype: PictureType) -> PictureProfile:
        pool = by_type[ptype]
        pic = pool[counters[ptype] % len(pool)]
        counters[ptype] += 1
        return pic

    mean_gop_header = sum(g.header_bits for g in base.gops) // len(base.gops)
    out = StreamProfile(
        width=base.width,
        height=base.height,
        frame_rate=base.frame_rate,
        bit_rate=base.bit_rate,
        total_bytes=0,
    )
    display_base = 0
    for gi in range(gops):
        gop = GopProfile(index=gi, wire_bytes=0, header_bits=mean_gop_header)
        for pos, display_idx in enumerate(structure.coding_order()):
            src = draw(structure.type_of(display_idx))
            gop.pictures.append(
                PictureProfile(
                    picture_type=src.picture_type,
                    temporal_reference=display_idx,
                    coding_position=pos,
                    display_index=display_base + display_idx,
                    wire_bytes=src.wire_bytes,
                    header_bits=src.header_bits,
                    slices=src.slices,
                )
            )
            gop.wire_bytes += src.wire_bytes
        gop.wire_bytes += mean_gop_header // 8
        display_base += gop_size
        out.gops.append(gop)
        out.total_bytes += gop.wire_bytes
    return out


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------
def cached_profile(
    data: bytes, cache_key: str, cache_dir: str | None = None
) -> StreamProfile:
    """Profile ``data`` with a pickle cache keyed by ``cache_key``."""
    from repro.video.streams import default_cache_dir

    cache_dir = cache_dir or default_cache_dir()
    path = os.path.join(cache_dir, f"{cache_key}.profile.pkl")
    if os.path.exists(path):
        with open(path, "rb") as fh:
            return pickle.load(fh)
    profile, _ = profile_stream(data)
    os.makedirs(cache_dir, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(profile, fh)
    os.replace(tmp, path)
    return profile
