"""Multi-stream decode service: many bitstreams, one worker pool.

The paper decodes *one* stream in real time; the ROADMAP's north star
is a service that decodes *many* concurrently for many users.  This
package is that next layer up: N MPEG-2 sessions multiplexed onto one
shared pool of decode worker processes, with

* per-stream state in :class:`~repro.serve.session.StreamSession`
  (scan index, picture plans, reorder buffer, wall-clock display
  deadlines, priority weight);
* a weighted-fair :class:`~repro.serve.scheduler.Scheduler` with
  admission control (capacity estimated from the committed
  ``BENCH_parallel.json`` throughput) and bounded per-session in-flight
  work (backpressure);
* overload degradation (:mod:`repro.serve.degrade`): sessions that
  miss display deadlines first shed B-picture tasks (legal — B
  pictures are non-reference, the same property the improved slice
  barrier exploits), then skip whole GOPs, emitting ``degrade.*``
  stall reasons into :mod:`repro.obs`;
* robustness in :class:`~repro.serve.service.DecodeService`: per-task
  timeouts on the PR-4 liveness machinery, dead-worker task retry with
  per-task ``excluded`` worker tracking, and corrupt-input containment
  — one poisoned stream fails *its* session, never the service.
"""

from repro.serve.degrade import DegradePolicy, DegradeState
from repro.serve.scheduler import (
    Admission,
    Scheduler,
    ServeTask,
    estimate_capacity,
)
from repro.serve.service import DecodeService
from repro.serve.session import SessionStatus, StreamSession

__all__ = [
    "Admission",
    "DecodeService",
    "DegradePolicy",
    "DegradeState",
    "Scheduler",
    "ServeTask",
    "SessionStatus",
    "StreamSession",
    "estimate_capacity",
]
