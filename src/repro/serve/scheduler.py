"""Weighted-fair task scheduling + admission control (pure logic).

The serve layer's brain, kept free of processes and clocks so the
hypothesis suite (``tests/serve/test_scheduler_properties.py``) can
drive it through millions of orderings:

* **Tasks** are :class:`ServeTask` records — a GOP's reference
  pictures (``kind="ref"``) or one B picture (``kind="b"``), with
  explicit dependency keys.  A task is *dispatchable* only when every
  dependency has been published, which is what makes "drop B first"
  legal: nothing ever depends on a ``"b"`` task.
* **Weighted fairness** is start-time fair queueing: each session
  carries a virtual time ``served / weight``; :meth:`Scheduler.
  next_task` serves the dispatchable session with the smallest virtual
  time.  A session's virtual time only advances when it *was* the
  minimum, which bounds the spread between any two backlogged sessions
  by ``max(task.work / weight)`` — the share bound the property suite
  pins.
* **Admission control**: at most ``capacity`` sessions are active at
  once; beyond that, up to ``max_queue`` sessions wait in FIFO order
  and the rest are rejected outright.  Admission is monotone in
  capacity (also property-tested): raising the capacity never turns an
  admit into a reject.
* **Backpressure**: at most ``max_inflight`` of a session's tasks may
  be in flight at once, so one fast stream cannot flood the worker
  pool's queues while others starve.

Capacity itself comes from measured throughput:
:func:`estimate_capacity` derives "how many real-time sessions can
this box sustain" from the committed ``BENCH_parallel.json`` headline
numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from enum import Enum

#: Safety factor applied to measured throughput when estimating
#: capacity: scheduling overhead, pool contention and pacing jitter
#: eat into the benchmarked single-stream number.
CAPACITY_SAFETY = 0.7

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
DEFAULT_BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_parallel.json")


def estimate_capacity(
    workers: int,
    fps: float | None,
    bench_path: str | None = None,
) -> int:
    """Sessions this box should sustain at ``fps``, from the benchmark.

    Reads the committed ``BENCH_parallel.json`` headline stream's
    sequential pictures/second, scales by worker count and
    :data:`CAPACITY_SAFETY`, and divides by the per-session deadline
    rate.  Falls back to ``max(1, workers)`` when the benchmark file
    is missing/unreadable or pacing is off — an unpaced service is
    bounded by worker slots, not deadlines.
    """
    slots = max(1, workers)
    if not fps or fps <= 0:
        return slots
    path = bench_path or DEFAULT_BENCH_PATH
    try:
        with open(path) as fh:
            doc = json.load(fh)
        headline = doc["streams"][doc["headline"]]
        pps = float(headline["sequential_pictures_per_sec"])
    except (OSError, KeyError, ValueError, TypeError):
        return slots
    if pps <= 0:
        return slots
    return max(1, int(slots * pps * CAPACITY_SAFETY / fps))


@dataclass(frozen=True)
class ServeTask:
    """One schedulable unit: a GOP's reference pictures or one B picture.

    ``orders`` are the coding-order picture numbers the task decodes
    (equal to the session frame pool's slots); ``deps`` are the task
    keys that must be *published* before this task may be dispatched.
    Reference tasks have no dependencies (closed GOPs are
    self-contained); a B task depends on its GOP's reference task.
    Nothing ever depends on a B task — which is exactly why dropping
    one under overload is safe.
    """

    session: str
    key: tuple
    kind: str  # "ref" | "b"
    gop: int
    orders: tuple[int, ...]
    deps: tuple[tuple, ...] = ()

    @property
    def work(self) -> int:
        """WFQ work units: pictures decoded by this task."""
        return max(1, len(self.orders))

    @property
    def is_droppable(self) -> bool:
        return self.kind == "b"


class Admission(str, Enum):
    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"


class _SessionLane:
    """Scheduler-internal per-session lane."""

    __slots__ = (
        "sid", "weight", "pending", "inflight", "published",
        "served", "finished",
    )

    def __init__(self, sid: str, tasks: list[ServeTask], weight: float):
        self.sid = sid
        self.weight = weight
        self.pending: list[ServeTask] = list(tasks)
        self.inflight: dict[tuple, ServeTask] = {}
        self.published: set[tuple] = set()
        self.served = 0.0
        self.finished = False

    @property
    def vtime(self) -> float:
        return self.served / self.weight

    def started_gops(self) -> set[int]:
        """GOPs with any dispatched or published work (un-skippable)."""
        out = {t.gop for t in self.inflight.values()}
        out.update(key[1] for key in self.published)
        return out


class Scheduler:
    """Weighted-fair picker over admitted sessions (pure logic).

    Parameters
    ----------
    capacity:
        Maximum concurrently *active* sessions (see
        :func:`estimate_capacity`).
    max_queue:
        Sessions allowed to wait for a slot beyond the capacity; the
        rest are rejected at :meth:`submit`.
    max_inflight:
        Per-session bound on dispatched-but-incomplete tasks
        (backpressure).
    """

    def __init__(
        self, capacity: int, max_queue: int = 0, max_inflight: int = 2
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.capacity = capacity
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self._lanes: dict[str, _SessionLane] = {}
        self._active: list[str] = []
        self._waiting: list[str] = []

    # -- admission -----------------------------------------------------
    def submit(
        self, sid: str, tasks: list[ServeTask], weight: float = 1.0
    ) -> Admission:
        """Offer a session; admit, queue, or reject it."""
        if sid in self._lanes:
            raise ValueError(f"session {sid!r} already submitted")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        seen: set[tuple] = set()
        for t in tasks:
            if t.session != sid:
                raise ValueError(f"task {t.key} belongs to {t.session!r}")
            for dep in t.deps:
                if dep not in seen:
                    raise ValueError(
                        f"task {t.key} depends on {dep} which is not an "
                        "earlier task (dependencies must point backwards)"
                    )
            seen.add(t.key)
        if len(self._active) < self.capacity:
            self._lanes[sid] = _SessionLane(sid, tasks, weight)
            self._active.append(sid)
            return Admission.ADMITTED
        if len(self._waiting) < self.max_queue:
            self._lanes[sid] = _SessionLane(sid, tasks, weight)
            self._waiting.append(sid)
            return Admission.QUEUED
        return Admission.REJECTED

    @property
    def active_sessions(self) -> list[str]:
        return list(self._active)

    @property
    def waiting_sessions(self) -> list[str]:
        return list(self._waiting)

    def is_active(self, sid: str) -> bool:
        return sid in self._active

    # -- dispatch ------------------------------------------------------
    def _dispatchable(self, lane: _SessionLane) -> ServeTask | None:
        if lane.finished or len(lane.inflight) >= self.max_inflight:
            return None
        for t in lane.pending:
            if all(d in lane.published for d in t.deps):
                return t
        return None

    def next_task(self) -> ServeTask | None:
        """Dispatch the next task: min virtual time wins, FIFO on ties.

        Never returns a task whose dependencies are unpublished, never
        exceeds ``max_inflight`` per session, and never serves a
        queued (not yet active) session.
        """
        best: tuple[float, int] | None = None
        best_task: ServeTask | None = None
        best_lane: _SessionLane | None = None
        for rank, sid in enumerate(self._active):
            lane = self._lanes[sid]
            task = self._dispatchable(lane)
            if task is None:
                continue
            score = (lane.vtime, rank)
            if best is None or score < best:
                best, best_task, best_lane = score, task, lane
        if best_task is None or best_lane is None:
            return None
        best_lane.pending.remove(best_task)
        best_lane.inflight[best_task.key] = best_task
        best_lane.served += best_task.work
        return best_task

    def requeue(self, task: ServeTask) -> None:
        """Return a dispatched task to the head of its session's lane.

        Used for dead-worker / timeout retry; the service tracks which
        workers are excluded for the retried task.  The work charge is
        refunded so a retry does not count against the session's fair
        share twice.
        """
        lane = self._lanes[task.session]
        if task.key not in lane.inflight:
            raise ValueError(f"task {task.key} is not in flight")
        del lane.inflight[task.key]
        lane.served = max(0.0, lane.served - task.work)
        lane.pending.insert(0, task)

    def complete(self, task: ServeTask) -> None:
        """Mark a dispatched task finished and publish its key."""
        lane = self._lanes[task.session]
        if task.key not in lane.inflight:
            raise ValueError(f"task {task.key} is not in flight")
        del lane.inflight[task.key]
        lane.published.add(task.key)

    def session_idle(self, sid: str) -> bool:
        """True when the session has no pending and no in-flight tasks."""
        lane = self._lanes[sid]
        return not lane.pending and not lane.inflight

    def finish_session(self, sid: str) -> list[str]:
        """Retire a session (done or failed); activate queued sessions.

        Returns the sessions promoted from the admission queue into
        the freed capacity slots.
        """
        lane = self._lanes.get(sid)
        if lane is None:
            return []
        lane.finished = True
        lane.pending.clear()
        lane.inflight.clear()
        promoted: list[str] = []
        if sid in self._active:
            self._active.remove(sid)
            while self._waiting and len(self._active) < self.capacity:
                nxt = self._waiting.pop(0)
                self._active.append(nxt)
                promoted.append(nxt)
        elif sid in self._waiting:
            self._waiting.remove(sid)
        return promoted

    # -- degradation hooks ---------------------------------------------
    def drop_b_tasks(self, sid: str, gops: int | None = None) -> list[ServeTask]:
        """Drop pending B tasks of ``sid`` (never reference tasks).

        ``gops`` limits the shedding to the earliest N distinct GOPs
        that still have pending B tasks (``None`` sheds them all).
        In-flight tasks are never revoked — their work is already paid
        for.  Returns the dropped tasks so the caller can account for
        the skipped pictures.
        """
        lane = self._lanes[sid]
        droppable = [t for t in lane.pending if t.is_droppable]
        if gops is not None:
            chosen: list[int] = []
            for t in droppable:
                if t.gop not in chosen:
                    if len(chosen) >= gops:
                        continue
                    chosen.append(t.gop)
            droppable = [t for t in droppable if t.gop in chosen]
        for t in droppable:
            lane.pending.remove(t)
        return droppable

    def skip_next_gop(self, sid: str) -> list[ServeTask]:
        """Drop every pending task of the earliest *unstarted* GOP.

        A GOP is skippable only while none of its tasks has been
        dispatched or published — skipping mid-GOP would strand
        already-decoded reference pictures.  Returns the dropped tasks
        (possibly empty when every pending GOP has started).
        """
        lane = self._lanes[sid]
        started = lane.started_gops()
        candidate: int | None = None
        for t in lane.pending:
            if t.gop not in started:
                candidate = t.gop
                break
        if candidate is None:
            return []
        dropped = [t for t in lane.pending if t.gop == candidate]
        for t in dropped:
            lane.pending.remove(t)
        return dropped

    def truncate_from_gop(self, sid: str) -> tuple[int | None, list[ServeTask]]:
        """Cancel every pending task from the earliest all-unstarted GOP on.

        The scheduler half of the ABR rung switch: the returned GOP
        number is the *cut point* — every GOP at or after it has had no
        task dispatched or published, so the session can keep the work
        it already paid for (everything before the cut) while a
        continuation session on a cheaper rung joins mid-stream at the
        cut GOP.  Cutting anywhere finer would strand decoded
        reference pictures, exactly the invariant
        :meth:`skip_next_gop` protects.  Returns ``(cut_gop,
        dropped_tasks)``; ``(None, [])`` when no clean cut exists.
        """
        lane = self._lanes[sid]
        if not lane.pending:
            return None, []
        started = lane.started_gops()
        cut = (max(started) + 1) if started else min(t.gop for t in lane.pending)
        dropped = [t for t in lane.pending if t.gop >= cut]
        if not dropped:
            return None, []
        for t in dropped:
            lane.pending.remove(t)
        return cut, dropped

    # -- diagnostics ---------------------------------------------------
    def served_work(self, sid: str) -> float:
        return self._lanes[sid].served

    def vtime(self, sid: str) -> float:
        return self._lanes[sid].vtime

    def pending_count(self, sid: str) -> int:
        return len(self._lanes[sid].pending)

    def inflight_count(self, sid: str) -> int:
        return len(self._lanes[sid].inflight)
