"""Zig-zag scans, DCT, and quantization invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.mpeg2.constants import COEFF_MAX, COEFF_MIN, LEVEL_MAX, LEVEL_MIN
from repro.mpeg2.dct import fdct, idct, idct_rounded
from repro.mpeg2.quant import (
    dequantize_intra,
    dequantize_non_intra,
    quantize_intra,
    quantize_non_intra,
)
from repro.mpeg2.scan import (
    ALTERNATE,
    ZIGZAG,
    scan_block,
    unscan_block,
)
from repro.mpeg2.tables import (
    DEFAULT_INTRA_QUANT_MATRIX,
    DEFAULT_NON_INTRA_QUANT_MATRIX,
)

pixel_blocks = arrays(
    dtype=np.int64, shape=(8, 8), elements=st.integers(0, 255)
)


class TestScan:
    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))
        assert sorted(ALTERNATE.tolist()) == list(range(64))

    def test_zigzag_first_entries(self):
        # Classic scan: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), ...
        assert ZIGZAG[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_zigzag_last_entry_is_77(self):
        assert ZIGZAG[63] == 63

    @pytest.mark.parametrize("order", [ZIGZAG, ALTERNATE], ids=["zigzag", "alternate"])
    def test_scan_unscan_identity(self, order):
        rng = np.random.default_rng(0)
        block = rng.integers(-100, 100, size=(5, 8, 8))
        assert np.array_equal(unscan_block(scan_block(block, order), order), block)

    def test_scan_orders_by_frequency(self):
        # A block with only low-frequency content must concentrate its
        # scanned energy at the front.
        block = np.zeros((8, 8))
        block[:2, :2] = 100
        scanned = scan_block(block)
        assert np.all(scanned[5:] == 0)


class TestDCT:
    def test_dc_is_eight_times_mean(self):
        block = np.full((8, 8), 100.0)
        coeffs = fdct(block)
        assert coeffs[0, 0] == pytest.approx(800.0)
        assert np.allclose(coeffs.reshape(-1)[1:], 0.0, atol=1e-9)

    def test_parseval_energy(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(0, 255, size=(8, 8))
        coeffs = fdct(block)
        assert np.sum(block**2) == pytest.approx(np.sum(coeffs**2))

    @given(pixel_blocks)
    @settings(max_examples=50)
    def test_idct_inverts_fdct(self, block):
        assert np.array_equal(idct_rounded(fdct(block)), block)

    def test_vectorised_over_leading_axes(self):
        rng = np.random.default_rng(2)
        blocks = rng.integers(0, 255, size=(4, 6, 8, 8))
        stacked = fdct(blocks)
        single = fdct(blocks[2, 3])
        assert np.allclose(stacked[2, 3], single)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            fdct(np.zeros((8, 4)))
        with pytest.raises(ValueError):
            idct(np.zeros((4, 8)))


class TestQuant:
    def test_intra_dc_step_eight(self):
        block = np.zeros((8, 8))
        block[0, 0] = 800.0  # flat block of 100s
        levels = quantize_intra(block, DEFAULT_INTRA_QUANT_MATRIX, 16)
        assert levels[0, 0] == 100
        recon = dequantize_intra(levels, DEFAULT_INTRA_QUANT_MATRIX, 16)
        assert recon[0, 0] == 800

    def test_reconstruction_error_bounded_by_step(self):
        rng = np.random.default_rng(3)
        coeffs = rng.uniform(-500, 500, size=(8, 8))
        for qscale in (2, 8, 16, 31 * 2):
            levels = quantize_intra(coeffs, DEFAULT_INTRA_QUANT_MATRIX, qscale)
            recon = dequantize_intra(levels, DEFAULT_INTRA_QUANT_MATRIX, qscale)
            step = DEFAULT_INTRA_QUANT_MATRIX * qscale / 16.0
            err = np.abs(recon - coeffs)[np.unravel_index(range(1, 64), (8, 8))]
            # mismatch control moves (7,7) by at most 1 extra unit
            assert np.all(err <= step.reshape(-1)[1:] + 1.5)

    def test_non_intra_zero_stays_zero(self):
        zeros = np.zeros((8, 8))
        levels = quantize_non_intra(zeros, DEFAULT_NON_INTRA_QUANT_MATRIX, 16)
        assert not levels.any()
        recon = dequantize_non_intra(levels, DEFAULT_NON_INTRA_QUANT_MATRIX, 16)
        # mismatch control still forces an odd sum via coefficient (7,7)
        assert abs(int(recon.sum())) <= 1

    def test_non_intra_dead_zone(self):
        # |coeff| below one step quantizes to zero (dead zone).
        coeffs = np.full((8, 8), 10.0)
        levels = quantize_non_intra(coeffs, DEFAULT_NON_INTRA_QUANT_MATRIX, 16)
        assert not levels.any()

    def test_levels_clamped_to_escape_range(self):
        coeffs = np.full((8, 8), 1e9)
        for fn, mat in (
            (quantize_intra, DEFAULT_INTRA_QUANT_MATRIX),
            (quantize_non_intra, DEFAULT_NON_INTRA_QUANT_MATRIX),
        ):
            levels = fn(coeffs, mat, 2)
            assert levels.max() <= LEVEL_MAX
            assert levels.min() >= LEVEL_MIN

    def test_dequant_saturates(self):
        levels = np.full((8, 8), LEVEL_MAX)
        recon = dequantize_intra(levels, DEFAULT_INTRA_QUANT_MATRIX, 62)
        assert recon.max() <= COEFF_MAX
        assert recon.min() >= COEFF_MIN

    @given(
        arrays(np.int64, (8, 8), elements=st.integers(-200, 200)),
        st.sampled_from([2, 4, 16, 40, 62]),
    )
    @settings(max_examples=40)
    def test_mismatch_control_makes_sum_odd(self, levels, qscale):
        recon = dequantize_non_intra(
            levels, DEFAULT_NON_INTRA_QUANT_MATRIX, qscale
        )
        assert int(recon.sum()) % 2 == 1

    def test_quantize_roundtrip_monotone(self):
        """Coarser quantizers never produce more nonzero levels."""
        rng = np.random.default_rng(4)
        coeffs = rng.uniform(-300, 300, size=(8, 8))
        counts = [
            int(np.count_nonzero(
                quantize_non_intra(coeffs, DEFAULT_NON_INTRA_QUANT_MATRIX, q)
            ))
            for q in (2, 8, 20, 40, 62)
        ]
        assert counts == sorted(counts, reverse=True)
