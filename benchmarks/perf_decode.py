"""Wall-clock decode/encode performance harness (scalar vs batched).

Unlike the ``bench_*`` experiment files, which reproduce the paper's
figures on the *simulated* machine, this harness measures real
wall-clock throughput of the two decode engines on this repository's
Table 1 small-stream matrix, plus the full-size 352x240 Table 1 stream
as the headline case.  Results are written to ``BENCH_decode.json`` at
the repo root so successive changes leave a perf trajectory.

Reported per stream:

* encode throughput (pictures/s, macroblocks/s) — one timed pass;
* decode throughput for ``engine="scalar"`` and ``engine="batched"``
  (best of N timed passes each, interleaved to spread machine noise);
* the batched/scalar speedup in pictures/s;
* for the headline stream, the measured phase split of the two-phase
  fast path (:func:`repro.parallel.macroblock_level.measured_phase_split`)
  — the empirical parse/reconstruct fractions behind the paper's
  Section 4 argument.

Run directly (``PYTHONPATH=src python benchmarks/perf_decode.py``) or
through pytest (``pytest benchmarks/perf_decode.py -m perf``); the
pytest entry point asserts the headline speedup so perf regressions
fail loudly, but only under the ``perf`` marker — tier-1 never runs
wall-clock assertions.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict
from datetime import datetime, timezone
from time import perf_counter

import numpy as np
import pytest

from repro.mpeg2.decoder import ENGINES, SequenceDecoder
from repro.parallel.macroblock_level import measured_phase_split
from repro.video.streams import (
    TestStreamSpec,
    build_stream,
    paper_stream_matrix,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_decode.json")

#: The full-size Table 1 row the acceptance numbers are quoted on:
#: 352x240, one 13-picture GOP, 5 Mb/s.
HEADLINE_SPEC = TestStreamSpec(
    name="table1/352x240/gop13",
    width=352,
    height=240,
    gop_size=13,
    pictures=13,
    bit_rate=5_000_000,
)

#: Quarter-scale version of the full four-resolution Table 1 matrix —
#: small enough that the whole matrix encodes and decodes in seconds,
#: wide enough to track throughput scaling across resolutions.
SMALL_MATRIX = paper_stream_matrix(pictures=4, resolution_divisor=4, gop_sizes=(4,))

#: Timed decode passes per engine (the minimum is reported).
DECODE_REPEATS = 5


def _cores() -> int:
    """Effective core count (affinity mask, not package count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _traced_stage_breakdown(data: bytes, engine: str = "batched") -> dict:
    """One traced decode pass -> per-stage span totals.

    Enables the :mod:`repro.obs` tracer for a single (untimed) decode
    and aggregates the emitted spans, so ``BENCH_decode.json`` records
    *where* the headline decode time goes (parse vs reconstruct vs
    per-kernel), not just the end-to-end number — the harness-level
    analogue of the paper's Table 2 breakdown.
    """
    from repro.analysis.obs_report import span_totals
    from repro.obs.trace import (
        disable_tracing,
        enable_tracing,
        get_tracer,
        to_chrome,
    )

    enable_tracing(process_name=f"perf_decode ({engine})")
    try:
        SequenceDecoder(data, engine=engine).decode_all()
        doc = to_chrome(get_tracer().events)
    finally:
        disable_tracing()
    return span_totals(doc)


def _decode_seconds(data: bytes, engine: str, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = perf_counter()
        SequenceDecoder(data, engine=engine).decode_all()
        times.append(perf_counter() - t0)
    return min(times)


def _throughput(spec: TestStreamSpec, seconds: float) -> dict[str, float]:
    mb_per_picture = ((spec.width + 15) // 16) * ((spec.height + 15) // 16)
    return {
        "seconds": seconds,
        "pictures_per_sec": spec.pictures / seconds,
        "macroblocks_per_sec": spec.pictures * mb_per_picture / seconds,
    }


def bench_stream(
    spec: TestStreamSpec, repeats: int = DECODE_REPEATS
) -> dict[str, object]:
    """Measure one stream: encode once, decode with both engines."""
    from repro.mpeg2.encoder import encode_sequence

    frames = spec.video().frames(spec.pictures)
    t0 = perf_counter()
    encode_sequence(frames, spec.encoder_config())
    encode_s = perf_counter() - t0

    data = build_stream(spec)  # disk-cached; bitstream identical to above
    decode: dict[str, dict[str, float]] = {}
    # Interleave engine passes so slow drifts in machine load hit both.
    times: dict[str, list[float]] = {e: [] for e in ENGINES}
    for _ in range(repeats):
        for engine in ENGINES:
            t0 = perf_counter()
            SequenceDecoder(data, engine=engine).decode_all()
            times[engine].append(perf_counter() - t0)
    for engine in ENGINES:
        decode[engine] = _throughput(spec, min(times[engine]))

    return {
        "spec": asdict(spec),
        "stream_bytes": len(data),
        "encode": _throughput(spec, encode_s),
        "decode": decode,
        "decode_speedup": (
            decode["batched"]["pictures_per_sec"]
            / decode["scalar"]["pictures_per_sec"]
        ),
    }


def run(path: str = OUTPUT_PATH) -> dict[str, object]:
    """Benchmark the matrix + headline stream and write the JSON."""
    streams = {}
    for spec in SMALL_MATRIX:
        streams[spec.name] = bench_stream(spec, repeats=3)
    headline = bench_stream(HEADLINE_SPEC, repeats=DECODE_REPEATS)
    streams[HEADLINE_SPEC.name] = headline
    headline["phase_split"] = measured_phase_split(build_stream(HEADLINE_SPEC))
    headline["stage_breakdown"] = _traced_stage_breakdown(
        build_stream(HEADLINE_SPEC)
    )

    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cores(),
        "decode_repeats": DECODE_REPEATS,
        "headline": HEADLINE_SPEC.name,
        "headline_decode_speedup": headline["decode_speedup"],
        "streams": streams,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


#: The perf-smoke spec: the largest quarter-scale matrix row — big
#: enough that the batched engine's win sits far above shared-runner
#: timing noise, small enough that two interleaved passes per engine
#: finish in a couple of seconds.
SMOKE_SPEC = SMALL_MATRIX[-1]


@pytest.mark.perf
@pytest.mark.perf_smoke
def test_perf_smoke(record) -> None:
    """Fast sanity gate for the default CI matrix (``-m perf_smoke``).

    Not a calibrated benchmark: one small stream, two passes per
    engine, and a deliberately loose 2x floor.  It exists to catch
    "the batched engine stopped being fast at all" on every push
    without the full harness's runtime or its sensitivity to noisy
    shared runners.
    """
    row = bench_stream(SMOKE_SPEC, repeats=2)
    record(
        f"{SMOKE_SPEC.name}: scalar "
        f"{row['decode']['scalar']['pictures_per_sec']:.2f} p/s, batched "
        f"{row['decode']['batched']['pictures_per_sec']:.2f} p/s, "
        f"speedup {row['decode_speedup']:.2f}x (floor 2.0x)"
    )
    assert row["decode_speedup"] >= 2.0


@pytest.mark.perf
def test_perf_decode(record) -> None:
    """Perf gate: batched must beat scalar >= 4x on the headline stream."""
    report = run()
    lines = [
        f"{'stream':<24}{'scalar p/s':>12}{'batched p/s':>13}{'speedup':>9}"
    ]
    for name, row in report["streams"].items():
        lines.append(
            f"{name:<24}"
            f"{row['decode']['scalar']['pictures_per_sec']:>12.2f}"
            f"{row['decode']['batched']['pictures_per_sec']:>13.2f}"
            f"{row['decode_speedup']:>8.2f}x"
        )
    split = report["streams"][report["headline"]]["phase_split"]
    lines.append(
        f"headline phase split: parse {split['parse_fraction']:.1%}, "
        f"amdahl bound of parser-process architecture "
        f"{split['amdahl_bound']:.2f}x"
    )
    record("\n".join(lines))
    assert report["headline_decode_speedup"] >= 4.0


def main() -> int:
    report = run()
    print(f"wrote {OUTPUT_PATH}")
    for name, row in report["streams"].items():
        print(
            f"{name:<24} scalar {row['decode']['scalar']['pictures_per_sec']:8.2f} p/s"
            f"  batched {row['decode']['batched']['pictures_per_sec']:8.2f} p/s"
            f"  speedup {row['decode_speedup']:.2f}x"
        )
    print(f"headline speedup: {report['headline_decode_speedup']:.2f}x")
    return 0 if report["headline_decode_speedup"] >= 4.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
