"""mp pipeline tracing: shard merge, timeline consistency, stats.

The acceptance-path test: a real 2-process decode with tracing on must
produce one merged Chrome trace containing the parent's scan/merge
spans and both workers' decode spans, with monotonically consistent
timestamps, and the stall breakdown must be a valid percentage split.
"""

from __future__ import annotations

from repro.mpeg2.counters import WorkCounters
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.stalls import CANONICAL_REASONS
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    get_tracer,
    to_chrome,
    validate_chrome_trace,
)
from repro.parallel.mp import MPGopDecoder


def _traced_mp_decode(data: bytes, workers: int = 2):
    """Decode with tracing enabled; returns (decoder, chrome doc)."""
    enable_tracing(process_name="main (scan+merge)")
    reset_metrics()
    try:
        counters = WorkCounters()
        decoder = MPGopDecoder(data, workers=workers)
        frames = decoder.decode_all(counters)
        doc = to_chrome(get_tracer().events)
    finally:
        disable_tracing()
    return decoder, frames, doc


class TestMergedTimeline:
    def test_trace_has_scan_workers_and_merge(self, two_gop_stream):
        decoder, _, doc = _traced_mp_decode(two_gop_stream, workers=2)
        events = validate_chrome_trace(doc)
        names = {e["name"] for e in events}
        assert "mp.scan" in names
        assert "mp.worker.decode_gop" in names
        assert "mp.shm.write" in names
        assert "mp.shm.read" in names
        assert "mp.result.wait" in names  # parent-side merge wait

        parent_pid = {e["pid"] for e in events if e["name"] == "mp.scan"}
        worker_pids = {
            e["pid"]
            for e in events
            if e["name"] in ("mp.worker.decode_gop", "mp.worker.start")
        } - parent_pid
        assert len(worker_pids) >= 2, (
            f"expected spans from >= 2 worker processes, got {worker_pids}"
        )

    def test_merged_timestamps_monotonic_and_rebased(self, two_gop_stream):
        _, _, doc = _traced_mp_decode(two_gop_stream, workers=2)
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert ts == sorted(ts)
        non_meta = [
            e["ts"] for e in doc["traceEvents"] if e.get("ph") != "M"
        ]
        assert min(non_meta) == 0  # rebased to the earliest event

    def test_worker_spans_fall_inside_parent_wall_window(
        self, two_gop_stream
    ):
        """monotonic_ns is system-wide: worker spans can't time-travel."""
        _, _, doc = _traced_mp_decode(two_gop_stream, workers=2)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        wall_end = max(e["ts"] + e.get("dur", 0) for e in events)
        for e in events:
            assert e["ts"] >= 0
            assert e["ts"] <= wall_end

    def test_frames_identical_to_sequential(self, two_gop_stream):
        from repro.mpeg2.decoder import SequenceDecoder

        from tests.mpeg2.test_batched_parity import assert_frames_identical

        _, frames, _ = _traced_mp_decode(two_gop_stream, workers=2)
        expected = SequenceDecoder(two_gop_stream).decode_all()
        assert_frames_identical(expected, frames)


class TestStatsAndStalls:
    def test_worker_metrics_fold_into_parent_registry(self, two_gop_stream):
        _traced_mp_decode(two_gop_stream, workers=2)
        # _traced_mp_decode resets the registry *before* decoding, so
        # anything present afterwards came from the run (workers ship
        # per-task snapshots that merge into the parent's registry).
        snap = metrics().snapshot()
        assert snap["histograms"]["decode.picture_ms"]["count"] == 8
        assert snap["histograms"]["decode.gop_ms"]["count"] == 2
        assert "mp.frame_pool.occupancy" in snap["gauges"]
        reset_metrics()

    def test_stall_breakdown_is_valid_percentage_split(self, two_gop_stream):
        decoder, _, _ = _traced_mp_decode(two_gop_stream, workers=2)
        breakdown = decoder.stall_breakdown()
        assert breakdown, "a real 2-worker run records at least one stall"
        assert sum(breakdown.values()) <= 1.0 + 1e-12
        assert all(0.0 <= v for v in breakdown.values())
        assert set(breakdown) <= set(CANONICAL_REASONS)

    def test_obs_report_renders_from_trace_file(
        self, two_gop_stream, tmp_path
    ):
        from repro.analysis.obs_report import (
            load_trace,
            render_report,
            span_totals,
            stall_breakdown,
            utilization,
        )

        enable_tracing(process_name="main (scan+merge)")
        try:
            MPGopDecoder(two_gop_stream, workers=2).decode_all()
            path = tmp_path / "trace.json"
            get_tracer().write_chrome(str(path))
        finally:
            disable_tracing()

        doc = load_trace(str(path))
        totals = span_totals(doc)
        assert totals["mp.worker.decode_gop"]["count"] == 2
        util = utilization(doc)
        assert len(util) >= 3  # parent + 2 workers
        assert all(0.0 <= u["busy_fraction"] <= 1.0 for u in util.values())
        trace_split = stall_breakdown(doc)
        assert sum(trace_split.values()) <= 1.0 + 1e-12
        report = render_report(doc)
        assert "per-process utilization" in report
        assert "span totals" in report
