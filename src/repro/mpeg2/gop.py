"""Group-of-pictures structure: picture types, coding order, references.

The paper's streams use an I/P distance of 3 (two B-pictures between
consecutive reference pictures) and GOP sizes of 4, 13, 16 and 31 —
all of the form ``N = 1 + k*M`` so every GOP is *closed*: it starts
with an I-picture in display order, ends with a reference picture, and
no picture references anything outside the GOP.  Closed GOPs are the
precondition of the paper's GOP-level parallel decomposition
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpeg2.constants import PictureType


@dataclass(frozen=True)
class GopStructure:
    """A closed GOP of ``size`` pictures with I/P distance ``ip_distance``.

    Display order is ``I (B^(M-1) P)*``; e.g. size 13, M=3:
    ``I B B P B B P B B P B B P``.
    """

    size: int
    ip_distance: int = 3

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"GOP size must be >= 1, got {self.size}")
        if self.ip_distance < 1:
            raise ValueError(f"I/P distance must be >= 1, got {self.ip_distance}")
        if (self.size - 1) % self.ip_distance != 0:
            raise ValueError(
                f"GOP size {self.size} with I/P distance {self.ip_distance} "
                "cannot form a closed GOP (need size == 1 + k*distance so the "
                "GOP ends on a reference picture)"
            )

    # ------------------------------------------------------------------
    def display_types(self) -> list[PictureType]:
        """Picture type at each display position."""
        types = []
        for d in range(self.size):
            if d == 0:
                types.append(PictureType.I)
            elif d % self.ip_distance == 0:
                types.append(PictureType.P)
            else:
                types.append(PictureType.B)
        return types

    def coding_order(self) -> list[int]:
        """Display indices in bitstream (coding) order.

        References are coded before the B-pictures that use them:
        ``I0, P3, B1, B2, P6, B4, B5, ...``.
        """
        order = [0]
        m = self.ip_distance
        for ref in range(m, self.size, m):
            order.append(ref)
            order.extend(range(ref - m + 1, ref))
        return order

    def display_order_of_coded(self) -> list[int]:
        """Inverse of :meth:`coding_order`: coded position per display index."""
        order = self.coding_order()
        inv = [0] * self.size
        for coded_pos, disp in enumerate(order):
            inv[disp] = coded_pos
        return inv

    def references(self, display_index: int) -> tuple[int | None, int | None]:
        """(forward, backward) reference display indices of a picture.

        I-pictures have none; P-pictures reference the previous
        reference picture; B-pictures reference the surrounding pair.
        """
        if not 0 <= display_index < self.size:
            raise ValueError(f"display index {display_index} out of range")
        m = self.ip_distance
        if display_index == 0:
            return None, None
        if display_index % m == 0:
            return display_index - m, None
        fwd = (display_index // m) * m
        return fwd, fwd + m

    def type_of(self, display_index: int) -> PictureType:
        if display_index == 0:
            return PictureType.I
        return (
            PictureType.P
            if display_index % self.ip_distance == 0
            else PictureType.B
        )

    @property
    def reference_count(self) -> int:
        """Number of I+P pictures in the GOP."""
        return 1 + (self.size - 1) // self.ip_distance

    @property
    def b_count(self) -> int:
        return self.size - self.reference_count

    def dependents_of(self, display_index: int) -> list[int]:
        """Display indices of pictures that reference ``display_index``.

        Used by the improved slice-level decoder to know which pictures
        become decodable once a reference picture completes.
        """
        out = []
        for d in range(self.size):
            fwd, bwd = self.references(d)
            if display_index in (fwd, bwd):
                out.append(d)
        return out
