"""Cross-process metrics: worker shards must reach the parent registry.

The regression this guards: worker processes inherit the parent's
metrics registry at fork, record into their own copy, and before PR-8
those counts silently died with the worker.  Workers now write per-pid
JSON shards which the parent merges after join — so the parent's
totals must equal the sum of the workers' totals, exactly.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import metrics, reset_metrics
from repro.serve import DecodeService
from tests.parallel.test_mp_fault_injection import assert_no_stray_children

WORKER_COUNTERS = ("serve.worker.tasks", "serve.worker.pictures")


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


class TestShardMerge:
    def test_parent_totals_equal_worker_sums(
        self, golden, no_shm_leak, watchdog
    ):
        names = ["ipb_64x48_gop13", "two_gop_48x32"]
        svc = DecodeService(workers=2, capacity=len(names))
        for name in names:
            svc.submit(name, golden.data(name))
        report = svc.run()
        assert report["status_counts"] == {"done": len(names)}

        shards = svc.last_worker_metrics
        assert len(shards) == 2, "one metrics shard per worker"
        assert len({s["pid"] for s in shards}) == 2

        snap = metrics().snapshot()
        for name in WORKER_COUNTERS:
            worker_sum = sum(
                s["metrics"].get("counters", {}).get(name, 0)
                for s in shards
            )
            assert worker_sum > 0, f"{name} never recorded in any worker"
            assert snap["counters"].get(name) == worker_sum, name

        # Histogram observation counts merge too, not just counters.
        hist_sum = sum(
            s["metrics"]
            .get("histograms", {})
            .get("serve.worker.task_ms", {})
            .get("count", 0)
            for s in shards
        )
        assert hist_sum > 0
        assert (
            snap["histograms"]["serve.worker.task_ms"]["count"] == hist_sum
        )
        # Total pictures across workers is the sessions' picture count.
        emitted = sum(s.emitted_pictures for s in svc.sessions.values())
        assert snap["counters"]["serve.worker.pictures"] == emitted
        assert_no_stray_children()

    def test_inprocess_records_same_names(self, golden):
        # workers=0 must surface the identical metric vocabulary so
        # dashboards don't care which mode ran, and has no shards.
        svc = DecodeService(workers=0)
        svc.submit("s", golden.data("two_gop_48x32"))
        report = svc.run()
        assert report["status_counts"] == {"done": 1}
        assert svc.last_worker_metrics == []
        snap = metrics().snapshot()
        for name in WORKER_COUNTERS:
            assert snap["counters"].get(name, 0) > 0, name
        assert snap["histograms"]["serve.worker.task_ms"]["count"] > 0
        assert (
            snap["counters"]["serve.worker.pictures"]
            == svc.sessions["s"].emitted_pictures
        )

    def test_task_errors_counted_across_boundary(
        self, golden, no_shm_leak, watchdog
    ):
        # A stream that scans clean but fails mid-decode charges
        # serve.worker.task_errors in the worker; the parent must see it.
        data = bytearray(golden.data("two_gop_48x32"))
        # Corrupt a byte deep in the last GOP's slice payload so the
        # scan (headers only) passes but slice decode fails.
        data[-40] ^= 0xFF
        svc = DecodeService(workers=2)
        svc.submit("bad", bytes(data))
        svc.run()
        snap = metrics().snapshot()
        if svc.sessions["bad"].status.value == "failed":
            assert snap["counters"].get("serve.worker.task_errors", 0) > 0
        assert_no_stray_children()
