"""Zig-zag and alternate coefficient scan orders.

The DCT concentrates energy in low frequencies; run/level coding is
effective only if coefficients are serialised from low to high
frequency.  MPEG-2 defines two scans (ISO 13818-2 Figure 7-2/7-3): the
classic zig-zag used for progressive material and the *alternate* scan
that suits interlaced content.  We implement both; the codec uses the
zig-zag by default.
"""

from __future__ import annotations

import numpy as np

from repro.mpeg2.constants import BLOCK_SIZE


def _zigzag_order() -> np.ndarray:
    """Indices of the classic zig-zag scan over an 8x8 block.

    ``order[k] = (row, col)`` flattened to ``row * 8 + col`` — i.e. the
    position in the raster block of the k-th scanned coefficient.
    """
    n = BLOCK_SIZE
    order = np.empty(n * n, dtype=np.int64)
    r = c = 0
    for k in range(n * n):
        order[k] = r * n + c
        if (r + c) % 2 == 0:  # moving up-right
            if c == n - 1:
                r += 1
            elif r == 0:
                c += 1
            else:
                r -= 1
                c += 1
        else:  # moving down-left
            if r == n - 1:
                c += 1
            elif c == 0:
                r += 1
            else:
                r += 1
                c -= 1
    return order


def _alternate_order() -> np.ndarray:
    """MPEG-2 alternate scan (ISO 13818-2 Figure 7-3), flattened."""
    table = [
        0, 8, 16, 24, 1, 9, 2, 10,
        17, 25, 32, 40, 48, 56, 57, 49,
        41, 33, 26, 18, 3, 11, 4, 12,
        19, 27, 34, 42, 50, 58, 35, 43,
        51, 59, 20, 28, 5, 13, 6, 14,
        21, 29, 36, 44, 52, 60, 37, 45,
        53, 61, 22, 30, 7, 15, 23, 31,
        38, 46, 54, 62, 39, 47, 55, 63,
    ]
    return np.asarray(table, dtype=np.int64)


#: ``ZIGZAG[k]`` is the raster index of the k-th coefficient in scan order.
ZIGZAG = _zigzag_order()
ALTERNATE = _alternate_order()

#: Inverse permutations: ``ZIGZAG_INV[raster] = scan position``.
ZIGZAG_INV = np.argsort(ZIGZAG)
ALTERNATE_INV = np.argsort(ALTERNATE)

def scan_to_raster_flat(
    indices: np.ndarray, alternate: bool = False
) -> np.ndarray:
    """Vectorized scan->raster conversion of flat coefficient indices.

    ``indices`` packs ``block_base + scan_position`` with
    ``block_base`` a multiple of 64; the low six bits (the position in
    scan order) are replaced by the raster position of that
    coefficient.  The batched parser emits its sparse coefficient
    stream in scan space — a plain integer add per coefficient, no
    per-symbol table lookup — and phase 2 permutes the whole stream in
    this one pass, so no block is ever un-scanned individually.
    """
    order = ALTERNATE if alternate else ZIGZAG
    return (indices & -64) | order[indices & 63]


def scan_block(block: np.ndarray, order: np.ndarray = ZIGZAG) -> np.ndarray:
    """Serialise 8x8 block(s) into scan order.

    Accepts shape ``(..., 8, 8)`` and returns ``(..., 64)``.
    """
    flat = np.reshape(block, block.shape[:-2] + (BLOCK_SIZE * BLOCK_SIZE,))
    return flat[..., order]


def unscan_block(scanned: np.ndarray, order: np.ndarray = ZIGZAG) -> np.ndarray:
    """Inverse of :func:`scan_block`: ``(..., 64)`` -> ``(..., 8, 8)``."""
    out = np.empty_like(scanned)
    out[..., order] = scanned
    return np.reshape(out, scanned.shape[:-1] + (BLOCK_SIZE, BLOCK_SIZE))
