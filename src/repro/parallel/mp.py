"""Real-hardware GOP-level parallel decoding with OS processes.

Everything else in :mod:`repro.parallel` runs the paper's scan/worker/
display architecture on the *simulated* SMP, because CPython threads
cannot show real speedup under the GIL.  This module escapes the GIL
the same way the paper escaped a single R4400: separate OS processes
(`multiprocessing`), one per worker, each decoding whole closed GOPs.

The paper's three roles map onto real primitives:

* **scan** — the parent builds a :class:`repro.mpeg2.index.StreamIndex`
  (start-code scan, no decoding) and splits it into per-GOP byte-range
  tasks (:func:`scan_gop_tasks` /
  :func:`repro.mpeg2.index.gop_byte_ranges`).
* **workers** — a *persistent*, pre-forked :class:`multiprocessing.Pool`
  (:func:`get_persistent_pool`), created once per ``(workers,
  start_method)`` and reused across every decode in the process, so
  repeated runs pay fork + interpreter warm-up exactly once.  The
  coded stream is published **once** into POSIX shared memory
  (:class:`StreamArena`); workers attach by name and slice their GOP's
  bytes straight out of the segment — the bitstream never crosses the
  task pipe.  Each worker rebuilds a stand-alone substream
  (sequence-header prefix + GOP bytes), decodes it with the batched
  :class:`~repro.mpeg2.decoder.SequenceDecoder`, and writes the
  decoded planes straight into a shared-memory frame pool.  Tasks are
  *chunks* of consecutive GOPs (:func:`coalesce_gop_tasks`) so streams
  with many more GOPs than workers cost one queue message per chunk —
  dispatch and result publication both — instead of one per GOP; only
  tiny metadata (temporal references + work counters) crosses the
  process boundary through pickling, and pixel arrays never do.
* **display** — the parent merges completed GOPs back into display
  order through a reorder buffer (:func:`_merge_in_order`), reading
  frames out of the shared pool.

``workers=0`` runs the identical scan/decode/merge pipeline in-process
(no ``fork``, no shared memory) so functional tests are deterministic
on constrained CI; ``workers>=1`` is the real-silicon path measured by
``benchmarks/perf_parallel.py``.

Bit-exactness: closed GOPs carry no coded state across their
boundaries, so a GOP decoded from its substream is identical to the
same GOP decoded mid-stream; frames within a GOP are display-ordered
by ``decode_gop`` and closed GOPs appear in display order in the
stream.  The mp decoder therefore reproduces
``SequenceDecoder.decode_all`` bit-for-bit, counters included — pinned
by ``tests/parallel/test_mp_parity.py`` and the golden-vector suite.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from glob import glob
from multiprocessing import shared_memory
from typing import Callable, Iterator

import numpy as np

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import ENGINES, DecodeError, SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    StreamIndex,
    build_index,
    sequence_prefix,
)
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.stalls import (
    REASON_MERGE,
    REASON_QUEUE_GET,
    StallTable,
)
from repro.obs.trace import (
    Tracer,
    enable_tracing,
    get_tracer,
    trace_complete,
    trace_span,
    tracing_enabled,
)


@dataclass(frozen=True)
class FrameLayout:
    """Byte layout of one decoded 4:2:0 frame slot in the shared pool.

    Slots are sized for *coded* planes (multiples of 16); display
    dimensions ride along so frames can be rebuilt exactly.
    """

    display_width: int
    display_height: int
    coded_width: int
    coded_height: int

    @classmethod
    def for_display(cls, width: int, height: int) -> "FrameLayout":
        blank = Frame.blank(width, height)
        return cls(
            display_width=width,
            display_height=height,
            coded_width=blank.coded_width,
            coded_height=blank.coded_height,
        )

    @property
    def y_bytes(self) -> int:
        return self.coded_width * self.coded_height

    @property
    def chroma_bytes(self) -> int:
        return (self.coded_width // 2) * (self.coded_height // 2)

    @property
    def slot_bytes(self) -> int:
        """Bytes per frame slot: Y + Cb + Cr, stored contiguously."""
        return self.y_bytes + 2 * self.chroma_bytes

    def slot_views(
        self, buf, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``uint8`` plane views over slot ``slot`` of ``buf``."""
        base = slot * self.slot_bytes
        ch, cw = self.coded_height, self.coded_width
        y = np.ndarray((ch, cw), dtype=np.uint8, buffer=buf, offset=base)
        cb = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes,
        )
        cr = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes + self.chroma_bytes,
        )
        return y, cb, cr


class FramePoolBase:
    """Slot-addressed decoded-frame storage over an arbitrary buffer.

    Concrete pools supply ``_pool_buf`` (a writable buffer of at least
    ``layout.slot_bytes * slots`` bytes).  :class:`SharedFramePool`
    backs it with POSIX shared memory (the real-silicon path);
    :class:`LocalFramePool` with a plain ``numpy`` array (the
    ``workers=0`` in-process path and the serve layer's fallback).
    """

    layout: FrameLayout
    slots: int

    @property
    def _pool_buf(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Allocated pool size (the Fig. 8 quantity, measured for real)."""
        return self.layout.slot_bytes * self.slots

    def write_frame(self, slot: int, frame: Frame) -> None:
        """Copy ``frame``'s planes into ``slot`` (worker side)."""
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        y[:, :] = frame.y
        cb[:, :] = frame.cb
        cr[:, :] = frame.cr
        del y, cb, cr  # release exported buffers before any close()

    def read_frame(self, slot: int, temporal_reference: int) -> Frame:
        """Rebuild the :class:`Frame` stored in ``slot`` (display side)."""
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        frame = Frame(
            y=y.copy(),
            cb=cb.copy(),
            cr=cr.copy(),
            display_width=self.layout.display_width,
            display_height=self.layout.display_height,
            temporal_reference=temporal_reference,
        )
        del y, cb, cr
        return frame

    def view_frame(self, slot: int, temporal_reference: int = 0) -> Frame:
        """A zero-copy :class:`Frame` whose planes alias slot ``slot``.

        This is how the slice-level workers read reference pictures
        and write their own rows **in place**: no pixel ever crosses a
        process boundary.  The caller must drop every reference to the
        returned frame (and any views derived from it) before
        :meth:`close`, or the exported-buffer check in
        ``SharedMemory.close`` will raise.
        """
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        return Frame(
            y=y,
            cb=cb,
            cr=cr,
            display_width=self.layout.display_width,
            display_height=self.layout.display_height,
            temporal_reference=temporal_reference,
        )

    def close(self) -> None:  # pragma: no cover - overridden
        pass

    def unlink(self) -> None:  # pragma: no cover - overridden
        pass


class SharedFramePool(FramePoolBase):
    """A block of ``slots`` decoded-frame slots in POSIX shared memory.

    Workers write planes in place (:meth:`write_frame`); the display
    merger copies them out (:meth:`read_frame`).  The *owner* (parent
    process) creates and eventually unlinks the segment; workers attach
    by name and never unlink.
    """

    def __init__(
        self, layout: FrameLayout, slots: int, name: str | None = None
    ) -> None:
        self.layout = layout
        self.slots = slots
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(layout.slot_bytes * slots, 1)
            )
            self._owner = True
        else:
            # Attach-only: pool workers share the parent's resource
            # tracker (they are forked/spawned from it), so the segment
            # is registered exactly once and unlinked exactly once by
            # the owning parent — no per-worker unregister needed.
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False

    @property
    def _pool_buf(self):
        return self._shm.buf

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


class LocalFramePool(FramePoolBase):
    """The same slot discipline on a process-local ``numpy`` buffer.

    Used by the in-process (``workers=0``) paths — deterministic on
    constrained CI, never touches ``/dev/shm``, nothing to unlink.
    """

    def __init__(self, layout: FrameLayout, slots: int) -> None:
        self.layout = layout
        self.slots = slots
        self._arr = np.zeros(max(layout.slot_bytes * slots, 1), dtype=np.uint8)

    @property
    def _pool_buf(self):
        return self._arr.data

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


class StreamArena:
    """The coded bitstream, published once into POSIX shared memory.

    The low-overhead dispatch contract: the parent copies the stream
    into a segment exactly once per decode; every worker attaches by
    name and parses **in place** through :attr:`view`, materialising
    only the few-KB byte range of its own task.  Nothing about the
    bitstream ever rides the task pipe — with a spawn start method the
    per-worker cost drops from pickling the whole stream to pickling a
    segment name, and with fork it removes the initargs copy entirely.

    The parent (owner) creates and eventually unlinks the segment;
    workers attach and only ever :meth:`close`.
    """

    def __init__(
        self,
        data: bytes | None = None,
        *,
        name: str | None = None,
        size: int = 0,
    ) -> None:
        if name is None:
            if data is None:
                raise ValueError("StreamArena needs data (create) or name (attach)")
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(len(data), 1)
            )
            self._shm.buf[: len(data)] = data
            self.size = len(data)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.size = size
            self._owner = False
        self._view: memoryview | None = None

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def view(self) -> memoryview:
        """Zero-copy view of the published bytes (cached; released by
        :meth:`close`)."""
        if self._view is None:
            self._view = self._shm.buf[: self.size]
        return self._view

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


# ----------------------------------------------------------------------
# scan: GOP byte ranges -> tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GopTask:
    """One unit of worker work: a GOP's byte range + its frame slots."""

    gop: int
    byte_start: int
    byte_end: int
    picture_count: int
    slot_base: int


@dataclass
class GopResult:
    """What a worker sends back: metadata only, never pixels."""

    gop: int
    slot_base: int
    temporal_references: list[int] = field(default_factory=list)
    counters: WorkCounters = field(default_factory=WorkCounters)
    #: Observability payloads: the worker's per-task metrics snapshot
    #: (``repro.obs.metrics`` shape, merged into the parent registry)
    #: and its stall-table snapshot (idle-between-tasks attribution).
    #: Tiny dicts — pixel data still never crosses the boundary.
    metrics_snap: dict | None = None
    stalls_snap: dict | None = None


def scan_gop_tasks(index: StreamIndex) -> list[GopTask]:
    """The scan step: split the index into per-GOP tasks.

    Slot bases are assigned cumulatively so every decoded picture in
    the stream has a reserved slot in the shared pool — the mp
    equivalent of the paper's decoded-frame memory that Fig. 8 charts.
    """
    tasks: list[GopTask] = []
    slot = 0
    for gi, gop in enumerate(index.gops):
        tasks.append(
            GopTask(
                gop=gi,
                byte_start=gop.start_offset,
                byte_end=gop.end_offset,
                picture_count=len(gop.pictures),
                slot_base=slot,
            )
        )
        slot += len(gop.pictures)
    return tasks


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Seconds between liveness polls while the parent blocks on results.
#: A dead worker (crash, OOM kill, SIGKILL) is detected within one
#: poll instead of hanging the merge loop forever on a lost task.
LIVENESS_POLL_S = 0.2

#: Worker-process attachment caches: shared segments this worker has
#: already mapped, keyed by segment name.  Persistent workers outlive
#: any single stream, so attachments are cached across tasks (attach
#: once per stream per worker, not per task) and evicted LRU so a
#: long-lived pool serving many streams holds at most
#: ``_ATTACH_CACHE_SLOTS`` stale mappings.
_ARENA_CACHE: "OrderedDict[str, StreamArena]" = OrderedDict()
_POOL_CACHE: "OrderedDict[str, SharedFramePool]" = OrderedDict()
_ATTACH_CACHE_SLOTS = 4

#: Worker idle-attribution baseline (`queue.get` stall between tasks).
_LAST_END_NS = 0

#: Whether this worker process has enabled its process-local tracer.
_TRACING_ON = False


def _evict_lru(cache: OrderedDict) -> None:
    while len(cache) > _ATTACH_CACHE_SLOTS:
        _name, seg = cache.popitem(last=False)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass


def _attached_arena(name: str, size: int) -> memoryview:
    arena = _ARENA_CACHE.get(name)
    if arena is None:
        arena = StreamArena(name=name, size=size)
        _ARENA_CACHE[name] = arena
        _evict_lru(_ARENA_CACHE)
    else:
        _ARENA_CACHE.move_to_end(name)
    return arena.view


def _attached_pool(name: str, layout: FrameLayout) -> SharedFramePool:
    pool = _POOL_CACHE.get(name)
    if pool is None:
        pool = SharedFramePool(layout, slots=0, name=name)
        _POOL_CACHE[name] = pool
        _evict_lru(_POOL_CACHE)
    else:
        _POOL_CACHE.move_to_end(name)
    return pool


def _ensure_worker_tracing(trace_dir: str | None) -> str | None:
    """Lazily enable this worker's tracer; return its shard path.

    Persistent workers don't know at fork time whether any given run
    will trace, so tracing is enabled on the first traced task and the
    shard directory rides in on every task.
    """
    global _TRACING_ON
    if trace_dir is None:
        return None
    pid = os.getpid()
    if not _TRACING_ON:
        enable_tracing(process_name=f"worker-{pid}")
        _TRACING_ON = True
        tracer = get_tracer()
        if tracer is not None:
            tracer.instant("mp.worker.start", cat="mp")
    return os.path.join(trace_dir, f"shard-{pid}.jsonl")


def _init_persistent_worker() -> None:
    """Pool initializer: stream-agnostic — per-stream state attaches
    lazily from the segment names each task carries."""
    global _LAST_END_NS
    reset_metrics()
    _LAST_END_NS = time.monotonic_ns()


def _decode_substream(
    substream: bytes, engine: str, resilient: bool
) -> tuple[list[Frame], WorkCounters]:
    """Decode a single-GOP substream to display-ordered frames."""
    counters = WorkCounters()
    frames = SequenceDecoder(
        substream, engine=engine, resilient=resilient
    ).decode_all(counters)
    return frames, counters


@dataclass(frozen=True)
class GopChunk:
    """One dispatch unit: consecutive GOP tasks + the decode context.

    Everything a stream-agnostic persistent worker needs: the shared
    segment names (bitstream arena + frame pool), the tiny
    sequence-header prefix, and the member tasks.  One queue message
    dispatches the whole chunk; one message publishes all its results.
    """

    arena_name: str
    arena_size: int
    prefix: bytes
    pool_name: str
    layout: FrameLayout
    engine: str
    resilient: bool
    trace_dir: str | None
    crash_gop: int | None
    tasks: tuple[GopTask, ...]
    #: Parent's dispatch timestamp (``time.monotonic_ns()``).  Persistent
    #: workers clamp idle attribution to this: time spent between *runs*
    #: (the pool sat warm while no decode was active) is not a
    #: ``queue.get`` stall of the run that happens to come next.
    epoch_ns: int = 0


@dataclass
class ChunkResult:
    """All of one chunk's GOP results in a single queue message."""

    results: list[GopResult]
    metrics_snap: dict | None = None
    stalls_snap: dict | None = None


def coalesce_gop_tasks(
    tasks: list[GopTask], workers: int
) -> list[tuple[GopTask, ...]]:
    """Group consecutive GOP tasks into coarse dispatch chunks.

    When a stream has many more GOPs than the pool has workers, per-GOP
    messages are pure overhead: the pool still load-balances with two
    waves of chunks per worker, so tasks are grouped to at most
    ``2 * workers`` chunks.  Short streams (or big pools) degenerate to
    one GOP per chunk — coalescing never *reduces* available
    parallelism.  Consecutive grouping keeps completions roughly in
    stream order, which keeps the display reorder buffer shallow.
    """
    if workers <= 0 or not tasks:
        return [(t,) for t in tasks]
    per = -(-len(tasks) // (2 * workers))  # ceil
    return [tuple(tasks[i : i + per]) for i in range(0, len(tasks), per)]


def _decode_gop_chunk(chunk: GopChunk) -> ChunkResult:
    """Worker body: decode a chunk of GOPs, park frames in shared memory.

    The bitstream is parsed in place from the arena segment — only the
    chunk's own GOP byte ranges are ever materialised as ``bytes``.
    """
    global _LAST_END_NS
    shard = _ensure_worker_tracing(chunk.trace_dir)
    # Idle attribution: the gap since the previous task ended is time
    # this worker spent waiting on the task queue (queue.get stall).
    # Clamped to the chunk's dispatch epoch so a warm persistent worker
    # does not book the dead time between two unrelated runs as a
    # stall of the later one.
    now_ns = time.monotonic_ns()
    baseline_ns = max(_LAST_END_NS, chunk.epoch_ns)
    idle_ns = now_ns - baseline_ns if baseline_ns else 0
    stalls = StallTable()
    if idle_ns > 0:
        trace_complete(
            "mp.worker.idle", "stall", now_ns - idle_ns, idle_ns,
            reason=REASON_QUEUE_GET,
        )
        metrics().histogram("mp.worker.idle_ms").observe(idle_ns / 1e6)
        stalls.record(f"worker-{os.getpid()}", REASON_QUEUE_GET, idle_ns / 1e9)

    data = _attached_arena(chunk.arena_name, chunk.arena_size)
    pool = _attached_pool(chunk.pool_name, chunk.layout)
    results: list[GopResult] = []
    for task in chunk.tasks:
        if chunk.crash_gop == task.gop:
            # Fault-injection hook (tests only): die mid-stream exactly
            # the way an OOM kill / segfault would — no cleanup, no
            # result.
            os._exit(23)
        substream = chunk.prefix + bytes(
            data[task.byte_start : task.byte_end]
        )
        with trace_span(
            "mp.worker.decode_gop", cat="mp",
            gop=task.gop, pictures=task.picture_count,
        ):
            frames, counters = _decode_substream(
                substream, chunk.engine, chunk.resilient
            )
        refs: list[int] = []
        with trace_span("mp.shm.write", cat="mp", frames=len(frames)):
            for j, frame in enumerate(frames):
                pool.write_frame(task.slot_base + j, frame)
                refs.append(frame.temporal_reference)
        results.append(
            GopResult(
                gop=task.gop,
                slot_base=task.slot_base,
                temporal_references=refs,
                counters=counters,
            )
        )
    _LAST_END_NS = time.monotonic_ns()

    # Ship the observability payloads once per *chunk*: metrics
    # accumulated during it (then reset, so chunks never double-count)
    # and the stall records; flush trace events to this worker's shard.
    snap = metrics().snapshot()
    reset_metrics()
    tracer = get_tracer()
    if tracer is not None and shard is not None:
        tracer.write_shard(shard)
    return ChunkResult(
        results=results,
        metrics_snap=snap,
        stalls_snap=stalls.snapshot() if stalls else None,
    )


# ----------------------------------------------------------------------
# persistent pools: pre-forked once, shared across every decode
# ----------------------------------------------------------------------
_PERSISTENT_POOLS: dict[tuple[int, str | None], object] = {}


def get_persistent_pool(workers: int, start_method: str | None = None):
    """The process-wide pre-forked pool for ``(workers, start_method)``.

    Created on first use and reused by every subsequent parallel
    decode (and the serve layer's repeated requests), so fork +
    interpreter warm-up is paid once per process instead of once per
    run.  Workers are stream-agnostic (:func:`_init_persistent_worker`)
    — per-stream context rides in on each :class:`GopChunk`.
    """
    key = (workers, start_method)
    pool = _PERSISTENT_POOLS.get(key)
    if pool is None:
        ctx = multiprocessing.get_context(start_method)
        pool = ctx.Pool(
            processes=workers, initializer=_init_persistent_worker
        )
        _PERSISTENT_POOLS[key] = pool
    return pool


def invalidate_persistent_pool(
    workers: int, start_method: str | None = None
) -> None:
    """Tear down one cached pool (after a worker death poisoned it)."""
    pool = _PERSISTENT_POOLS.pop((workers, start_method), None)
    if pool is not None:
        pool.terminate()
        pool.join()


def shutdown_persistent_pools() -> None:
    """Terminate every cached pool (atexit + test isolation hook)."""
    for pool in list(_PERSISTENT_POOLS.values()):
        pool.terminate()
        pool.join()
    _PERSISTENT_POOLS.clear()


def persistent_worker_pids() -> set[int]:
    """PIDs of live persistent-pool workers.

    These processes outlive individual decodes *by design*; test
    helpers that assert "no stray children after a crash" use this to
    tell an intentional long-lived pool worker from a leaked one.
    """
    pids: set[int] = set()
    for pool in _PERSISTENT_POOLS.values():
        for proc in getattr(pool, "_pool", []):
            if proc.pid is not None and proc.is_alive():
                pids.add(proc.pid)
    return pids


atexit.register(shutdown_persistent_pools)


# ----------------------------------------------------------------------
# display side
# ----------------------------------------------------------------------
def _merge_in_order(
    results: Iterator[GopResult],
    gop_count: int,
    on_hold: Callable[[int, float], None] | None = None,
    on_depth: Callable[[int], None] | None = None,
) -> Iterator[GopResult]:
    """Display-order merger: reorder GOP completions into stream order.

    Workers finish in load-dependent order; the display process must
    emit GOP 0's pictures before GOP 1's.  A reorder buffer holds
    early completions until their turn — the same role the paper's
    display process plays with its picture reorder queue.

    Observability hooks (both optional): ``on_hold(gop, seconds)``
    fires when an out-of-order completion is finally released, with
    the time it sat in the reorder buffer (the ``merge.reorder``
    stall); ``on_depth(n)`` reports the buffer depth after each
    arrival (the ``queue.depth`` gauge).
    """
    pending: dict[int, GopResult] = {}
    held_since: dict[int, int] = {}
    next_gop = 0
    for result in results:
        pending[result.gop] = result
        if result.gop != next_gop:
            held_since[result.gop] = time.monotonic_ns()
        if on_depth is not None:
            on_depth(len(pending))
        while next_gop in pending:
            out = pending.pop(next_gop)
            t0 = held_since.pop(next_gop, None)
            if t0 is not None and on_hold is not None:
                on_hold(next_gop, (time.monotonic_ns() - t0) / 1e9)
            yield out
            next_gop += 1
    if next_gop != gop_count:
        missing = sorted(set(range(next_gop, gop_count)) - pending.keys())
        raise RuntimeError(f"worker pool lost GOP results: {missing}")


# ----------------------------------------------------------------------
# the decoder
# ----------------------------------------------------------------------
class MPGopDecoder:
    """GOP-level parallel decoder on real cores (paper Section 5.1).

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (shared between the scan step and
        the workers, as in the paper).
    workers:
        ``0`` decodes in-process through the identical scan/merge
        pipeline (deterministic CI path, no processes).  ``>= 1``
        spawns exactly that many OS worker processes (the paper's
        ``P``); workers beyond the GOP count simply stay idle.
        ``None`` uses the available CPU count.
    engine:
        Decode engine for the workers (default ``"batched"``).
    resilient:
        Conceal corrupt slices instead of failing (worker-local,
        identical to the sequential decoder's behaviour).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"fork"`` on Linux keeps the coded bytes copy-on-write).
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        workers: int | None = None,
        engine: str = "batched",
        resilient: bool = False,
        start_method: str | None = None,
        _crash_gop: int | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.data = data
        if index is not None:
            self.index = index
        else:
            # The scan step (paper Fig. 4): a start-code walk, no
            # decoding.  Traced and timed so the timeline starts where
            # the paper's does.
            t0 = time.perf_counter()
            with trace_span("mp.scan", cat="mp", bytes=len(data)):
                self.index = build_index(data)
            metrics().counter("mp.scan_ms").inc(
                (time.perf_counter() - t0) * 1e3
            )
        self.workers = workers
        self.engine = engine
        self.resilient = resilient
        self.start_method = start_method
        #: Test-only fault injection: the worker that picks up this GOP
        #: dies with ``os._exit`` mid-stream (no result, no cleanup).
        self._crash_gop = _crash_gop
        self.seq = self.index.sequence_header
        self.layout = FrameLayout.for_display(self.seq.width, self.seq.height)
        self.tasks = scan_gop_tasks(self.index)
        self.prefix = sequence_prefix(data, self.index)
        #: Shared-pool bytes the last parallel run allocated (Fig. 8
        #: counterpart on real silicon); 0 for the in-process path.
        self.last_pool_bytes = 0
        #: Stall attribution for the last run (wall seconds, canonical
        #: :mod:`repro.obs.stalls` reasons; workers + merge combined).
        self.last_stalls = StallTable()
        #: Wall seconds of the last ``iter_gops`` drain.
        self.last_wall_seconds = 0.0

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason.

        Denominator: ``wall seconds x (worker processes + merger)`` —
        the real-silicon analogue of the simulator's
        ``finish_cycles x processes``, so the two breakdowns line up
        in ``repro.analysis.obs_report``.
        """
        procs = min(self.workers, len(self.tasks)) + 1 if self.workers else 1
        return self.last_stalls.breakdown(self.last_wall_seconds * procs)

    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the whole stream to display-ordered frames.

        Bit-identical to ``SequenceDecoder(data).decode_all()`` —
        frames *and* aggregate work counters.
        """
        frames: list[Frame] = []
        for _gop, gop_frames in self.iter_gops(counters):
            frames.extend(gop_frames)
        return frames

    def iter_gops(
        self, counters: WorkCounters | None = None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """Yield ``(gop_number, display_ordered_frames)`` in stream order."""
        if self.workers == 0:
            yield from self._iter_gops_inprocess(counters)
        else:
            yield from self._iter_gops_mp(counters)

    # ------------------------------------------------------------------
    def _iter_gops_inprocess(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """The workers=0 fallback: same pipeline, no processes."""
        self.last_pool_bytes = 0
        self.last_stalls = StallTable()
        t_run = time.perf_counter()
        for task in self.tasks:
            substream = self.prefix + self.data[task.byte_start : task.byte_end]
            with trace_span(
                "mp.worker.decode_gop", cat="mp",
                gop=task.gop, pictures=task.picture_count,
            ):
                frames, local = _decode_substream(
                    substream, self.engine, self.resilient
                )
            if counters is not None:
                counters.add(local)
            yield task.gop, frames
        self.last_wall_seconds = time.perf_counter() - t_run

    def _iter_gops_mp(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        # The pre-forked persistent pool for exactly the requested
        # worker count (the paper's P); extra workers idle when the
        # stream has fewer chunks, but the pool is shared by every
        # decode in the process, so fork cost is paid once.
        workers = self.workers
        picture_count = self.index.picture_count
        frame_pool = SharedFramePool(self.layout, slots=picture_count)
        arena = StreamArena(self.data)
        self.last_pool_bytes = frame_pool.nbytes
        self.last_stalls = StallTable()
        tasks_by_gop = {t.gop: t for t in self.tasks}
        reg = metrics()
        occupancy = reg.gauge("mp.frame_pool.occupancy")
        depth = reg.gauge("queue.depth")

        # When the parent is tracing, workers trace too: each writes a
        # raw-event shard the parent merges into one timeline below.
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-") if tracing_enabled() else None

        dispatch_epoch_ns = time.monotonic_ns()
        chunks = [
            GopChunk(
                arena_name=arena.name,
                arena_size=arena.size,
                prefix=self.prefix,
                pool_name=frame_pool.name,
                layout=self.layout,
                engine=self.engine,
                resilient=self.resilient,
                trace_dir=trace_dir,
                crash_gop=self._crash_gop,
                tasks=group,
                epoch_ns=dispatch_epoch_ns,
            )
            for group in coalesce_gop_tasks(self.tasks, workers)
        ]
        reg.counter("mp.dispatch.messages").inc(len(chunks))

        def on_hold(gop: int, seconds: float) -> None:
            # An out-of-order completion sat in the reorder buffer:
            # the display-order merge stall (paper's display process).
            self.last_stalls.record("merge", REASON_MERGE, seconds)
            now = time.monotonic_ns()
            trace_complete(
                "mp.merge.hold", "stall", now - int(seconds * 1e9),
                int(seconds * 1e9), gop=gop, reason=REASON_MERGE,
            )

        def timed(completions, pool) -> Iterator[GopResult]:
            # Time every blocking wait on the result queue: the
            # parent-side queue.get stall (and its trace span).  Waits
            # are chunked into short liveness polls so a worker that
            # died mid-chunk (its tasks are lost — the pool never
            # resubmits) surfaces as a clean DecodeError instead of an
            # infinite hang.  The pool auto-respawns replacements for
            # dead workers, so death is detected both by a non-zero
            # exitcode *and* by the worker pid set drifting from its
            # baseline; the poisoned pool is then discarded so the next
            # run pre-forks a clean one.
            baseline = {p.pid for p in getattr(pool, "_pool", [])}
            while True:
                t0 = time.monotonic_ns()
                while True:
                    try:
                        chunk_result = completions.next(
                            timeout=LIVENESS_POLL_S
                        )
                        break
                    except multiprocessing.TimeoutError:
                        procs = list(getattr(pool, "_pool", []))
                        dead = [
                            p for p in procs if p.exitcode not in (None, 0)
                        ]
                        if dead or (
                            baseline and {p.pid for p in procs} != baseline
                        ):
                            codes = sorted(
                                p.exitcode for p in dead
                                if p.exitcode is not None
                            )
                            invalidate_persistent_pool(
                                workers, self.start_method
                            )
                            raise DecodeError(
                                "GOP worker process died mid-stream "
                                f"(exit codes {codes or 'unknown'}); "
                                "its task is lost — aborting the "
                                "parallel decode"
                            )
                    except StopIteration:
                        return
                waited = time.monotonic_ns() - t0
                trace_complete(
                    "mp.result.wait", "stall", t0, waited,
                    reason=REASON_QUEUE_GET,
                )
                self.last_stalls.record(
                    "merge", REASON_QUEUE_GET, waited / 1e9
                )
                # Fold the chunk's shipped observability payloads in
                # (one message per chunk, not per GOP).
                if chunk_result.metrics_snap is not None:
                    reg.merge_snapshot(chunk_result.metrics_snap)
                if chunk_result.stalls_snap is not None:
                    self.last_stalls.merge(chunk_result.stalls_snap)
                for result in chunk_result.results:
                    occupancy.inc(len(result.temporal_references))
                    yield result

        t_run = time.perf_counter()
        try:
            pool = get_persistent_pool(workers, self.start_method)
            completions = pool.imap_unordered(
                _decode_gop_chunk, chunks, chunksize=1
            )
            for result in _merge_in_order(
                timed(completions, pool),
                len(self.tasks),
                on_hold=on_hold,
                on_depth=depth.set,
            ):
                if counters is not None:
                    counters.add(result.counters)
                task = tasks_by_gop[result.gop]
                with trace_span(
                    "mp.shm.read", cat="mp", gop=result.gop,
                    frames=len(result.temporal_references),
                ):
                    frames = [
                        frame_pool.read_frame(task.slot_base + j, ref)
                        for j, ref in enumerate(result.temporal_references)
                    ]
                occupancy.dec(len(result.temporal_references))
                yield result.gop, frames
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run
            frame_pool.close()
            frame_pool.unlink()
            arena.close()
            arena.unlink()
            if trace_dir is not None:
                self._collect_shards(trace_dir)

    @staticmethod
    def _collect_shards(trace_dir: str) -> None:
        collect_trace_shards(trace_dir)


def collect_trace_shards(trace_dir: str) -> None:
    """Merge worker trace shards into the parent tracer, clean up.

    Shared by the GOP-level and slice-level mp decoders: each worker
    process appends raw events to ``shard-<pid>.jsonl`` under
    ``trace_dir``; the parent folds every shard into its own tracer so
    ``--trace`` produces one merged timeline, then removes the
    directory.
    """
    tracer = get_tracer()
    try:
        if tracer is not None:
            for path in sorted(glob(os.path.join(trace_dir, "shard-*.jsonl"))):
                tracer.extend(Tracer.read_shard(path))
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)


def decode_parallel(
    data: bytes,
    workers: int | None = None,
    engine: str = "batched",
    resilient: bool = False,
    start_method: str | None = None,
) -> list[Frame]:
    """Convenience: parallel-decode a stream to display-ordered frames."""
    return MPGopDecoder(
        data,
        workers=workers,
        engine=engine,
        resilient=resilient,
        start_method=start_method,
    ).decode_all()
