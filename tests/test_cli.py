"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def encoded_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "clip.m2v")
    rc = main(
        ["encode", path, "--width", "64", "--height", "48",
         "--frames", "13", "--gop-size", "13", "--seed", "5"]
    )
    assert rc == 0
    return path


class TestEncode:
    def test_creates_file(self, encoded_file):
        assert os.path.getsize(encoded_file) > 100

    def test_rate_controlled_encode(self, tmp_path, capsys):
        path = str(tmp_path / "rc.m2v")
        rc = main(
            ["encode", path, "--width", "48", "--height", "32",
             "--frames", "4", "--gop-size", "4", "--bit-rate", "400000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Mb/s" in out


class TestInfo:
    def test_reports_structure(self, encoded_file, capsys):
        assert main(["info", encoded_file]) == 0
        out = capsys.readouterr().out
        assert "64x48" in out
        assert "1 GOPs, 13 pictures" in out
        assert "IPBBPBBPBBPBB" in out


class TestDecode:
    def test_decode_summary(self, encoded_file, capsys):
        assert main(["decode", encoded_file]) == 0
        out = capsys.readouterr().out
        assert "decoded 13 pictures" in out

    def test_dump_pgm(self, encoded_file, tmp_path, capsys):
        dump = str(tmp_path / "frames")
        assert main(["decode", encoded_file, "--dump-dir", dump]) == 0
        files = sorted(os.listdir(dump))
        assert len(files) == 13
        with open(os.path.join(dump, files[0]), "rb") as fh:
            header = fh.read(15)
        assert header.startswith(b"P5\n64 48\n255\n")

    def test_resilient_flag(self, encoded_file, capsys):
        assert main(["decode", encoded_file, "--resilient"]) == 0

    def test_workers_zero_inprocess_fallback(self, encoded_file, capsys):
        assert main(["decode", encoded_file, "--workers", "0"]) == 0
        out = capsys.readouterr().out
        assert "in-process fallback" in out
        assert "decoded 13 pictures" in out

    def test_workers_parallel_decode(self, encoded_file, capsys):
        assert main(["decode", encoded_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 worker processes" in out
        assert "decoded 13 pictures" in out

    def test_trace_and_stats(self, encoded_file, tmp_path, capsys):
        """The acceptance-criteria command line, end to end."""
        import json

        from repro.obs.trace import tracing_enabled, validate_chrome_trace

        trace_path = str(tmp_path / "out.json")
        assert main(
            ["decode", encoded_file, "--workers", "2",
             "--trace", trace_path, "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "histograms" in out  # the --stats metric table
        assert "decode.picture_ms" in out
        assert "stall breakdown" in out
        with open(trace_path) as fh:
            doc = json.load(fh)
        events = validate_chrome_trace(doc)
        names = {e["name"] for e in events}
        assert "mp.scan" in names
        assert "mp.worker.decode_gop" in names
        # The CLI disables tracing after writing the file, so tracing
        # never leaks into subsequent in-process runs.
        assert not tracing_enabled()

    def test_stats_without_trace(self, encoded_file, capsys):
        assert main(["decode", encoded_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "decode.picture_ms" in out

    def test_scalar_engine_flag(self, encoded_file, capsys):
        assert main(["decode", encoded_file, "--engine", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "decoded 13 pictures" in out

    def test_workers_output_matches_sequential(self, encoded_file, tmp_path, capsys):
        seq_dir = str(tmp_path / "seq")
        par_dir = str(tmp_path / "par")
        assert main(["decode", encoded_file, "--dump-dir", seq_dir]) == 0
        assert main(["decode", encoded_file, "--workers", "2",
                     "--dump-dir", par_dir]) == 0
        for name in sorted(os.listdir(seq_dir)):
            with open(os.path.join(seq_dir, name), "rb") as fh:
                a = fh.read()
            with open(os.path.join(par_dir, name), "rb") as fh:
                b = fh.read()
            assert a == b, f"{name} differs between sequential and parallel"


class TestSimulate:
    @pytest.mark.parametrize(
        "decoder", ["gop", "slice-simple", "slice-improved", "macroblock"]
    )
    def test_each_decoder_runs(self, encoded_file, capsys, decoder):
        rc = main(
            ["simulate", encoded_file, "--decoder", decoder,
             "--workers", "2", "--repeat", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pictures/second" in out

    def test_paced_simulation_reports_lateness(self, encoded_file, capsys):
        rc = main(
            ["simulate", encoded_file, "--decoder", "slice-improved",
             "--workers", "2", "--rate", "30", "--preroll", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "late pictures" in out

    def test_simulate_stats_prints_stall_breakdown(self, encoded_file, capsys):
        rc = main(
            ["simulate", encoded_file, "--decoder", "gop",
             "--workers", "4", "--repeat", "2", "--stats"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stall breakdown" in out
        assert "queue.get" in out

    def test_dash_machine(self, encoded_file, capsys):
        rc = main(
            ["simulate", encoded_file, "--machine", "dash",
             "--processors", "8", "--workers", "4"]
        )
        assert rc == 0
        assert "dash" in capsys.readouterr().out
