#!/usr/bin/env python3
"""Locality study: reproduce the paper's Section 5.3 methodology.

Generates a memory-reference trace from a real decode (the decoder is
instrumented, TangoLite-style), then sweeps cache organisations:

* line size at fixed capacity  -> spatial locality (Fig. 13 shape);
* capacity x associativity     -> working sets (Fig. 14 shape);
* capacity vs cold miss split  -> temporal locality (Fig. 15 shape).

Run:  python examples/locality_study.py
"""

from __future__ import annotations

from repro.analysis import TextTable, doubling_ratios
from repro.cache import CacheConfig, generate_decode_trace, simulate
from repro.cache.cachesim import line_size_sweep
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.video.synthetic import SyntheticVideo


def main() -> None:
    video = SyntheticVideo(width=176, height=120, seed=3)
    stream = encode_sequence(video.frames(13), EncoderConfig(gop_size=13, qscale_code=3))
    trace = generate_decode_trace(stream, processors=8, max_pictures=7)
    print(
        f"trace: {len(trace):,} word references over 7 pictures "
        f"({trace.read_count:,} reads / {trace.write_count:,} writes), "
        f"8 processors\n"
    )

    # Spatial locality: Fig. 13.
    sweep = line_size_sweep(trace, [16, 32, 64, 128, 256])
    ratios = doubling_ratios(sweep)
    t = TextTable(["line size", "read miss %", "ratio"], title="Line-size sweep (1MB fully-assoc)")
    sizes = sorted(sweep)
    for i, ls in enumerate(sizes):
        t.add_row(f"{ls}B", round(sweep[ls] * 100, 3), round(ratios[i - 1], 2) if i else "-")
    print(t.render())
    print("-> miss rate ~halves per doubling: sequential access dominates\n")

    # Working sets: Fig. 14.
    t = TextTable(
        ["capacity", "direct-mapped %", "2-way %", "fully-assoc %"],
        title="Cache-size sweep (64B lines)",
    )
    for cap in (8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10):
        row = []
        for assoc in (1, 2, 0):
            total, _ = simulate(
                trace, CacheConfig(line_size=64, capacity=cap, associativity=assoc)
            )
            row.append(round(total.read_miss_rate * 100, 2))
        t.add_row(f"{cap >> 10}KB", *row)
    print(t.render())
    print(
        "-> the working set fits in 16-32KB given associativity;\n"
        "   direct-mapped caches need 64KB+ (paper Fig. 14)\n"
    )

    # Temporal locality: Fig. 15.
    t = TextTable(
        ["capacity", "cold", "capacity", "coherence", "capacity/cold"],
        title="Miss classification (fully-assoc, 64B lines)",
    )
    for cap in (16 << 10, 64 << 10, 256 << 10, 1 << 20):
        total, _ = simulate(
            trace, CacheConfig(line_size=64, capacity=cap, associativity=0)
        )
        t.add_row(
            f"{cap >> 10}KB",
            total.cold_misses,
            total.capacity_conflict_misses,
            total.coherence_misses,
            round(total.capacity_to_cold_ratio, 2),
        )
    print(t.render())
    print(
        "-> beyond the working set, cold misses dominate: bigger caches\n"
        "   buy little, and sharing misses stay negligible (paper Fig. 15)"
    )


if __name__ == "__main__":
    main()
