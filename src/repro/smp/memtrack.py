"""Memory-allocation tracking over virtual time (Figs. 8-9 substrate).

The paper's Fig. 8 measures the decoder's actual memory footprint and
Fig. 9 compares it against the analytical model
``mem(x) = scan(x) + frames(x)``.  The tracker records categorised
allocate/free events stamped with simulation time and reconstructs the
usage curve and its peak.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryEvent:
    time: int
    delta: int
    category: str


@dataclass
class MemoryTracker:
    """Categorised time-series of allocations in a simulation run."""

    events: list[MemoryEvent] = field(default_factory=list)

    def allocate(self, time: int, nbytes: int, category: str) -> None:
        if nbytes < 0:
            raise ValueError("allocate() takes a non-negative size")
        if nbytes:
            self.events.append(MemoryEvent(time, nbytes, category))

    def free(self, time: int, nbytes: int, category: str) -> None:
        if nbytes < 0:
            raise ValueError("free() takes a non-negative size")
        if nbytes:
            self.events.append(MemoryEvent(time, -nbytes, category))

    # ------------------------------------------------------------------
    def _sorted(self) -> list[MemoryEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def curve(self, category: str | None = None) -> list[tuple[int, int]]:
        """(time, bytes-in-use) steps, one point per change."""
        points: list[tuple[int, int]] = []
        usage = 0
        for e in self._sorted():
            if category is not None and e.category != category:
                continue
            usage += e.delta
            if points and points[-1][0] == e.time:
                points[-1] = (e.time, usage)
            else:
                points.append((e.time, usage))
        return points

    def usage_at(self, time: int, category: str | None = None) -> int:
        curve = self.curve(category)
        times = [t for t, _ in curve]
        i = bisect.bisect_right(times, time) - 1
        return curve[i][1] if i >= 0 else 0

    def peak(self, category: str | None = None) -> int:
        curve = self.curve(category)
        return max((u for _, u in curve), default=0)

    def peak_by_category(self) -> dict[str, int]:
        return {c: self.peak(c) for c in self.categories()}

    def categories(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.category, None)
        return list(seen)

    def final_usage(self) -> dict[str, int]:
        """Bytes still allocated at the end (leak check: should be ~0)."""
        usage: dict[str, int] = defaultdict(int)
        for e in self.events:
            usage[e.category] += e.delta
        return dict(usage)
