"""Alternate coefficient scan (the interlace-oriented MPEG-2 scan).

The paper defers interlace to future work (Section 7.3); the alternate
scan is its coefficient-ordering half, and this codec supports it
end-to-end: signalled per picture, applied to every block, decoded by
the sequential and parallel decoders alike.
"""

from __future__ import annotations

import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import decode_sequence
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.headers import PictureHeader
from repro.mpeg2.index import build_index
from repro.video.metrics import sequence_psnr
from repro.video.synthetic import SyntheticVideo


@pytest.fixture(scope="module")
def video():
    return SyntheticVideo(width=64, height=48, seed=21).frames(13)


@pytest.fixture(scope="module")
def alt_stream(video):
    return encode_sequence(
        video, EncoderConfig(gop_size=13, qscale_code=3, alternate_scan=True)
    )


class TestHeaderSignalling:
    def test_flag_roundtrips(self):
        h = PictureHeader(
            temporal_reference=5,
            picture_type=PictureType.P,
            alternate_scan=True,
        )
        w = BitWriter()
        h.write(w)
        w.align()
        out = PictureHeader.read(BitReader(w.getvalue()))
        assert out.alternate_scan
        assert out.temporal_reference == 5

    def test_default_is_zigzag(self):
        h = PictureHeader(temporal_reference=0, picture_type=PictureType.I)
        w = BitWriter()
        h.write(w)
        w.align()
        assert not PictureHeader.read(BitReader(w.getvalue())).alternate_scan

    def test_flag_costs_one_extra_info_byte(self):
        base = PictureHeader(temporal_reference=0, picture_type=PictureType.I)
        alt = PictureHeader(
            temporal_reference=0, picture_type=PictureType.I, alternate_scan=True
        )
        wa, wb = BitWriter(), BitWriter()
        base.write(wa)
        alt.write(wb)
        # 9 raw bits (extra_bit + info byte), byte-aligned at the end.
        assert wb.bit_position - wa.bit_position in (8, 16)


class TestCodecWithAlternateScan:
    def test_index_sees_the_flag(self, alt_stream):
        idx = build_index(alt_stream)
        assert all(
            p.alternate_scan for g in idx.gops for p in g.pictures
        )

    def test_roundtrip_quality(self, video, alt_stream):
        decoded = decode_sequence(alt_stream)
        assert sequence_psnr(video, decoded) > 32.0

    def test_scans_are_not_interchangeable(self, video, alt_stream):
        """Decoding alternate-scan data as zig-zag must corrupt the
        output — i.e. the flag genuinely switches the path."""
        zig = encode_sequence(video, EncoderConfig(gop_size=13, qscale_code=3))
        alt_quality = sequence_psnr(video, decode_sequence(alt_stream))
        zig_quality = sequence_psnr(video, decode_sequence(zig))
        # Both self-consistent paths decode fine...
        assert alt_quality > 32 and zig_quality > 32
        # ...and both scans produce different bitstreams.
        assert alt_stream != zig

    def test_parallel_decoders_honour_the_flag(self, video, alt_stream):
        from repro.parallel import (
            GopLevelDecoder,
            ParallelConfig,
            SliceLevelDecoder,
            SliceMode,
            profile_stream,
        )
        from repro.smp import challenge

        profile, _ = profile_stream(alt_stream)
        reference = decode_sequence(alt_stream)
        for result in (
            GopLevelDecoder(profile, alt_stream).run(
                ParallelConfig(workers=2, machine=challenge(4), execute=True)
            ),
            SliceLevelDecoder(profile, alt_stream).run(
                ParallelConfig(workers=2, machine=challenge(4), execute=True),
                SliceMode.IMPROVED,
            ),
        ):
            for a, b in zip(reference, result.frames):
                assert a.same_pixels(b)
