"""Metrics registry: counters, gauges and histograms with JSON snapshots.

The paper's Table 2 is a per-stage time breakdown; its Fig. 6 is a
worker load-balance chart.  Both are *aggregates*, and this module is
where the reproduction accumulates theirs: named counters (monotonic
totals), gauges (current value + high-water mark) and histograms
(count/sum/min/max plus a bounded sample reservoir for percentiles).

Canonical metric names (shared by the real mp pipeline, the decoder
and the SMP simulator so reports line up):

======================== ==========================================
``decode.picture_ms``    histogram — wall ms per decoded picture
``decode.gop_ms``        histogram — wall ms per decoded GOP
``mp.worker.idle_ms``    histogram — worker gap between tasks
``mp.scan_ms``           counter   — parent scan (index build) ms
``mp.frame_pool.occupancy`` gauge  — shm slots written, not yet read
``queue.depth``          gauge     — display reorder-buffer depth
======================== ==========================================

Snapshots are plain JSON-able dicts and **mergeable**
(:meth:`MetricsRegistry.merge_snapshot`), which is how per-task
snapshots from mp worker processes fold into the parent's registry —
only small dicts cross the process boundary, never the registry
objects themselves.
"""

from __future__ import annotations

from typing import Iterable

#: Histogram sample reservoir size; aggregates stay exact beyond it.
HISTOGRAM_SAMPLE_CAP = 1024


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A current value with a high-water mark."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value, "max": self.max}


class Histogram:
    """Exact count/sum/min/max plus a bounded reservoir for percentiles.

    The reservoir keeps the first :data:`HISTOGRAM_SAMPLE_CAP`
    observations (deterministic; aggregates remain exact regardless),
    which is plenty for the decoder's per-picture/per-GOP cadence.
    """

    __slots__ = ("count", "sum", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    def _percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[idx]

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "p50": self._percentile(0.50),
            "p90": self._percentile(0.90),
            "p99": self._percentile(0.99),
        }

    def merge(self, snap: dict) -> None:
        """Fold another histogram's snapshot-shaped dict into this one."""
        if not snap or snap.get("count", 0) == 0:
            return
        self.count += snap["count"]
        self.sum += snap["sum"]
        self.min = min(self.min, snap["min"])
        self.max = max(self.max, snap["max"])
        # Reservoir merge: accept the peer's representative values up
        # to the cap (peers ship mean/percentiles, not raw samples, so
        # re-observe the summary points weighted crudely by count).
        room = HISTOGRAM_SAMPLE_CAP - len(self.samples)
        if room > 0:
            for key in ("p50", "p90", "p99"):
                if key in snap:
                    self.samples.append(snap[key])


class MetricsRegistry:
    """Named metrics, lazily created, snapshotable and mergeable."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able view of every metric (the ``--stats`` payload)."""
        return {
            "counters": {k: c.snapshot() for k, c in self._counters.items()},
            "gauges": {k: g.snapshot() for k, g in self._gauges.items()},
            "histograms": {
                k: h.snapshot() for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a peer registry's snapshot in (mp worker -> parent)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if g.get("max", 0) > gauge.max:
                gauge.max = g["max"]
        for name, h in snap.get("histograms", {}).items():
            self.histogram(name).merge(h)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """The ``--stats`` summary table (monospace, TextTable)."""
        from repro.analysis.report import TextTable

        lines: list[str] = []
        if self._counters:
            t = TextTable(["counter", "total"], title="counters")
            for name in sorted(self._counters):
                t.add_row(name, self._counters[name].value)
            lines.append(t.render())
        if self._gauges:
            t = TextTable(["gauge", "value", "max"], title="gauges")
            for name in sorted(self._gauges):
                g = self._gauges[name]
                t.add_row(name, g.value, g.max)
            lines.append(t.render())
        if self._histograms:
            t = TextTable(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                title="histograms",
            )
            for name in sorted(self._histograms):
                s = self._histograms[name].snapshot()
                if s["count"] == 0:
                    t.add_row(name, 0, "-", "-", "-", "-", "-")
                else:
                    t.add_row(
                        name, s["count"], s["mean"], s["p50"], s["p90"],
                        s["p99"], s["max"],
                    )
            lines.append(t.render())
        return "\n\n".join(lines) if lines else "(no metrics recorded)"


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry (always on; recording is cheap)."""
    return _registry


def reset_metrics() -> None:
    _registry.reset()
