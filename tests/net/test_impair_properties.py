"""Property suite: impairment shim + framing under adversarial inputs.

The load-bearing invariants of the network path, checked over
Hypothesis-generated traffic and link shapes:

* **Sequence-number conservation** — every droppable message is
  delivered exactly once or appears in the shim's drop record; the
  union is the full sent set, the intersection empty.  No duplication,
  no silent loss.
* **Bounded reorder** — a held (swapped) message is overtaken by at
  most one successor, and control messages are never overtaken at all
  (a ``PIC_DONE`` cannot beat its own slices to the client).
* **Framing is chunking-proof** — any concatenation of frames split at
  arbitrary byte boundaries reassembles to the identical message list.
* **No deadlock** — the full asyncio transport round trip under loss +
  reorder + jitter + a bandwidth cap completes within a SIGALRM bound.
* **Schedule determinism** — verdicts are a pure function of
  ``(seed, index)``: recomputing in any order changes nothing.
"""

from __future__ import annotations

import asyncio
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.impair import (
    ImpairedSender,
    ImpairmentProfile,
    ImpairmentSchedule,
)
from repro.net.protocol import (
    MSG_PIC_DONE,
    MSG_SLICE,
    StreamFramer,
    encode_message,
)

profiles = st.builds(
    ImpairmentProfile,
    loss=st.floats(0.0, 0.6),
    reorder=st.floats(0.0, 0.5),
    jitter_ms=st.floats(0.0, 0.2),
    seed=st.integers(0, 2**16),
)


class _PipeWriter:
    """Minimal writer: collects frames, async-compatible drain."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass


async def _pump(profile: ImpairmentProfile, n_msgs: int, picdone_every: int):
    """Send n droppable slices (+ periodic control commits) through the
    shim; return (delivered Messages, ImpairStats)."""
    writer = _PipeWriter()
    sender = ImpairedSender(writer, ImpairmentSchedule(profile))
    seq = 0
    for i in range(n_msgs):
        await sender.send(
            encode_message(MSG_SLICE, seq, {"i": i}),
            droppable=True, seq=seq,
        )
        seq += 1
        if picdone_every and (i + 1) % picdone_every == 0:
            await sender.send(
                encode_message(MSG_PIC_DONE, seq, {"upto": i}),
                droppable=False, seq=seq,
            )
            seq += 1
    await sender.flush()
    framer = StreamFramer()
    delivered = []
    for chunk in writer.chunks:
        delivered.extend(framer.feed(chunk))
    assert framer.pending_bytes == 0
    return delivered, sender.stats


class TestConservation:
    @given(profile=profiles, n=st.integers(0, 120),
           picdone_every=st.integers(0, 7))
    @settings(max_examples=120, deadline=None)
    def test_exactly_once_or_recorded_dropped(self, profile, n, picdone_every):
        delivered, stats = asyncio.run(_pump(profile, n, picdone_every))
        slices = [m for m in delivered if m.type == MSG_SLICE]
        got = [m.seq for m in slices]
        assert len(got) == len(set(got)), "duplicate delivery"
        # Replay the sender's seq assignment to find which sequence
        # numbers were droppable slices vs reliable commits.
        expected_slice_seqs, seq = set(), 0
        for i in range(n):
            expected_slice_seqs.add(seq)
            seq += 1
            if picdone_every and (i + 1) % picdone_every == 0:
                seq += 1  # the PIC_DONE
        # delivered + dropped partitions the sent slice universe.
        assert not (set(got) & set(stats.dropped_seqs))
        assert set(got) | set(stats.dropped_seqs) == expected_slice_seqs
        assert len(slices) + stats.dropped == n
        # Reliable commits all arrive.
        commits = [m for m in delivered if m.type == MSG_PIC_DONE]
        assert len(commits) == (n // picdone_every if picdone_every else 0)

    @given(profile=profiles, n=st.integers(0, 120))
    @settings(max_examples=100, deadline=None)
    def test_reorder_displacement_is_bounded(self, profile, n):
        delivered, stats = asyncio.run(_pump(profile, n, 0))
        got = [m.seq for m in delivered if m.type == MSG_SLICE]
        expected = sorted(got)
        # A held frame is overtaken by at most its immediate successor:
        # every message lands within one position of sorted order.
        for pos, s in enumerate(got):
            assert abs(pos - expected.index(s)) <= 1

    @given(profile=profiles, n=st.integers(1, 60),
           picdone_every=st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_control_messages_never_overtaken(self, profile, n, picdone_every):
        delivered, _ = asyncio.run(_pump(profile, n, picdone_every))
        # Every slice delivered after a PIC_DONE must have been *sent*
        # after it (larger seq): commits flush held slices first.
        last_control_seq = -1
        for m in delivered:
            if m.type == MSG_PIC_DONE:
                last_control_seq = m.seq
            else:
                assert m.seq > last_control_seq or last_control_seq == -1


class TestScheduleDeterminism:
    @given(profile=profiles, idx=st.integers(0, 1000))
    @settings(max_examples=150, deadline=None)
    def test_verdict_is_pure(self, profile, idx):
        sched = ImpairmentSchedule(profile)
        first = sched.verdict(idx)
        # Poke other indices in between; the verdict must not move.
        sched.verdict(idx + 1)
        sched.verdict(max(0, idx - 1))
        assert ImpairmentSchedule(profile).verdict(idx) == first
        assert sched.verdict(idx) == first
        assert 0.0 <= first.delay_s <= profile.jitter_ms / 1e3
        assert not (first.drop and first.swap)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(loss=1.5)
        with pytest.raises(ValueError):
            ImpairmentProfile(reorder=-0.1)
        with pytest.raises(ValueError):
            ImpairmentProfile(jitter_ms=-1)
        with pytest.raises(ValueError):
            ImpairmentProfile(bandwidth_bps=0)
        with pytest.raises(ValueError):
            ImpairmentSchedule(ImpairmentProfile()).verdict(-1)


class TestFramingChunking:
    headers = st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(-1000, 1000), st.text(max_size=12),
                  st.booleans()),
        max_size=4,
    )
    messages = st.lists(
        st.tuples(
            st.sampled_from([MSG_SLICE, MSG_PIC_DONE]),
            st.integers(0, 2**31), headers, st.binary(max_size=200),
        ),
        max_size=12,
    )

    @given(msgs=messages, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_chunk_boundaries(self, msgs, data):
        wire = b"".join(
            encode_message(t, s, h, p) for t, s, h, p in msgs
        )
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(wire)), max_size=10)
            )
        )
        framer = StreamFramer()
        got = []
        prev = 0
        for cut in cuts + [len(wire)]:
            got.extend(framer.feed(wire[prev:cut]))
            prev = cut
        assert framer.pending_bytes == 0
        assert [(m.type, m.seq, m.header, m.payload) for m in got] == msgs


class TestNoDeadlock:
    """Real asyncio transport under a hostile link, SIGALRM-bounded."""

    BOUND_S = 60

    @pytest.fixture(autouse=True)
    def alarm(self):
        def on_alarm(signum, frame):  # pragma: no cover - only on bug
            raise TimeoutError(
                f"impaired transport did not finish in {self.BOUND_S}s"
            )

        old = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(self.BOUND_S)
        yield
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)

    @given(
        profile=st.builds(
            ImpairmentProfile,
            loss=st.floats(0.0, 0.5),
            reorder=st.floats(0.0, 0.5),
            jitter_ms=st.floats(0.0, 0.3),
            bandwidth_bps=st.one_of(
                st.none(), st.floats(2e6, 1e8)
            ),
            seed=st.integers(0, 2**16),
        ),
        n=st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_socket_roundtrip_terminates(self, profile, n):
        async def run() -> int:
            received: list = []
            done = asyncio.Event()

            async def handle(reader, writer):
                framer = StreamFramer()
                while True:
                    data = await reader.read(4096)
                    if not data:
                        break
                    received.extend(framer.feed(data))
                done.set()
                writer.close()

            server = await asyncio.start_server(
                handle, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            sender = ImpairedSender(writer, ImpairmentSchedule(profile))
            for i in range(n):
                await sender.send(
                    encode_message(MSG_SLICE, i, {"i": i}, b"p" * 64),
                    droppable=True, seq=i,
                )
            await sender.flush()
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), timeout=30)
            server.close()
            await server.wait_closed()
            assert len(received) + sender.stats.dropped == n
            return len(received)

        asyncio.run(run())
