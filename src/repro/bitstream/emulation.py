"""Start-code emulation prevention.

The paper's parallel decoders rely on start codes being unique,
byte-aligned sync points: the scan process locates GOP / picture /
slice tasks purely by searching for ``00 00 01``.  The real MPEG-2
tables are hand-crafted so no legal VLC sequence emulates a start code;
our constructed codebooks don't carry that guarantee, so we apply
H.264-style emulation prevention at the byte layer instead: inside
every payload, a ``00 00`` pair followed by a byte <= 0x03 gets a
``0x03`` stuffing byte inserted.  The property "no ``00 00 01`` inside
any escaped payload" is verified by the test suite, which is exactly
the property the scan process needs.
"""

from __future__ import annotations


def escape_payload(payload: bytes) -> bytes:
    """Insert emulation-prevention bytes into ``payload``.

    After escaping, the payload contains no ``00 00 0x`` pattern with
    ``x <= 3``, hence no start-code prefix.
    """
    out = bytearray()
    zeros = 0
    for b in payload:
        if zeros >= 2 and b <= 0x03:
            out.append(0x03)
            zeros = 0
        out.append(b)
        zeros = zeros + 1 if b == 0 else 0
    return bytes(out)


def unescape_payload(payload: bytes) -> bytes:
    """Remove emulation-prevention bytes (inverse of escape_payload).

    Implemented as a ``find``-and-splice over the ``00 00 03`` pattern
    rather than a per-byte Python loop: a stuffing byte is by
    construction an ``03`` immediately preceded by two zero bytes, and
    dropping it resets the zero run, so scanning for the 3-byte pattern
    left to right reproduces the byte-at-a-time state machine exactly
    (the escape/unescape round-trip tests pin this down).  Payload
    unescaping runs once per slice on every decode path, so it is kept
    off the per-byte interpreter floor.
    """
    idx = payload.find(b"\x00\x00\x03")
    if idx < 0:
        return payload
    out = bytearray()
    start = 0
    while idx >= 0:
        # Keep everything up to and including the two zeros, drop the
        # stuffing byte, and resume the scan after it (the reset of the
        # zero-run counter in the sequential formulation).
        out += payload[start : idx + 2]
        start = idx + 3
        idx = payload.find(b"\x00\x00\x03", start)
    out += payload[start:]
    return bytes(out)


def contains_start_code_prefix(payload: bytes) -> bool:
    """True if ``payload`` contains the ``00 00 01`` prefix."""
    return b"\x00\x00\x01" in payload
