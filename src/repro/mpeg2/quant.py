"""Quantization and inverse quantization (ISO 13818-2 section 7.4).

Conventions
-----------
* Intra DC uses fixed step 8 (``intra_dc_precision`` of 8 bits) and is
  coded differentially elsewhere; here it is just ``round(F/8)``.
* Intra AC: ``QF = round(16 * F / (W * q))`` with weight matrix ``W``
  and quantiser scale ``q``; reconstruction truncates toward zero:
  ``F' = trunc(2 * QF * W * q / 32)``.
* Non-intra: dead-zone quantizer ``QF = trunc(16 * F / (W * q))``;
  reconstruction ``F' = trunc((2*QF + sign(QF)) * W * q / 32)``.
* Saturation to [-2048, 2047] and MPEG-2 *mismatch control* (force the
  coefficient sum odd by toggling coefficient (7,7)) are applied after
  inverse quantization of each block.

All functions are vectorised over leading axes: ``(..., 8, 8)``.
"""

from __future__ import annotations

import numpy as np

from repro.mpeg2.constants import (
    COEFF_MAX,
    COEFF_MIN,
    LEVEL_MAX,
    LEVEL_MIN,
)

#: Intra DC quantization step (intra_dc_precision = 8 bits).
INTRA_DC_STEP = 8


def _trunc_div(num: np.ndarray, den: int | np.ndarray) -> np.ndarray:
    """Integer division truncating toward zero (C semantics)."""
    return (np.sign(num) * (np.abs(num) // np.abs(den))).astype(np.int64)


# ----------------------------------------------------------------------
# forward quantization (encoder)
# ----------------------------------------------------------------------
def quantize_intra(
    coeffs: np.ndarray, matrix: np.ndarray, qscale: int
) -> np.ndarray:
    """Quantize intra-block DCT coefficients, DC included.

    The DC (position ``[..., 0, 0]``) is quantized with the fixed step
    :data:`INTRA_DC_STEP`; AC terms use the weight matrix.  Output is
    int64 levels clamped to the escape-codable range.
    """
    f = np.asarray(coeffs, dtype=np.float64)
    levels = np.rint(16.0 * f / (matrix * float(qscale)))
    levels[..., 0, 0] = np.rint(f[..., 0, 0] / INTRA_DC_STEP)
    return np.clip(levels, LEVEL_MIN, LEVEL_MAX).astype(np.int64)


def quantize_non_intra(
    coeffs: np.ndarray, matrix: np.ndarray, qscale: int
) -> np.ndarray:
    """Dead-zone quantization of prediction-error DCT coefficients."""
    f = np.asarray(coeffs, dtype=np.float64)
    scaled = 16.0 * f / (matrix * float(qscale))
    levels = np.trunc(scaled)
    return np.clip(levels, LEVEL_MIN, LEVEL_MAX).astype(np.int64)


# ----------------------------------------------------------------------
# inverse quantization (decoder AND encoder reconstruction loop)
# ----------------------------------------------------------------------
def dequantize_intra(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Reconstruct intra coefficients from levels (int64 out).

    ``qscale`` may be a scalar or a per-block array broadcastable
    against ``(..., 8, 8)`` (e.g. shape ``(n, 1, 1)``) — the batched
    decode path dequantizes every block of a picture in one call, each
    at the quantiser scale its macroblock was coded with.
    """
    lv = np.asarray(levels, dtype=np.int64)
    f = _trunc_div(2 * lv * matrix * qscale, 32)
    f[..., 0, 0] = lv[..., 0, 0] * INTRA_DC_STEP
    f = np.clip(f, COEFF_MIN, COEFF_MAX)
    return _mismatch_control(f)


def dequantize_non_intra(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Reconstruct non-intra coefficients from levels (int64 out).

    ``qscale`` broadcasts like in :func:`dequantize_intra`.
    """
    lv = np.asarray(levels, dtype=np.int64)
    f = _trunc_div((2 * lv + np.sign(lv)) * matrix * qscale, 32)
    f = np.clip(f, COEFF_MIN, COEFF_MAX)
    return _mismatch_control(f)


def _mismatch_control(coeffs: np.ndarray) -> np.ndarray:
    """MPEG-2 mismatch control: make each block's coefficient sum odd.

    If the sum over a block is even, coefficient (7,7) is nudged by
    +/-1 (toward even-to-odd parity of that coefficient), flipping the
    total parity.  This is what kept the reference encoder and the many
    third-party IDCTs from drifting apart; here it doubles as a tested
    invariant.
    """
    total = coeffs.sum(axis=(-2, -1))
    even = (total % 2) == 0
    if not np.any(even):
        return coeffs
    last = coeffs[..., 7, 7]
    adjust = np.where(last % 2 == 0, 1, -1)
    coeffs[..., 7, 7] = np.where(even, last + adjust, last)
    return coeffs


def effective_step(matrix: np.ndarray, qscale: int) -> np.ndarray:
    """The reconstruction step size per coefficient (diagnostic)."""
    return matrix * qscale / 16.0
