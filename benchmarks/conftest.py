"""Shared infrastructure for the experiment benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  The heavy inputs — encoded
test streams and their work profiles — are built once and cached on
disk (``~/.cache/repro-streams`` by default), so the first run pays a
few minutes of encoding and every later run starts instantly.

Scale
-----
Result-bearing experiments run at the paper's true resolutions
(352x240, 704x480, 1408x960 at 5/5/7 Mb/s).  One GOP of each stream is
encoded with the real encoder; longer runs tile that measured GOP
(exactly how the paper built its 1120-picture streams from a repeated
clip).  ``REPRO_BENCH_PICTURES`` (default 364 = 28 GOPs of 13) sets
the simulated stream length; ``REPRO_BENCH_FAST=1`` drops to the small
176x120 resolution for a quick smoke pass.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import GopLevelDecoder, ParallelConfig, SliceLevelDecoder, SliceMode
from repro.parallel.profile import (
    StreamProfile,
    cached_profile,
    slice_gops,
    synthesize_profile,
    tile_profile,
)
from repro.smp import CostModel, challenge
from repro.video.streams import TestStreamSpec, build_stream

#: Paper resolutions with their Section 3 bit rates.
PAPER_CASES = {
    "352x240": (352, 240, 5_000_000),
    "704x480": (704, 480, 5_000_000),
    "1408x960": (1408, 960, 7_000_000),
}

FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
if FAST:
    PAPER_CASES = {"176x120": (176, 120, 1_250_000)}

#: Simulated stream length in pictures (paper: 1120 = 86 gop-13 GOPs;
#: shorter runs under-utilise 14 GOP-level workers at the endgame).
BENCH_PICTURES = int(os.environ.get("REPRO_BENCH_PICTURES", "1092"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class BenchEnv:
    """Lazy, disk-cached access to streams, profiles and runs."""

    def __init__(self) -> None:
        self._streams: dict[tuple, bytes] = {}
        self._profiles: dict[tuple, StreamProfile] = {}

    # ------------------------------------------------------------------
    def spec(self, res: str, gop_size: int = 13, bit_rate: int | None = None,
             pictures: int | None = None) -> TestStreamSpec:
        w, h, default_rate = PAPER_CASES[res]
        # Two GOPs: the first absorbs the rate controller's warm-up and
        # is dropped at profiling time; the second is steady state.
        return TestStreamSpec(
            name=f"bench/{res}/gop{gop_size}",
            width=w,
            height=h,
            gop_size=gop_size,
            pictures=pictures or 2 * gop_size,
            bit_rate=bit_rate or default_rate,
        )

    def stream(self, res: str, gop_size: int = 13, **kw) -> bytes:
        spec = self.spec(res, gop_size, **kw)
        key = (spec.cache_key(),)
        if key not in self._streams:
            self._streams[key] = build_stream(spec)
        return self._streams[key]

    def profile(
        self, res: str, gop_size: int = 13, pictures: int | None = None, **kw
    ) -> StreamProfile:
        """A measured steady-state profile tiled to ``pictures``."""
        base = self._profiles_base(res, gop_size, **kw)
        target = pictures or BENCH_PICTURES
        repeats = max((target + base.picture_count - 1) // base.picture_count, 1)
        return tile_profile(base, repeats) if repeats > 1 else base

    def profile_with_gop_size(
        self, res: str, gop_size: int, pictures: int | None = None
    ) -> StreamProfile:
        """A profile restructured to ``gop_size`` from measured gop-13 data."""
        base = self._profiles_base(res, 13)
        target = pictures or BENCH_PICTURES
        gops = max(target // gop_size, 1)
        return synthesize_profile(base, gop_size, gops)

    def _profiles_base(self, res: str, gop_size: int = 13, **kw) -> StreamProfile:
        """Measured profile with the warm-up GOP dropped (steady state)."""
        spec = self.spec(res, gop_size, **kw)
        key = (spec.cache_key(),)
        if key not in self._profiles:
            data = self.stream(res, gop_size, **kw)
            full = cached_profile(data, spec.cache_key())
            self._profiles[key] = (
                slice_gops(full, 1) if len(full.gops) > 1 else full
            )
        return self._profiles[key]

    # ------------------------------------------------------------------
    def run_gop(self, profile: StreamProfile, workers: int, **kw) -> "DecodeRunResult":
        machine = kw.pop("machine", challenge(max(workers + 2, 16)))
        dec = GopLevelDecoder(profile)
        return dec.run(ParallelConfig(workers=workers, machine=machine, **kw))

    def run_slice(
        self, profile: StreamProfile, workers: int, mode: SliceMode, **kw
    ) -> "DecodeRunResult":
        machine = kw.pop("machine", challenge(max(workers + 2, 16)))
        dec = SliceLevelDecoder(profile)
        return dec.run(ParallelConfig(workers=workers, machine=machine, **kw), mode)


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    return BenchEnv()


@pytest.fixture(scope="session")
def resolutions() -> list[str]:
    return list(PAPER_CASES)


@pytest.fixture
def record(request, capsys):
    """Print a report and persist it under benchmarks/results/."""

    def _record(text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to {os.path.relpath(path)}]")

    return _record
