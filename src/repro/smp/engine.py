"""The discrete-event engine: virtual time, processes, accounting.

A simulated process is a Python generator.  Each ``yield`` hands the
engine a *command*; the engine performs it, advances virtual time, and
resumes the generator with the command's result.  Example worker::

    def worker(proc: Process):
        while True:
            task = yield from proc.queue_like_get(...)   # helpers below
            yield Compute(cycles=task.cost)
            ...

Commands
--------
``Compute(cycles)``        run busy for ``cycles``
``Stall(cycles)``          stall in the memory system (Fig. 7 split)
``AcquireLock(lock)``      mutex acquire (may block -> sync wait)
``ReleaseLock(lock)``      mutex release (wakes one FIFO waiter)
``WaitCondition(cond)``    block until the condition is signalled
``SignalCondition(cond)``  wake every current waiter
``WaitBarrier(barrier)``   block until ``parties`` processes arrive
``Halt()``                 terminate this process

Per-process accounting mirrors the paper's measurement methodology:
``busy`` is pixie's ideal time, ``busy + stall`` is prof's actual
time, and ``sync_wait`` is the source-instrumented synchronisation
time.  Everything is deterministic: the ready heap breaks time ties by
a monotone sequence number and all waiter queues are FIFO.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable

from repro.obs.stalls import StallTable
from repro.smp.sync import Barrier, Condition, Lock


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Compute:
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative compute cycles: {self.cycles}")


@dataclass(frozen=True)
class Stall:
    """Memory-system stall cycles (kept separate from busy cycles)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative stall cycles: {self.cycles}")


@dataclass(frozen=True)
class AcquireLock:
    lock: Lock


@dataclass(frozen=True)
class ReleaseLock:
    lock: Lock


@dataclass(frozen=True)
class WaitCondition:
    condition: Condition


@dataclass(frozen=True)
class SignalCondition:
    condition: Condition


@dataclass(frozen=True)
class WaitBarrier:
    barrier: Barrier


@dataclass(frozen=True)
class SleepUntil:
    """Idle until an absolute virtual time (paced display output).

    Time spent sleeping is accounted as ``idle``, not busy/stall/sync.
    Sleeping into the past is a no-op.
    """

    at: int


@dataclass(frozen=True)
class Halt:
    pass


Command = (
    Compute
    | Stall
    | AcquireLock
    | ReleaseLock
    | WaitCondition
    | SignalCondition
    | WaitBarrier
    | SleepUntil
    | Halt
)


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
@dataclass
class ProcessStats:
    """Where a process's virtual time went (the paper's split)."""

    busy: int = 0
    stall: int = 0
    sync_wait: int = 0
    idle: int = 0
    finish_time: int = 0
    #: ``sync_wait`` split by canonical stall reason
    #: (:mod:`repro.obs.stalls` vocabulary); values sum to sync_wait.
    sync_by_reason: dict = field(default_factory=dict)

    @property
    def ideal(self) -> int:
        """pixie-style ideal execution time."""
        return self.busy

    @property
    def actual(self) -> int:
        """prof-style actual time including memory stalls."""
        return self.busy + self.stall

    @property
    def total(self) -> int:
        return self.busy + self.stall + self.sync_wait


class Process:
    """One simulated processor's thread of control."""

    def __init__(self, name: str, body: Callable[["Process"], Generator]) -> None:
        self.name = name
        self.stats = ProcessStats()
        self._body = body
        self._gen: Generator | None = None
        self.finished = False
        #: When the current blocking wait began (for accounting).
        self._wait_start: int | None = None
        #: The primitive this process is blocked on (stall attribution).
        self._wait_primitive: Lock | Condition | Barrier | None = None
        #: Value delivered on next resume.
        self._resume_value = None

    def start(self) -> Generator:
        self._gen = self._body(self)
        return self._gen

    def __repr__(self) -> str:
        return f"<Process {self.name}>"


class DeadlockError(Exception):
    """All live processes are blocked and no event can wake them."""


class Simulator:
    """Runs processes in virtual time until all finish."""

    def __init__(self) -> None:
        self.now = 0
        self._seq = 0
        self._ready: list[tuple[int, int, Process]] = []
        self.processes: list[Process] = []
        #: Stall attribution: every blocked interval is recorded here as
        #: (process name, canonical reason, cycles) — the simulator-side
        #: mirror of the mp pipeline's wall-clock stall table.
        self.stalls = StallTable()

    # ------------------------------------------------------------------
    def add_process(self, name: str, body: Callable[[Process], Generator]) -> Process:
        proc = Process(name, body)
        self.processes.append(proc)
        proc.start()
        self._schedule(proc, self.now)
        return proc

    def _schedule(self, proc: Process, at: int) -> None:
        heapq.heappush(self._ready, (at, self._seq, proc))
        self._seq += 1

    def _block(
        self, proc: Process, primitive: Lock | Condition | Barrier
    ) -> None:
        """Mark a process blocked on ``primitive`` (wait accounting)."""
        proc._wait_start = self.now
        proc._wait_primitive = primitive
        primitive.waits += 1

    def _wake(self, proc: Process, value=None) -> None:
        """Unblock a process at the current time, charging sync wait.

        The blocked interval is charged three ways under one unit
        (cycles): the process's ``sync_wait`` total and its per-reason
        split, the primitive's ``wait_cycles``, and the simulator-wide
        :class:`~repro.obs.stalls.StallTable`.
        """
        assert proc._wait_start is not None
        waited = self.now - proc._wait_start
        proc.stats.sync_wait += waited
        primitive = proc._wait_primitive
        if primitive is not None:
            primitive.wait_cycles += waited
            reason = primitive.reason
            proc.stats.sync_by_reason[reason] = (
                proc.stats.sync_by_reason.get(reason, 0) + waited
            )
            self.stalls.record(proc.name, reason, waited)
        proc._wait_start = None
        proc._wait_primitive = None
        proc._resume_value = value
        self._schedule(proc, self.now)

    # ------------------------------------------------------------------
    def run(self, max_events: int = 500_000_000) -> None:
        """Execute until every process has finished."""
        events = 0
        while self._ready:
            events += 1
            if events > max_events:
                raise RuntimeError("simulation exceeded max_events")
            time, _, proc = heapq.heappop(self._ready)
            self.now = max(self.now, time)
            self._step(proc)
        blocked = [p for p in self.processes if not p.finished]
        if blocked:
            raise DeadlockError(
                "simulation ended with blocked processes: "
                + ", ".join(p.name for p in blocked)
            )

    def _step(self, proc: Process) -> None:
        gen = proc._gen
        assert gen is not None
        value, proc._resume_value = proc._resume_value, None
        try:
            command = gen.send(value)
        except StopIteration:
            self._finish(proc)
            return
        self._execute(proc, command)

    def _finish(self, proc: Process) -> None:
        proc.finished = True
        proc.stats.finish_time = self.now

    # ------------------------------------------------------------------
    def _execute(self, proc: Process, command: Command) -> None:
        if isinstance(command, Compute):
            proc.stats.busy += command.cycles
            self._schedule(proc, self.now + command.cycles)
        elif isinstance(command, Stall):
            proc.stats.stall += command.cycles
            self._schedule(proc, self.now + command.cycles)
        elif isinstance(command, AcquireLock):
            lock = command.lock
            lock.acquisitions += 1
            if lock.holder is None:
                lock.holder = proc
                self._schedule(proc, self.now)
            else:
                lock.contentions += 1
                self._block(proc, lock)
                lock.waiters.append(proc)
        elif isinstance(command, ReleaseLock):
            lock = command.lock
            if lock.holder is not proc:
                raise RuntimeError(
                    f"{proc.name} released {lock.name} held by "
                    f"{getattr(lock.holder, 'name', None)}"
                )
            if lock.waiters:
                nxt = lock.waiters.popleft()
                lock.holder = nxt
                self._wake(nxt)
            else:
                lock.holder = None
            self._schedule(proc, self.now)
        elif isinstance(command, WaitCondition):
            self._block(proc, command.condition)
            command.condition.waiters.append(proc)
        elif isinstance(command, SignalCondition):
            cond = command.condition
            cond.signals += 1
            while cond.waiters:
                self._wake(cond.waiters.popleft())
            self._schedule(proc, self.now)
        elif isinstance(command, WaitBarrier):
            barrier = command.barrier
            if len(barrier.arrived) + 1 == barrier.parties:
                barrier.generation += 1
                while barrier.arrived:
                    self._wake(barrier.arrived.popleft())
                self._schedule(proc, self.now)
            else:
                self._block(proc, barrier)
                barrier.arrived.append(proc)
        elif isinstance(command, SleepUntil):
            wake = max(command.at, self.now)
            proc.stats.idle += wake - self.now
            self._schedule(proc, wake)
        elif isinstance(command, Halt):
            self._finish(proc)
        else:
            raise TypeError(f"unknown simulator command: {command!r}")

    # ------------------------------------------------------------------
    def stats_by_name(self) -> dict[str, ProcessStats]:
        return {p.name: p.stats for p in self.processes}

    def finish_time(self, names: Iterable[str] | None = None) -> int:
        """Latest finish time over the named (or all) processes."""
        procs = self.processes
        if names is not None:
            wanted = set(names)
            procs = [p for p in procs if p.name in wanted]
        return max((p.stats.finish_time for p in procs), default=0)
