"""Shared constants of the MPEG-2 video syntax subset we implement.

Scope (documented in DESIGN.md): 4:2:0 chroma, progressive frames,
MPEG-1-style picture headers, half-pel motion vectors, linear
quantiser-scale mapping.  These are the parts the paper's decoder
exercises; interlace and scalability are explicitly out of scope there
too (Section 7.3 lists them as future work).
"""

from __future__ import annotations

import enum

#: Luma samples per macroblock edge.
MACROBLOCK_SIZE = 16
#: Samples per DCT block edge.
BLOCK_SIZE = 8
#: Blocks per macroblock in 4:2:0 (4 luma + Cb + Cr).
BLOCKS_PER_MACROBLOCK = 6

#: Saturation bounds for dequantized DCT coefficients (ISO 13818-2 7.4.3).
COEFF_MIN = -2048
COEFF_MAX = 2047

#: Quantized level bounds representable by the 12-bit escape coding.
LEVEL_MIN = -2047
LEVEL_MAX = 2047

#: Intra-DC precision in bits (we fix 8: differential DC steps of 8).
INTRA_DC_PRECISION = 8

#: quantiser_scale_code is 5 bits, 1..31; linear mapping q = 2 * code.
QSCALE_CODE_MIN = 1
QSCALE_CODE_MAX = 31


class PictureType(enum.IntEnum):
    """picture_coding_type field values (ISO 11172-2 / 13818-2)."""

    I = 1
    P = 2
    B = 3

    @property
    def is_reference(self) -> bool:
        """I and P pictures are prediction references; B never is."""
        return self is not PictureType.B

    @property
    def letter(self) -> str:
        return self.name


def quantiser_scale(code: int) -> int:
    """Linear quantiser-scale mapping (MPEG-2 ``q_scale_type == 0``)."""
    if not QSCALE_CODE_MIN <= code <= QSCALE_CODE_MAX:
        raise ValueError(f"quantiser_scale_code out of range: {code}")
    return 2 * code


def mb_ceil(samples: int) -> int:
    """Number of macroblocks covering ``samples`` pixels (pad to 16)."""
    return (samples + MACROBLOCK_SIZE - 1) // MACROBLOCK_SIZE
