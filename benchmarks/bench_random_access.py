"""Sections 5.1.1 / 5.2 — random-access (play-control) latency.

Paper (qualitative): after a seek, the GOP decomposition leaves one
worker to decode the landing GOP alone, while the slice decomposition
puts every worker on the first picture — so the slice version responds
far faster to fast-forward/reverse.  We quantify the claim with the
same cost model the throughput results use.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel.random_access import seek_latency

from benchmarks.conftest import PAPER_CASES

WORKER_SWEEP = [1, 4, 8, 14]


def test_random_access_latency(benchmark, env, record):
    def run():
        out = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=26)
            for workers in WORKER_SWEEP:
                out[(res, workers)] = seek_latency(
                    profile, gop_index=1, workers=workers
                )
        return out

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case", "GOP-level ms", "slice-level ms", "advantage"],
        title="Random-access latency to first displayed picture after a seek",
    )
    for (res, workers), lat in latencies.items():
        table.add_row(
            f"{res} P={workers}",
            round(lat.gop_level * 1e3, 1),
            round(lat.slice_level * 1e3, 1),
            f"{lat.advantage:.1f}x",
        )
    record(table.render())

    for res in PAPER_CASES:
        # One worker: no advantage. Many workers: the slice version's
        # response improves with P, the GOP version's does not.
        assert abs(latencies[(res, 1)].advantage - 1.0) < 0.05
        assert latencies[(res, 8)].advantage > 2.0
        assert (
            latencies[(res, 14)].gop_level
            == latencies[(res, 1)].gop_level
        )
