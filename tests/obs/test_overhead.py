"""Overhead guard: observation must not perturb (or slow) decode.

Two properties pinned here:

1. **No allocation when disabled** — with tracing off, the decoder's
   hot path constructs zero span objects: :func:`trace_span` returns
   the shared :data:`NULL_SPAN` singleton and ``Tracer.span`` is never
   called.
2. **Observation is inert** — decoded frames and work counters are
   bit-identical with tracing enabled and disabled, for both engines
   and for the mp pipeline.

PR-8 extends both properties across the wire: a full net
serve/stream session with telemetry available but tracing *disabled*
still constructs zero span objects (the e2e instrumentation all goes
through the module-level ``trace_*`` guards), and the frames a client
reassembles are bit-identical with tracing on and off.
"""

from __future__ import annotations

import pytest

import repro.obs.trace as trace_mod
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import ENGINES, SequenceDecoder
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    disable_tracing,
    enable_tracing,
    trace_span,
)

from tests.mpeg2.test_batched_parity import assert_frames_identical


def _decode(data: bytes, engine: str = "batched"):
    counters = WorkCounters()
    frames = SequenceDecoder(data, engine=engine).decode_all(counters)
    return frames, counters


class TestDisabledPath:
    def test_trace_span_returns_shared_singleton(self):
        assert trace_span("decode.picture") is NULL_SPAN
        assert trace_span("kernel.mc", cat="kernel", n=3) is NULL_SPAN

    def test_decode_constructs_no_spans_when_disabled(
        self, small_stream, monkeypatch
    ):
        calls = {"span": 0, "complete": 0}
        orig_span = Tracer.span
        orig_complete = Tracer.complete

        def counting_span(self, *a, **k):
            calls["span"] += 1
            return orig_span(self, *a, **k)

        def counting_complete(self, *a, **k):
            calls["complete"] += 1
            return orig_complete(self, *a, **k)

        monkeypatch.setattr(Tracer, "span", counting_span)
        monkeypatch.setattr(Tracer, "complete", counting_complete)

        assert trace_mod._tracer is None  # disabled
        _decode(small_stream)
        assert calls == {"span": 0, "complete": 0}

        # Control: the counting hooks do fire once tracing is enabled
        # (so the zero above means "not called", not "not patched").
        enable_tracing()
        _decode(small_stream)
        disable_tracing()
        assert calls["span"] > 0


class TestObservationIsInert:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_frames_and_counters_identical_tracing_on_off(
        self, small_stream, engine
    ):
        frames_off, counters_off = _decode(small_stream, engine)
        enable_tracing()
        try:
            frames_on, counters_on = _decode(small_stream, engine)
        finally:
            disable_tracing()
        assert_frames_identical(frames_off, frames_on)
        assert counters_off.as_dict() == counters_on.as_dict()

    def test_mp_decode_identical_tracing_on_off(self, two_gop_stream):
        from repro.parallel.mp import MPGopDecoder

        counters_off = WorkCounters()
        frames_off = MPGopDecoder(two_gop_stream, workers=2).decode_all(
            counters_off
        )
        enable_tracing(process_name="test-parent")
        try:
            counters_on = WorkCounters()
            frames_on = MPGopDecoder(two_gop_stream, workers=2).decode_all(
                counters_on
            )
        finally:
            disable_tracing()
        assert_frames_identical(frames_off, frames_on)
        assert counters_off.as_dict() == counters_on.as_dict()


@pytest.mark.net
class TestNetPathOverhead:
    """The telemetry-instrumented wire path obeys the same guards."""

    def _stream_once(self, data: bytes, fps: float = 250.0):
        import asyncio

        from repro.net.client import stream_session
        from repro.net.server import NetServer

        async def go():
            srv = NetServer({"s": data}, workers=0, fps=fps)
            await srv.start()
            try:
                result = await stream_session(
                    "127.0.0.1", srv.port, "s",
                    keep_frames=True, timeout_s=60.0,
                )
            finally:
                await srv.aclose()
            return result

        return asyncio.run(go())

    def test_net_session_constructs_no_spans_when_disabled(
        self, two_gop_stream, monkeypatch
    ):
        # The e2e spans (decode/pace/wire server-side, reassemble/
        # conceal/deadline client-side) ride the module-level trace_*
        # guards: with tracing disabled a full traced-capable session
        # must never touch a Tracer method.
        calls = {"n": 0}
        for meth in ("span", "complete", "instant", "counter"):
            orig = getattr(Tracer, meth)

            def counting(self, *a, _o=orig, **k):
                calls["n"] += 1
                return _o(self, *a, **k)

            monkeypatch.setattr(Tracer, meth, counting)

        assert trace_mod._tracer is None  # disabled
        result = self._stream_once(two_gop_stream)
        assert result.status == "done"
        assert calls["n"] == 0

        # Control: the same session with tracing enabled does trace.
        enable_tracing(process_name="net-overhead-control")
        try:
            self._stream_once(two_gop_stream)
        finally:
            disable_tracing()
        assert calls["n"] > 0

    def test_net_frames_identical_tracing_on_off(self, two_gop_stream):
        result_off = self._stream_once(two_gop_stream)
        enable_tracing(process_name="net-overhead")
        try:
            result_on = self._stream_once(two_gop_stream)
        finally:
            disable_tracing()
        assert result_off.status == result_on.status == "done"
        assert_frames_identical(result_off.frames, result_on.frames)
