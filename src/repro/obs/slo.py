"""Per-session service-level objectives with burn-rate accounting.

The ROADMAP's north star — serve heavy traffic and *prove* graceful
degradation — needs more than raw lateness lists: it needs a declared
objective and an online verdict.  ``SLOPolicy`` declares the contract
(deadline-miss budget, p99 lateness ceiling, conceal-rate ceiling) and
``SLOTracker`` evaluates it picture by picture:

* **budget_spent** — lifetime miss rate over the declared budget
  (1.0 = the whole error budget is gone);
* **burn_rate** — the same ratio over a sliding window of recent
  pictures, the SRE-style early-warning signal (burn_rate 2.0 means
  the budget is being consumed at twice the sustainable pace);
* **breaches / burned_out** — the explicit verdict once at least
  ``min_pictures`` observations have landed, so cold-start noise never
  trips an alarm.

Trackers live on both sides of the wire: `repro.serve` feeds one from
emit-time lateness per session, `repro.net` feeds one from client
STATS receipts per connection, and the snapshot travels in STATS
pushes, ``obs_report`` and ``BENCH_net.json``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

# Keep at most this many lateness samples per tracker; beyond it only
# the running max is exact.  4096 pictures is ~2 min at 30 fps — far
# more than any test or bench session — while bounding memory.
LATENESS_SAMPLE_CAP = 4096


@dataclass(frozen=True)
class SLOPolicy:
    """Declarative per-session objectives.

    ``deadline_miss_budget`` is the tolerated fraction of pictures
    emitted after their display deadline; ``p99_lateness_ms`` bounds
    how late the worst tolerated tail may run; ``conceal_rate_ceiling``
    bounds the fraction of macroblock rows arriving concealed rather
    than decoded.  ``window_pictures`` sizes the burn-rate window and
    ``min_pictures`` gates any verdict so short sessions don't alarm
    on one unlucky picture.
    """

    deadline_miss_budget: float = 0.05
    p99_lateness_ms: float = 100.0
    conceal_rate_ceiling: float = 0.05
    window_pictures: int = 60
    min_pictures: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.deadline_miss_budget <= 1.0:
            raise ValueError("deadline_miss_budget must be in (0, 1]")
        if self.p99_lateness_ms < 0:
            raise ValueError("p99_lateness_ms must be >= 0")
        if not 0.0 <= self.conceal_rate_ceiling <= 1.0:
            raise ValueError("conceal_rate_ceiling must be in [0, 1]")
        if self.window_pictures < 1:
            raise ValueError("window_pictures must be >= 1")
        if self.min_pictures < 1:
            raise ValueError("min_pictures must be >= 1")

    def to_json(self) -> dict[str, Any]:
        return {
            "deadline_miss_budget": self.deadline_miss_budget,
            "p99_lateness_ms": self.p99_lateness_ms,
            "conceal_rate_ceiling": self.conceal_rate_ceiling,
            "window_pictures": self.window_pictures,
            "min_pictures": self.min_pictures,
        }


class SLOTracker:
    """Online evaluation of one session against an :class:`SLOPolicy`."""

    def __init__(
        self, policy: SLOPolicy | None = None, session: str | None = None
    ) -> None:
        self.policy = policy or SLOPolicy()
        self.session = session
        self.pictures = 0
        self.misses = 0
        self.shed = 0
        self.rows_total = 0
        self.rows_concealed = 0
        self._lateness_ms: list[float] = []
        self._max_late_ms = 0.0
        self._window: deque[bool] = deque(maxlen=self.policy.window_pictures)

    def observe(
        self,
        late_s: float = 0.0,
        concealed_rows: int = 0,
        rows: int = 0,
        shed: bool = False,
    ) -> None:
        """Record one picture outcome.

        ``late_s`` is emit-time lateness in seconds (<= 0 means on
        time); ``rows``/``concealed_rows`` feed the conceal-rate
        objective; a ``shed`` picture counts as a deadline miss — the
        viewer never saw it, which is the worst kind of late.
        """

        self.pictures += 1
        late_ms = max(0.0, late_s * 1000.0)
        miss = shed or late_s > 0.0
        if shed:
            self.shed += 1
        if miss:
            self.misses += 1
        self._window.append(miss)
        if late_ms > self._max_late_ms:
            self._max_late_ms = late_ms
        if len(self._lateness_ms) < LATENESS_SAMPLE_CAP:
            self._lateness_ms.append(late_ms)
        self.rows_total += rows
        self.rows_concealed += concealed_rows

    @property
    def miss_rate(self) -> float:
        return self.misses / self.pictures if self.pictures else 0.0

    @property
    def conceal_rate(self) -> float:
        if not self.rows_total:
            return 0.0
        return self.rows_concealed / self.rows_total

    @property
    def p99_lateness_ms(self) -> float:
        if not self._lateness_ms:
            return 0.0
        ordered = sorted(self._lateness_ms)
        pos = 0.99 * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def budget_spent(self) -> float:
        """Fraction of the lifetime error budget consumed (1.0 = all)."""

        return self.miss_rate / self.policy.deadline_miss_budget

    @property
    def burn_rate(self) -> float:
        """Budget-consumption pace over the recent window.

        1.0 means the window is missing at exactly the budgeted rate;
        anything persistently above 1.0 exhausts the budget early.
        """

        if not self._window:
            return 0.0
        window_rate = sum(self._window) / len(self._window)
        return window_rate / self.policy.deadline_miss_budget

    def breaches(self) -> list[str]:
        """Objectives currently violated (empty before ``min_pictures``)."""

        if self.pictures < self.policy.min_pictures:
            return []
        out: list[str] = []
        if self.budget_spent > 1.0:
            out.append("deadline-miss-budget")
        if self.p99_lateness_ms > self.policy.p99_lateness_ms:
            out.append("p99-lateness")
        if self.conceal_rate > self.policy.conceal_rate_ceiling:
            out.append("conceal-rate")
        return out

    @property
    def burned_out(self) -> bool:
        return bool(self.breaches())

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state for STATS pushes, reports and benches."""

        return {
            "session": self.session,
            "policy": self.policy.to_json(),
            "pictures": self.pictures,
            "misses": self.misses,
            "shed": self.shed,
            "miss_rate": self.miss_rate,
            "p99_lateness_ms": self.p99_lateness_ms,
            "max_lateness_ms": self._max_late_ms,
            "conceal_rate": self.conceal_rate,
            "budget_spent": self.budget_spent,
            "burn_rate": self.burn_rate,
            "breaches": self.breaches(),
            "burned_out": self.burned_out,
        }
