"""Asyncio TCP streaming server over the dynamic decode service.

One :class:`NetServer` owns a :class:`~repro.serve.service.
DecodeService` running :meth:`~repro.serve.service.DecodeService.
run_forever` on a dedicated thread, plus an asyncio acceptor.  Each
client connection:

1. sends ``HELLO {stream, fps?}`` naming one of the server's published
   streams;
2. passes two admission gates — the bandwidth gate (summed *peak* rates
   of active sessions vs ``link_bps``, using
   :func:`repro.analysis.bandwidth.profile_stream`) and the service's
   own capacity gate;
3. receives ``ACCEPT`` with the stream geometry, then display-ordered
   pictures: one droppable ``SLICE`` message per MB-row band followed
   by a reliable ``PIC_DONE``, paced onto the wire at the session's
   display rate;
4. may send ``STATS`` receipts upstream (per-picture concealment and
   lateness), which land in the server report.

A client that disconnects mid-stream triggers
:meth:`~repro.serve.service.DecodeService.request_cancel` — its
session is shed without poisoning the shared worker pool.  The
optional :class:`~repro.net.impair.ImpairmentProfile` applies the
seeded loss/reorder/jitter/bandwidth shim to every connection's
outgoing slice traffic (CI's stand-in for a lossy network).

PR-8 telemetry at the net edge:

* the ``HELLO``/``ACCEPT`` exchange carries the trace id and the
  clock-offset handshake (:mod:`repro.obs.propagate`), ``SLICE``/
  ``PIC_DONE`` carry server send timestamps, and — when tracing is on
  — the server emits the server half of the per-picture end-to-end
  spans (``e2e.decode``, ``e2e.pace``, ``e2e.wire``);
* ``metrics_port=`` starts a Prometheus-exposition
  :class:`~repro.obs.export.MetricsExporter` side port for live
  scraping, and ``stats_push_pictures=N`` pushes a ``STATS`` frame to
  each client every N pictures with the live SLO snapshot;
* every connection owns an :class:`~repro.obs.slo.SLOTracker` fed
  from client receipts; its snapshot lands in the report and in
  ``BENCH_net.json``, and a burnout triggers a flight-recorder dump
  (:mod:`repro.obs.flightrec`) alongside the fail/cancel dumps the
  service itself performs.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.analysis.bandwidth import BandwidthProfile, profile_stream
from repro.net.impair import ImpairedSender, ImpairmentProfile, ImpairmentSchedule
from repro.net.protocol import (
    MSG_ACCEPT,
    MSG_BYE,
    MSG_HELLO,
    MSG_PIC_DONE,
    MSG_RATE,
    MSG_REJECT,
    MSG_SEEK,
    MSG_SLICE,
    MSG_STATS,
    ProtocolError,
    band_bytes,
    encode_message,
    read_message,
)
from repro.obs.export import MetricsExporter
from repro.obs.metrics import metrics
from repro.obs.propagate import (
    E2E_CATEGORY,
    SPAN_DECODE,
    SPAN_PACE,
    SPAN_WIRE,
)
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.obs.trace import trace_complete
from repro.access import AccessError, plan_trick
from repro.mpeg2.index import StreamIndex, StreamIndexError, build_index
from repro.serve.service import DecodeService
from repro.serve.session import SessionStatus


class NetServer:
    """TCP front end: ``streams`` is the published name -> bytes map."""

    def __init__(
        self,
        streams: dict[str, bytes],
        workers: int = 0,
        fps: float = 30.0,
        capacity: int | None = None,
        resilient: bool = True,
        link_bps: float | None = None,
        impairment: ImpairmentProfile | None = None,
        preroll_pictures: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
        slo: SLOPolicy | None = None,
        stats_push_pictures: int = 0,
        flight_dir: str | None = None,
        **service_kwargs,
    ) -> None:
        if fps <= 0:
            raise ValueError(f"fps must be > 0, got {fps}")
        if stats_push_pictures < 0:
            raise ValueError("stats_push_pictures must be >= 0")
        self.streams = dict(streams)
        self.fps = fps
        self.link_bps = link_bps
        self.impairment = impairment
        self.preroll_pictures = preroll_pictures
        self.slo_policy = slo or SLOPolicy()
        #: 0 disables server->client STATS pushes.
        self.stats_push_pictures = stats_push_pictures
        self.metrics_port = metrics_port
        self.exporter: MetricsExporter | None = None
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.profiles: dict[str, BandwidthProfile] = {}
        #: name -> error class for streams whose scan/profile failed.
        #: A poison entry in ``streams`` must not take the server down;
        #: its sessions are refused at HELLO with ``scan-failed``.
        self.profile_errors: dict[str, str] = {}
        #: name -> scan index; drives SEEK target -> GOP resolution.
        self.indexes: dict[str, StreamIndex] = {}
        for name, data in self.streams.items():
            try:
                index = build_index(data)
                self.indexes[name] = index
                self.profiles[name] = profile_stream(
                    data, fps=fps, index=index
                )
            except Exception as exc:
                self.profile_errors[name] = type(exc).__name__
        self.service = DecodeService(
            workers=workers,
            fps=fps,
            capacity=capacity,
            resilient=resilient,
            preroll_pictures=preroll_pictures,
            slo_policy=slo,
            flight_dir=flight_dir,
            **service_kwargs,
        )
        self._slo_trackers: dict[int, SLOTracker] = {}
        self.connections: list[dict] = []
        self._next_conn = 0
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._service_thread: threading.Thread | None = None
        self._service_report: dict | None = None
        #: sid -> peak_bps of currently-admitted sessions (bandwidth gate).
        self._admitted_bps: dict[str, float] = {}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the service thread and start accepting connections."""
        self._service_thread = threading.Thread(
            target=self._run_service, name="decode-service", daemon=True
        )
        self._service_thread.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host,
            port=self._requested_port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self.exporter = MetricsExporter(
                host=self.host, port=self.metrics_port
            )
            self.metrics_port = self.exporter.start()

    def _run_service(self) -> None:
        self._service_report = self.service.run_forever()

    async def aclose(self, drain: bool = False) -> dict:
        """Stop accepting, shut the service down, return the report."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            # Let in-flight handlers settle before pulling the service.
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=10.0
            )
            for task in pending:
                task.cancel()
        self.service.shutdown(drain=drain)
        if self._service_thread is not None:
            await asyncio.to_thread(self._service_thread.join, 30.0)
        if self.exporter is not None:
            self.exporter.stop()
        return self.report()

    # ------------------------------------------------------------------
    def _bandwidth_admit(self, sid: str, profile: BandwidthProfile) -> bool:
        """Peak-rate link budget: admit unless it would oversubscribe.

        Mirrors :func:`repro.analysis.bandwidth.admissible_sessions`:
        the first session is always admitted (it degrades on the wire
        rather than being unservable).
        """
        if self.link_bps is None:
            return True
        used = sum(self._admitted_bps.values())
        if self._admitted_bps and used + profile.peak_bps > self.link_bps:
            return False
        self._admitted_bps[sid] = profile.peak_bps
        return True

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        conn_id = self._next_conn
        self._next_conn += 1
        record: dict = {"conn": conn_id, "status": "handshake", "stats": []}
        self.connections.append(record)
        sid: str | None = None
        try:
            await self._serve_client(conn_id, record, reader, writer)
        except (
            ConnectionError, ProtocolError, asyncio.IncompleteReadError,
            BrokenPipeError, TimeoutError,
        ) as exc:
            record["status"] = "disconnected"
            record["error"] = f"{type(exc).__name__}: {exc}"
            sid = record.get("session")
            if sid is not None:
                # The cancel path: shed the session, keep the pool clean.
                self.service.flight.record(
                    sid, "net.disconnected", conn=conn_id,
                    error=record["error"],
                )
                # Dump here, not just from the service's cancel path: a
                # fast in-process decode often finishes (DONE) before
                # the wire notices the hangup, and a done session no
                # longer cancels — but the broken connection is still
                # worth an autopsy.
                self.service.flight_dump(sid, "net-disconnected")
                self.service.request_cancel(sid)
                metrics().counter("net.sessions.cancelled").inc()
        finally:
            tracker = self._slo_trackers.pop(conn_id, None)
            if tracker is not None and tracker.pictures:
                record["slo"] = tracker.snapshot()
            sid = record.get("session")
            if sid is not None:
                self._admitted_bps.pop(sid, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _serve_client(self, conn_id, record, reader, writer) -> None:
        hello = await read_message(reader)
        hello_recv_ns = time.monotonic_ns()
        if hello is None or hello.type != MSG_HELLO:
            raise ProtocolError("expected HELLO")
        name = hello.header.get("stream")
        trace_id = hello.header.get("trace")
        if trace_id is not None:
            record["trace_id"] = trace_id
        seq = 0

        async def reject(reason: str) -> None:
            nonlocal seq
            record["status"] = f"rejected:{reason}"
            metrics().counter("net.sessions.rejected").inc()
            writer.write(
                encode_message(MSG_REJECT, seq, {"reason": reason})
            )
            await writer.drain()

        if name not in self.streams:
            await reject("unknown-stream")
            return
        data = self.streams[name]
        profile = self.profiles.get(name)
        if profile is None:
            await reject("scan-failed")
            return
        # Trick-play control handshake: HELLO announced ``controls: N``
        # reliable SEEK/RATE frames which we read *before* admission —
        # the request shapes the session (join GOP, served picture
        # set), so it must be part of the handshake, not a race with
        # slice traffic.
        controls = int(hello.header.get("controls", 0) or 0)
        seek_picture: int | None = None
        rate = 1
        for _ in range(controls):
            ctrl = await read_message(reader)
            if ctrl is None:
                raise ProtocolError("EOF during trick-play handshake")
            if ctrl.type == MSG_SEEK:
                seek_picture = int(ctrl.header.get("picture", 0))
            elif ctrl.type == MSG_RATE:
                rate = int(ctrl.header.get("rate", 1))
            else:
                raise ProtocolError(
                    f"expected SEEK/RATE in handshake, got {ctrl.type_name}"
                )
        if rate not in (1, 2, 4):
            await reject("bad-rate")
            return
        start_gop = 0
        if seek_picture is not None:
            index = self.indexes[name]
            try:
                # The session joins at the next *closed* GOP at/after
                # the one owning the target (StreamSession.join_point).
                start_gop = index.gop_for_display_index(seek_picture)
            except StreamIndexError:
                await reject("seek-past-eof")
                return
        sid = f"{name}#{conn_id}"
        if not self._bandwidth_admit(sid, profile):
            await reject("bandwidth")
            return
        record["session"] = sid
        self.service.flight.record(
            sid, "net.hello", conn=conn_id, stream=name, trace=trace_id,
            seek=seek_picture, rate=rate,
        )

        loop = asyncio.get_running_loop()
        frames: asyncio.Queue = asyncio.Queue()

        def sink(display_index, frame) -> None:
            # Runs on the service thread; hop to the event loop.  The
            # ready timestamp is taken here, on the decode side of the
            # hop, so the e2e.decode span ends when the picture was
            # actually produced, not when the loop got around to it.
            try:
                loop.call_soon_threadsafe(
                    frames.put_nowait,
                    (display_index, frame, time.monotonic_ns()),
                )
            except RuntimeError:  # pragma: no cover - loop tearing down
                pass

        sess = await asyncio.to_thread(
            self.service.submit_dynamic, sid, data,
            on_frame=sink, start_gop=start_gop,
        )
        if sess.status is SessionStatus.REJECTED:
            await reject("capacity")
            return
        if sess.status is SessionStatus.FAILED:
            await reject("scan-failed")
            return

        # Fast-forward: only the ffN plan's pictures go on the wire,
        # renumbered contiguously so the client's delivered-or-
        # concealed accounting and lateness CDF work unchanged — at
        # rate N the k-th served picture is due at k/fps, which is
        # exactly N-times content speed.
        selected: dict[int, int] | None = None
        if rate > 1:
            try:
                plan = plan_trick(sess.index, f"ff{rate}")
            except AccessError:
                self.service.request_cancel(sid)
                await reject("bad-rate")
                return
            selected = {
                di: k for k, di in enumerate(plan.display_indices(sess.index))
            }
        pictures = len(selected) if selected is not None else sess.picture_count
        mb_height = sess.index.mb_height
        header = {
            "session": sid,
            "stream": name,
            "width": sess.seq.width,
            "height": sess.seq.height,
            "mb_height": mb_height,
            "pictures": pictures,
            "rate": rate,
            "join_gop": sess.join_gop,
            "join_display_base": sess.join_display_base,
            "fps": self.fps,
            "preroll": self.preroll_pictures,
            "profile": {
                "mean_bps": profile.mean_bps,
                "peak_bps": profile.peak_bps,
                "burstiness": profile.burstiness,
            },
            # Clock-offset handshake: the client sent t_ns in HELLO;
            # it closes the NTP-style exchange with these two stamps.
            "clock": {
                "recv_ns": hello_recv_ns,
                "send_ns": time.monotonic_ns(),
            },
        }
        if trace_id is not None:
            header["trace"] = trace_id
        writer.write(encode_message(MSG_ACCEPT, seq, header))
        seq += 1
        await writer.drain()
        record["status"] = "streaming"
        metrics().counter("net.sessions.accepted").inc()
        tracker = SLOTracker(self.slo_policy, session=sid)
        self._slo_trackers[conn_id] = tracker
        self.service.flight.record(sid, "net.accept", conn=conn_id)

        schedule = (
            ImpairmentSchedule(self.impairment)
            if self.impairment is not None
            else None
        )
        sender = ImpairedSender(writer, schedule)
        stats_task = asyncio.ensure_future(
            self._read_stats(reader, record, tracker)
        )
        try:
            await self._stream_pictures(
                record, sess, frames, sender, seq, pictures, mb_height,
                tracker, selected=selected,
            )
            if selected is not None:
                # Fast-forward served its last wire picture; whatever
                # the session is still decoding is unwatchable — shed
                # it instead of burning worker time.
                self.service.request_cancel(sid)
            # The client may close as soon as it has every picture; the
            # stats reader finishing (EOF) is not an error here.
            await asyncio.wait_for(stats_task, timeout=5.0)
        finally:
            if not stats_task.done():
                stats_task.cancel()
            record["impair"] = sender.stats.to_json()
        record["status"] = "done"
        self.service.flight.record(sid, "net.done", conn=conn_id)

    async def _stream_pictures(
        self, record, sess, frames, sender, seq, pictures, mb_height,
        tracker=None, selected=None,
    ) -> None:
        """Pace display-ordered pictures onto the wire as slice bands.

        ``selected`` (fast-forward) maps the session display indices to
        serve onto contiguous wire picture numbers; decoded pictures
        outside the map are consumed and discarded without charging a
        deadline.
        """
        loop = asyncio.get_running_loop()
        period = 1.0 / self.fps
        t0: float | None = None
        sent_pics = 0
        sid = record.get("session")
        # Decode-span anchor: the pipeline is busy on this picture from
        # the moment the previous one was ready (or from stream start).
        prev_ready_ns = time.monotonic_ns()
        while sent_pics < pictures:
            try:
                display_index, frame, ready_ns = await asyncio.wait_for(
                    frames.get(), timeout=0.5
                )
            except asyncio.TimeoutError:
                if sess.terminal and frames.empty():
                    # Decode failed server-side mid-stream: tell the
                    # client how far we got instead of going silent.
                    await sender.flush()
                    await sender.send(
                        encode_message(
                            MSG_BYE, seq,
                            {"pictures": sent_pics, "error": "decode-failed"},
                        ),
                        droppable=False, seq=seq,
                    )
                    return
                continue
            if selected is not None:
                if display_index not in selected:
                    continue
                display_index = selected[display_index]
            trace_complete(
                SPAN_DECODE, E2E_CATEGORY,
                prev_ready_ns, max(0, ready_ns - prev_ready_ns),
                session=sid, pic=display_index,
            )
            prev_ready_ns = ready_ns
            now = loop.time()
            if t0 is None:
                t0 = now
            else:
                deadline = t0 + (display_index + self.preroll_pictures) * period
                if deadline > now:
                    await asyncio.sleep(deadline - now)
            wire_start_ns = time.monotonic_ns()
            trace_complete(
                SPAN_PACE, E2E_CATEGORY,
                ready_ns, max(0, wire_start_ns - ready_ns),
                session=sid, pic=display_index,
            )
            if frame is None:
                # Shed by degradation: reliable commit, zero bands.
                # Counts as a deadline miss — the viewer never saw it.
                await sender.send(
                    encode_message(
                        MSG_PIC_DONE, seq,
                        {"pic": display_index, "bands": 0,
                         "rows": mb_height, "shed": True,
                         "ts": time.monotonic_ns()},
                    ),
                    droppable=False, seq=seq,
                )
                seq += 1
                sent_pics += 1
                if tracker is not None:
                    tracker.observe(shed=True)
                if (
                    self.stats_push_pictures
                    and sent_pics % self.stats_push_pictures == 0
                ):
                    seq = await self._push_stats(
                        sender, seq, sid, display_index, tracker
                    )
                continue
            bands = 0
            for row in range(mb_height):
                ok = await sender.send(
                    encode_message(
                        MSG_SLICE, seq,
                        {"pic": display_index, "row": row,
                         "ts": time.monotonic_ns()},
                        band_bytes(frame, row),
                    ),
                    droppable=True, seq=seq,
                )
                seq += 1
                if ok:
                    bands += 1
            await sender.send(
                encode_message(
                    MSG_PIC_DONE, seq,
                    {"pic": display_index, "bands": bands,
                     "rows": mb_height, "ts": time.monotonic_ns()},
                ),
                droppable=False, seq=seq,
            )
            seq += 1
            sent_pics += 1
            trace_complete(
                SPAN_WIRE, E2E_CATEGORY,
                wire_start_ns, max(0, time.monotonic_ns() - wire_start_ns),
                session=sid, pic=display_index, bands=bands,
            )
            metrics().counter("net.pictures.sent").inc()
            if (
                self.stats_push_pictures
                and sent_pics % self.stats_push_pictures == 0
            ):
                seq = await self._push_stats(
                    sender, seq, sid, display_index, tracker
                )
        await sender.flush()
        await sender.send(
            encode_message(
                MSG_BYE, seq,
                {"pictures": sent_pics,
                 "dropped_messages": sender.stats.dropped},
            ),
            droppable=False, seq=seq,
        )

    async def _push_stats(self, sender, seq, sid, pic, tracker) -> int:
        """Push one server->client STATS frame (live SLO + metrics)."""
        snapshot = metrics().snapshot()
        digest = {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name.startswith("net.")
        }
        await sender.send(
            encode_message(
                MSG_STATS, seq,
                {
                    "src": "server",
                    "session": sid,
                    "pic": pic,
                    "slo": tracker.snapshot() if tracker else None,
                    "metrics": digest,
                },
            ),
            droppable=False, seq=seq,
        )
        metrics().counter("net.stats.pushed").inc()
        return seq + 1

    async def _read_stats(self, reader, record, tracker=None) -> None:
        """Drain client STATS receipts until EOF, feeding the SLO."""
        sid = record.get("session")
        slo_dumped = False
        while True:
            msg = await read_message(reader)
            if msg is None:
                return
            if msg.type == MSG_STATS:
                record["stats"].append(msg.header)
                if tracker is None:
                    continue
                hdr = msg.header
                concealed = hdr.get("concealed_temporal", 0) + hdr.get(
                    "concealed_spatial", 0
                )
                tracker.observe(
                    late_s=max(0.0, hdr.get("late_ms", 0.0)) / 1e3,
                    concealed_rows=concealed,
                    rows=hdr.get("rows", 0),
                )
                if tracker.burned_out and not slo_dumped and sid:
                    slo_dumped = True
                    self.service.flight.record(
                        sid, "slo.burnout",
                        breaches=tracker.breaches(),
                        burn_rate=tracker.burn_rate,
                    )
                    self.service.flight_dump(sid, "slo-burnout")

    # ------------------------------------------------------------------
    def report(self) -> dict:
        service = self._service_report or self.service.report()
        concealed = sum(
            s.get("concealed_temporal", 0) + s.get("concealed_spatial", 0)
            for c in self.connections
            for s in c["stats"]
        )
        return {
            "fps": self.fps,
            "link_bps": self.link_bps,
            "streams": sorted(self.streams),
            "connections": self.connections,
            "client_concealed_slices": concealed,
            "slo_policy": self.slo_policy.to_json(),
            "metrics_port": self.metrics_port,
            "flight_dumps": list(self.service.flight_dumps),
            "service": service,
        }
