"""Scan-built stream index: the data structure the scan process makes.

The paper's scan process reads the stream, finds start codes, and
builds the task queues — GOP tasks for the coarse-grained decoder,
picture/slice tasks for the fine-grained one — *without decoding*
(Section 5.1, Table 2).  :func:`build_index` is that operation: a
single pass over the bytes locating every sequence / GOP / picture /
slice boundary.  Picture headers (a few bytes each) are additionally
parsed for the temporal reference and picture type; the paper notes
the scan process can read the type field to construct closed tasks.

Byte counts recorded here feed the scan-rate model (Table 2) and the
memory model (Figs. 8-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitstream import (
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_END_CODE,
    SEQUENCE_HEADER_CODE,
    find_start_codes,
)
from repro.bitstream.emulation import unescape_payload
from repro.bitstream.reader import BitReader
from repro.mpeg2.constants import PictureType, mb_ceil
from repro.mpeg2.headers import GopHeader, PictureHeader, SequenceHeader


class StreamIndexError(Exception):
    """Raised on streams whose layering is malformed."""


@dataclass
class SliceIndex:
    """One slice: vertical position + wire byte range of its payload."""

    vertical_position: int
    payload_start: int
    payload_end: int

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire including the 4-byte start code."""
        return (self.payload_end - self.payload_start) + 4


@dataclass
class PictureIndex:
    """One picture: header info + its slices."""

    picture_type: PictureType
    temporal_reference: int
    forward_f_code: int
    backward_f_code: int
    alternate_scan: bool
    header_payload_start: int
    header_payload_end: int
    slices: list[SliceIndex] = field(default_factory=list)

    @property
    def start_offset(self) -> int:
        """Wire offset of the picture start code."""
        return self.header_payload_start - 4

    @property
    def end_offset(self) -> int:
        return self.slices[-1].payload_end if self.slices else self.header_payload_end

    @property
    def wire_bytes(self) -> int:
        return self.end_offset - self.start_offset

    def header(self) -> PictureHeader:
        return PictureHeader(
            temporal_reference=self.temporal_reference,
            picture_type=self.picture_type,
            forward_f_code=self.forward_f_code,
            backward_f_code=self.backward_f_code,
            alternate_scan=self.alternate_scan,
        )


@dataclass
class GopIndex:
    """One group of pictures: header flags + its pictures."""

    closed_gop: bool
    broken_link: bool
    header_payload_start: int
    header_payload_end: int
    pictures: list[PictureIndex] = field(default_factory=list)

    @property
    def start_offset(self) -> int:
        return self.header_payload_start - 4

    @property
    def end_offset(self) -> int:
        return self.pictures[-1].end_offset if self.pictures else self.header_payload_end

    @property
    def wire_bytes(self) -> int:
        return self.end_offset - self.start_offset

    def display_order(self) -> list[int]:
        """Positions (coding order) sorted by temporal reference."""
        return sorted(
            range(len(self.pictures)),
            key=lambda i: self.pictures[i].temporal_reference,
        )

    def display_ranks(self) -> list[int]:
        """Display rank of each coding position (inverse of display_order)."""
        ranks = [0] * len(self.pictures)
        for rank, pos in enumerate(self.display_order()):
            ranks[pos] = rank
        return ranks

    def reference_positions(self, coding_position: int) -> list[int]:
        """Coding positions of the pictures ``coding_position`` references.

        The standard two-slot reference rule over coding order: a P
        references the previous reference picture; a B references the
        previous two (forward first, backward second).  This is the
        index-level twin of ``GopProfile.reference_positions`` — the
        scan product the 2-D picture/slice task queue is built from
        (paper Section 5.2: the scan process reads picture types to
        construct dependency-closed tasks).
        """
        if not 0 <= coding_position < len(self.pictures):
            raise IndexError(
                f"coding position {coding_position} out of range"
            )
        ref_old: int | None = None
        ref_new: int | None = None
        for pos, pic in enumerate(self.pictures):
            if pos == coding_position:
                if pic.picture_type is PictureType.P:
                    return [r for r in (ref_new,) if r is not None]
                if pic.picture_type is PictureType.B:
                    return [r for r in (ref_old, ref_new) if r is not None]
                return []
            if pic.picture_type.is_reference:
                ref_old, ref_new = ref_new, pos
        raise IndexError(f"coding position {coding_position} out of range")


@dataclass
class StreamIndex:
    """The complete scan product for one coded video sequence."""

    sequence_header: SequenceHeader
    gops: list[GopIndex]
    total_bytes: int

    @property
    def picture_count(self) -> int:
        return sum(len(g.pictures) for g in self.gops)

    @property
    def slice_count(self) -> int:
        return sum(len(p.slices) for g in self.gops for p in g.pictures)

    @property
    def slices_per_picture(self) -> int:
        """Slices in the first picture (uniform in our streams)."""
        return len(self.gops[0].pictures[0].slices)

    @property
    def mb_width(self) -> int:
        return mb_ceil(self.sequence_header.width)

    @property
    def mb_height(self) -> int:
        return mb_ceil(self.sequence_header.height)

    # ------------------------------------------------------------------
    # Random access: byte offsets <-> (GOP, picture), join points
    # ------------------------------------------------------------------
    def gop_display_base(self, gop: int) -> int:
        """Display index of the first picture of GOP ``gop``.

        Closed GOPs partition display order into contiguous blocks, so
        GOP ``g`` owns display indices ``[base, base + len(pictures))``.
        """
        if not 0 <= gop < len(self.gops):
            raise StreamIndexError(f"GOP {gop} out of range (stream has {len(self.gops)})")
        return sum(len(g.pictures) for g in self.gops[:gop])

    def locate_offset(self, offset: int) -> tuple[int, int]:
        """Map a byte offset to the ``(gop, coding_position)`` covering it.

        ``offset`` may land anywhere inside a GOP's wire range — a GOP
        or picture header, a slice payload — and resolves to the GOP
        that contains it and the coding position of the picture whose
        bytes cover it (position 0 when the offset falls in the GOP
        header itself).  Offsets before the first GOP resolve to
        ``(0, 0)``; offsets at or past ``total_bytes`` raise.
        """
        if offset < 0 or offset >= self.total_bytes:
            raise StreamIndexError(
                f"offset {offset} outside stream of {self.total_bytes} bytes"
            )
        gop = 0
        for i, g in enumerate(self.gops):
            if offset < g.start_offset:
                break
            gop = i
        g = self.gops[gop]
        pos = 0
        for i, p in enumerate(g.pictures):
            if offset < p.start_offset:
                break
            pos = i
        return gop, pos

    def gop_for_display_index(self, display_index: int) -> int:
        """GOP number owning display index ``display_index``."""
        if not 0 <= display_index < self.picture_count:
            raise StreamIndexError(
                f"display index {display_index} outside stream of "
                f"{self.picture_count} pictures"
            )
        base = 0
        for i, g in enumerate(self.gops):
            if display_index < base + len(g.pictures):
                return i
            base += len(g.pictures)
        raise StreamIndexError(f"display index {display_index} unmapped")

    def join_point(self, position: int) -> int:
        """Earliest closed GOP at or after GOP number ``position``.

        This is the admission rule for mid-stream join and seek: a
        session may only enter the stream at a closed GOP because no
        coded state crosses a closed-GOP boundary (paper Section 5.1),
        so frames decoded from the join point are bit-identical to the
        linear decode.  Raises :class:`StreamIndexError` when
        ``position`` is past EOF or no closed GOP remains.
        """
        if position < 0 or position >= len(self.gops):
            raise StreamIndexError(
                f"join point {position} past EOF (stream has {len(self.gops)} GOPs)"
            )
        for g in range(position, len(self.gops)):
            if self.gops[g].closed_gop:
                return g
        raise StreamIndexError(
            f"no closed GOP at or after GOP {position}; cannot join"
        )


# ----------------------------------------------------------------------
# GOP byte-range extraction (scan products for process-level workers)
# ----------------------------------------------------------------------
def gop_byte_ranges(index: StreamIndex) -> list[tuple[int, int]]:
    """Wire byte range ``[start, end)`` of every GOP, start code included.

    This is the task list the paper's scan process hands to GOP-level
    workers: each range is a self-contained unit of coded bytes (GOP
    header + pictures + slices) that one worker decodes independently.
    Ranges are contiguous and non-overlapping in stream order.
    """
    return [(g.start_offset, g.end_offset) for g in index.gops]


def sequence_prefix(data: bytes, index: StreamIndex) -> bytes:
    """The stream's leading bytes up to the first GOP start code.

    Contains the sequence header (dimensions, frame rate, bit rate) —
    the global state every worker needs before it can decode *any* GOP.
    Prepending this prefix to a GOP's byte range yields a stand-alone
    decodable stream (see :func:`gop_substream`).
    """
    if not index.gops:
        raise StreamIndexError("stream contains no GOPs")
    return data[: index.gops[0].start_offset]


def gop_substream(data: bytes, index: StreamIndex, gop: int) -> bytes:
    """A stand-alone stream holding only GOP ``gop``: prefix + GOP bytes.

    The result is a valid input for :class:`repro.mpeg2.decoder.
    SequenceDecoder` / :func:`build_index`: sequence header first, one
    GOP, no trailing data.  Closed GOPs decode from it bit-identically
    to their in-stream decode because no coded state crosses a closed
    GOP boundary — this is exactly the paper's Section 5.1 argument for
    GOP-grain tasks, realised at the byte level.
    """
    g = index.gops[gop]
    return sequence_prefix(data, index) + data[g.start_offset : g.end_offset]


def build_index(data: bytes) -> StreamIndex:
    """Single-pass scan of ``data`` into a :class:`StreamIndex`.

    This is the computational content of the paper's scan process; its
    cost model charges cycles per byte scanned (Table 2).
    """
    hits = find_start_codes(data)
    if not hits or hits[0].code != SEQUENCE_HEADER_CODE:
        raise StreamIndexError("stream does not begin with a sequence header")

    seq: SequenceHeader | None = None
    gops: list[GopIndex] = []
    current_gop: GopIndex | None = None
    current_pic: PictureIndex | None = None

    for i, hit in enumerate(hits):
        start = hit.payload_offset
        end = hits[i + 1].offset if i + 1 < len(hits) else len(data)
        if hit.code == SEQUENCE_HEADER_CODE:
            if seq is not None:
                raise StreamIndexError("repeated sequence header unsupported")
            seq = SequenceHeader.read(BitReader(unescape_payload(data[start:end])))
        elif hit.code == GROUP_START_CODE:
            if seq is None:
                raise StreamIndexError("GOP before sequence header")
            gh = GopHeader.read(
                BitReader(unescape_payload(data[start:end])), seq.frame_rate
            )
            current_gop = GopIndex(
                closed_gop=gh.closed_gop,
                broken_link=gh.broken_link,
                header_payload_start=start,
                header_payload_end=end,
            )
            gops.append(current_gop)
            current_pic = None
        elif hit.code == PICTURE_START_CODE:
            if current_gop is None:
                raise StreamIndexError("picture outside any GOP")
            ph = PictureHeader.read(BitReader(unescape_payload(data[start:end])))
            current_pic = PictureIndex(
                picture_type=ph.picture_type,
                temporal_reference=ph.temporal_reference,
                forward_f_code=ph.forward_f_code,
                backward_f_code=ph.backward_f_code,
                alternate_scan=ph.alternate_scan,
                header_payload_start=start,
                header_payload_end=end,
            )
            current_gop.pictures.append(current_pic)
        elif hit.is_slice:
            if current_pic is None:
                raise StreamIndexError("slice outside any picture")
            current_pic.slices.append(
                SliceIndex(
                    vertical_position=hit.code,
                    payload_start=start,
                    payload_end=end,
                )
            )
        elif hit.code == SEQUENCE_END_CODE:
            break
        else:
            raise StreamIndexError(f"unexpected start code 0x{hit.code:02X}")

    if seq is None or not gops:
        raise StreamIndexError("stream contains no GOPs")
    return StreamIndex(sequence_header=seq, gops=gops, total_bytes=len(data))
