"""Table-driven variable-length (Huffman) encode/decode engine.

Decoding uses the standard fixed-peek technique: peek ``max_len`` bits,
look the value up in a dense table mapping every possible ``max_len``
prefix to its symbol and code length, then consume only the code
length.  This mirrors how the MPEG Software Simulation Group decoder
(and every production decoder) implements VLC decode, and it is O(1)
per symbol.

The dense table is stored as two parallel flat arrays — a symbol list
and a ``bytes`` length table (length 0 marking invalid prefixes) —
rather than a list of ``(symbol, length)`` tuples: the hot decode path
then does two flat indexed loads instead of a tuple unpack per symbol.
:meth:`VLCTable.decode_fast` exposes the raw window lookup for parsers
that manage their own bit cursor (the phase-1 batched parser).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.bitstream import BitReader, BitWriter

Symbol = Hashable


class VLCError(Exception):
    """Raised when the bitstream contains an invalid codeword."""


class VLCTable:
    """A prefix-free variable-length code over arbitrary symbols.

    Parameters
    ----------
    codes:
        Mapping from symbol to codeword bit string (e.g. ``"0010"``).
        Must be prefix-free; validated at construction.
    name:
        Used in error messages.
    """

    def __init__(self, codes: Mapping[Symbol, str], name: str = "vlc") -> None:
        if not codes:
            raise ValueError("empty codebook")
        self.name = name
        self._encode: dict[Symbol, tuple[int, int]] = {}
        for sym, bits in codes.items():
            if not bits or set(bits) - {"0", "1"}:
                raise ValueError(f"{name}: bad codeword {bits!r} for {sym!r}")
            self._encode[sym] = (int(bits, 2), len(bits))

        self.max_len = max(length for _, length in self._encode.values())
        if self.max_len > 20:
            # The dense decode table is 2^max_len entries; MPEG's own
            # tables stop at 17 bits, ours are length-limited to 16.
            raise ValueError(f"{name}: codewords longer than 20 bits unsupported")

        # Dense decode table over all max_len-bit prefixes, stored as
        # two parallel flat arrays: symbol per window and code length
        # per window (0 = invalid prefix).  Two indexed loads per
        # symbol, no tuple unpacking in the hot loop.
        size = 1 << self.max_len
        self._dec_syms: list[Symbol | None] = [None] * size
        dec_lens = bytearray(size)
        for sym, (value, length) in self._encode.items():
            shift = self.max_len - length
            base = value << shift
            for fill in range(1 << shift):
                slot = base | fill
                if dec_lens[slot]:
                    other = self._dec_syms[slot]
                    raise ValueError(
                        f"{name}: code for {sym!r} collides with {other!r} "
                        "(codebook is not prefix-free)"
                    )
                self._dec_syms[slot] = sym
                dec_lens[slot] = length
        self._dec_lens: bytes = bytes(dec_lens)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._encode)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._encode

    def symbols(self) -> list[Symbol]:
        return list(self._encode)

    def code_length(self, symbol: Symbol) -> int:
        return self._encode[symbol][1]

    def codeword(self, symbol: Symbol) -> str:
        value, length = self._encode[symbol]
        return format(value, f"0{length}b")

    # ------------------------------------------------------------------
    def encode(self, writer: BitWriter, symbol: Symbol) -> int:
        """Emit the codeword for ``symbol``; returns its bit length."""
        try:
            value, length = self._encode[symbol]
        except KeyError:
            raise VLCError(f"{self.name}: symbol {symbol!r} not in codebook") from None
        writer.write_bits(value, length)
        return length

    def decode(self, reader: BitReader) -> Symbol:
        """Consume one codeword from ``reader`` and return its symbol."""
        window = reader.peek_bits(self.max_len)
        length = self._dec_lens[window]
        if length == 0:
            raise VLCError(
                f"{self.name}: invalid codeword at bit {reader.bit_position} "
                f"(window {window:0{self.max_len}b})"
            )
        if length > reader.bits_remaining:
            raise VLCError(f"{self.name}: truncated codeword at end of stream")
        reader.skip_bits(length)
        return self._dec_syms[window]

    def decode_fast(self, window: int) -> tuple[Symbol | None, int]:
        """Raw window lookup: ``(symbol, code_length)`` for a peeked window.

        ``window`` must be exactly :attr:`max_len` bits (zero-padded
        past the end of the stream, as :meth:`BitReader.peek_bits`
        produces).  A returned length of 0 means the prefix is invalid;
        the caller is responsible for bounds-checking consumption
        against its own bit cursor.  This is the entry point the
        phase-1 batched parser uses to skip per-call overhead.
        """
        return self._dec_syms[window], self._dec_lens[window]

    def mean_code_length(self) -> float:
        """Unweighted mean codeword length (diagnostic)."""
        return sum(l for _, l in self._encode.values()) / len(self._encode)
