"""Procedural panning-scene generator (the flower-garden stand-in).

The original test clip is a slow horizontal camera pan across a
textured garden with sky above — which matters for the codec because
(a) panning gives motion estimation coherent non-zero vectors,
(b) texture gives the DCT mid-frequency energy to code, and
(c) the sky gives large low-energy regions that quantize to zero and
produce skipped macroblocks.  The generator reproduces those three
properties with a deterministic band-limited texture sampled under a
moving window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpeg2.frame import Frame


@dataclass
class SyntheticVideo:
    """A deterministic panning scene yielding :class:`Frame` objects.

    Parameters
    ----------
    width, height:
        Display size of generated frames.
    pan_per_frame:
        Horizontal camera motion in luma pixels per frame (may be
        fractional; sub-pixel pan exercises half-pel estimation).
    seed:
        Seeds the texture phases; same seed -> identical video.
    """

    width: int
    height: int
    pan_per_frame: float = 2.0
    tilt_per_frame: float = 0.25
    seed: int = 0
    #: Std-dev of per-frame luma grain.  Plane waves alone are fully
    #: predictable by half-pel ME, which would leave P/B residuals
    #: unrealistically empty; film-grain noise restores the residual
    #: energy (and thus bit rate) of real camera material.
    noise_amplitude: float = 5.0

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 16:
            raise ValueError("frames must be at least 16x16")
        rng = np.random.default_rng(self.seed)
        # Band-limited texture: a handful of plane waves with random
        # orientation and phase.  Wavelengths span 8..64 pixels so both
        # low and mid DCT frequencies receive energy.
        n_waves = 8
        wavelengths = rng.uniform(8.0, 64.0, size=n_waves)
        angles = rng.uniform(0.0, np.pi, size=n_waves)
        self._kx = 2.0 * np.pi * np.cos(angles) / wavelengths
        self._ky = 2.0 * np.pi * np.sin(angles) / wavelengths
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=n_waves)
        self._amp = rng.uniform(8.0, 22.0, size=n_waves)
        # Chroma uses two of the waves with its own phases.
        self._cphase = rng.uniform(0.0, 2.0 * np.pi, size=2)

    # ------------------------------------------------------------------
    def _texture(self, xs: np.ndarray, ys: np.ndarray, waves: slice) -> np.ndarray:
        """Evaluate the plane-wave texture on an (ys, xs) grid."""
        acc = np.zeros((ys.size, xs.size), dtype=np.float64)
        for kx, ky, ph, amp in zip(
            self._kx[waves], self._ky[waves], self._phase[waves], self._amp[waves]
        ):
            acc += amp * np.sin(kx * xs[None, :] + ky * ys[:, None] + ph)
        return acc

    def luma(self, index: int) -> np.ndarray:
        """The luma plane of frame ``index`` (uint8, display size)."""
        x0 = self.pan_per_frame * index
        y0 = self.tilt_per_frame * index
        xs = np.arange(self.width, dtype=np.float64) + x0
        ys = np.arange(self.height, dtype=np.float64) + y0
        tex = self._texture(xs, ys, slice(0, len(self._kx)))
        # Sky band: the top ~35% is flat with a soft vertical gradient,
        # fading into full texture below (garden region).
        rows = np.arange(self.height, dtype=np.float64)[:, None]
        horizon = 0.35 * self.height
        garden = 1.0 / (1.0 + np.exp(-(rows - horizon) / 6.0))
        sky = 180.0 - 30.0 * rows / max(self.height, 1)
        plane = sky * (1.0 - garden) + (128.0 + tex) * garden
        if self.noise_amplitude > 0.0:
            grain_rng = np.random.default_rng((self.seed, index))
            plane = plane + self.noise_amplitude * grain_rng.standard_normal(
                plane.shape
            ) * (0.3 + 0.7 * garden)
        return np.clip(plane, 16, 235).astype(np.uint8)

    def chroma(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Cb/Cr planes (uint8, half display size each way)."""
        cw, ch = self.width // 2, self.height // 2
        x0 = self.pan_per_frame * index / 2.0
        y0 = self.tilt_per_frame * index / 2.0
        xs = np.arange(cw, dtype=np.float64) + x0
        ys = np.arange(ch, dtype=np.float64) + y0
        base = self._texture(xs, ys, slice(0, 2))
        cb = np.clip(118.0 + 0.6 * base + 10 * np.sin(self._cphase[0]), 16, 240)
        cr = np.clip(138.0 + 0.6 * base + 10 * np.sin(self._cphase[1]), 16, 240)
        return cb.astype(np.uint8), cr.astype(np.uint8)

    def frame(self, index: int) -> Frame:
        """Frame ``index`` as a padded 4:2:0 :class:`Frame`."""
        y = self.luma(index)
        cb, cr = self.chroma(index)
        f = Frame.from_planes(y, cb, cr)
        f.temporal_reference = index
        return f

    def frames(self, count: int, start: int = 0) -> list[Frame]:
        return [self.frame(start + i) for i in range(count)]
