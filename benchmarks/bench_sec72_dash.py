"""Section 7.2 — distributed shared memory (Stanford DASH).

Paper: on DASH, for 704x480 pictures, the improved slice version runs
1.8x / 3.4x / 5.2x faster on 8 / 16 / 32 processors than on 4 (one
cluster); the GOP version speeds up a little less; remote-miss latency
— not synchronisation — is the impediment, so data placement (local
GOP queues + stealing) should help.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode
from repro.smp import dash

from benchmarks.conftest import PAPER_CASES

PAPER_DASH = {8: 1.8, 16: 3.4, 32: 5.2}
PROC_SWEEP = [4, 8, 16, 32]
PICTURES = 1092  # 84 GOPs: keeps 32 GOP-level workers busy


def test_sec72_dash_speedups(benchmark, env, record):
    res = "704x480" if "704x480" in PAPER_CASES else next(iter(PAPER_CASES))
    profile = env.profile(res, 13, pictures=PICTURES)

    def run():
        out = {}
        for procs in PROC_SWEEP:
            # The paper's DASH counts are decode processors; scan and
            # display ride on two extra CPUs (cluster structure follows
            # the decode processors).
            machine = dash(procs + 2)
            workers = procs
            out[("improved", procs)] = env.run_slice(
                profile, workers, SliceMode.IMPROVED, machine=machine
            ).pictures_per_second
            out[("gop", procs)] = env.run_gop(
                profile, workers, machine=machine
            ).pictures_per_second
            # Data placement: the paper's proposed per-memory task
            # queues with round-robin GOP placement + work stealing,
            # implemented structurally in PlacedGopDecoder.
            from repro.parallel import PlacedGopDecoder, ParallelConfig

            placed = PlacedGopDecoder(profile).run(
                ParallelConfig(workers=workers, machine=machine)
            )
            out[("gop+placement", procs)] = placed.pictures_per_second
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["version"]
        + [f"{p}p" for p in PROC_SWEEP[1:]]
        + [f"paper {p}p" for p in PROC_SWEEP[1:]],
        title=f"Section 7.2: DASH speedup over 4 processors, {res}",
    )
    for version in ("improved", "gop", "gop+placement"):
        speedups = [rates[(version, p)] / rates[(version, 4)] for p in PROC_SWEEP[1:]]
        paper = [
            PAPER_DASH[p] if version == "improved" else "-" for p in PROC_SWEEP[1:]
        ]
        table.add_row(version, *[round(s, 2) for s in speedups], *paper)
    record(table.render())

    imp = {p: rates[("improved", p)] / rates[("improved", 4)] for p in PROC_SWEEP[1:]}
    for procs, paper in PAPER_DASH.items():
        assert 0.7 * paper < imp[procs] < 1.4 * paper, (
            f"{procs}p: {imp[procs]:.2f} vs paper {paper}"
        )
    # Sub-linear on DASH: well below the UMA near-linear curve.
    assert imp[32] < 7.0
    # Placement recovers performance (the paper's recommendation).
    for procs in PROC_SWEEP[1:]:
        assert rates[("gop+placement", procs)] > rates[("gop", procs)]
