"""Result analysis and text rendering for the experiment harness.

Each benchmark regenerates one of the paper's tables or figures and
prints it with the helpers here: aligned text tables for tables,
ASCII series for figures, and paper-vs-measured comparison rows for
EXPERIMENTS.md.
"""

from repro.analysis.report import (
    TextTable,
    ascii_series,
    comparison_table,
    doubling_ratios,
    format_bytes,
)
from repro.analysis.locality import (
    amdahl_speedup,
    spatial_locality_score,
    working_set_knee,
)

__all__ = [
    "TextTable",
    "ascii_series",
    "comparison_table",
    "doubling_ratios",
    "format_bytes",
    "amdahl_speedup",
    "spatial_locality_score",
    "working_set_knee",
]
