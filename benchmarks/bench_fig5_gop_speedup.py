"""Figure 5 — GOP-version speedup vs worker count.

Paper: speedup (pictures/sec with P workers over 1 worker) is *almost
linear* in all cases — every resolution and every GOP size {4, 13,
16, 31}.  We sweep P over 1..14 for each (resolution, GOP size) cell
and check near-linearity.
"""

from __future__ import annotations

from repro.analysis import TextTable, ascii_series
from repro.parallel.stats import speedup_curve
from repro.video.streams import PAPER_GOP_SIZES

from benchmarks.conftest import BENCH_PICTURES, PAPER_CASES

SWEEP = [1, 2, 4, 6, 8, 10, 12, 14]


def test_fig5_gop_speedup(benchmark, env, record):
    def run():
        curves = {}
        for res in PAPER_CASES:
            for gop_size in PAPER_GOP_SIZES:
                # Keep enough GOPs that 14 workers stay busy.
                pictures = max(BENCH_PICTURES, gop_size * 14 * 2)
                profile = env.profile_with_gop_size(res, gop_size, pictures)
                curves[(res, gop_size)] = speedup_curve(
                    lambda p: env.run_gop(profile, p), SWEEP
                )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case"] + [f"P={p}" for p in SWEEP],
        title="Figure 5: GOP-version speedup vs workers (paper: near-linear)",
    )
    for (res, gop_size), curve in curves.items():
        table.add_row(
            f"{res}/gop{gop_size}", *[round(curve[p], 2) for p in SWEEP]
        )
    chart = ascii_series(
        [(p, curves[next(iter(curves))][p]) for p in SWEEP],
        label=f"speedup, {next(iter(curves))[0]}/gop{next(iter(curves))[1]}",
    )
    record(table.render() + "\n\n" + chart)

    for (res, gop_size), curve in curves.items():
        # Near-linear: >= 75% efficiency at P=14, monotone throughout.
        values = [curve[p] for p in SWEEP]
        assert values == sorted(values), f"{res}/gop{gop_size} not monotone"
        assert curve[14] > 0.75 * 14, (
            f"{res}/gop{gop_size}: speedup {curve[14]:.1f} at P=14"
        )
