"""Shared fixtures: small encoded streams reused across test modules.

Encoding is the slow part of the suite, so streams are built once per
session at small sizes that still exercise every syntax element
(I/P/B pictures, skips, multiple slices and GOPs).
"""

from __future__ import annotations

import pytest

from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.video.synthetic import SyntheticVideo


@pytest.fixture(scope="session")
def small_video():
    """13 frames of 64x48 synthetic video (display order)."""
    return SyntheticVideo(width=64, height=48, seed=7).frames(13)


@pytest.fixture(scope="session")
def small_stream(small_video):
    """One closed 13-picture GOP at 64x48."""
    return encode_sequence(small_video, EncoderConfig(gop_size=13, qscale_code=3))


@pytest.fixture(scope="session")
def two_gop_video():
    """8 frames of 48x32 video: two 4-picture GOPs."""
    return SyntheticVideo(width=48, height=32, seed=11).frames(8)


@pytest.fixture(scope="session")
def two_gop_stream(two_gop_video):
    return encode_sequence(two_gop_video, EncoderConfig(gop_size=4, qscale_code=3))


@pytest.fixture(scope="session")
def medium_video():
    """26 frames of 96x64 video: two 13-picture GOPs (parallel tests)."""
    return SyntheticVideo(width=96, height=64, seed=3).frames(26)


@pytest.fixture(scope="session")
def medium_stream(medium_video):
    return encode_sequence(medium_video, EncoderConfig(gop_size=13, qscale_code=3))
