"""Bit-exact parity of the real-process slice decoder vs the scalar one.

The slice-level mp decoder (:mod:`repro.parallel.mp_slice`) must be
indistinguishable from the sequential scalar oracle in every
observable — decoded pixels, display order, aggregate work counters,
and ``resilient=True`` concealment — across **both** barrier policies
(``simple``: barrier after every picture; ``improved``: barrier only
after reference pictures) and worker counts 0 (in-process fallback),
1, 2 and 4, on the full committed golden-vector corpus.

Slices of one picture reconstruct concurrently into the same
shared-memory frame; these tests are what pins that the row-disjoint
in-place writes, the published-reference availability rule, and the
static duplicate resolution together reproduce the sequential decode
bit for bit.
"""

from __future__ import annotations

import pytest

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import DecodeError, SequenceDecoder
from repro.mpeg2.index import build_index
from repro.parallel.mp_slice import (
    MPSliceDecoder,
    decode_slice_parallel,
    scan_slice_tasks,
)

from tests.mpeg2.test_batched_parity import assert_frames_identical
from tests.mpeg2.test_golden_vectors import CORPUS, VECTOR_NAMES, load_vector
from tests.mpeg2.test_resilience import corrupt_slice

#: Both synchronisation policies, on every stream.
MODES = ("simple", "improved")

#: Worker counts from the issue: the in-process fallback plus real
#: 1/2/4-process pools.
WORKER_COUNTS = (0, 1, 2, 4)


@pytest.fixture(scope="module")
def scalar_reference(golden):
    """Scalar-oracle frames + counters for every golden vector.

    Served from the session-scoped ``golden`` cache (tests/conftest.py)
    so this module does not re-decode the corpus the other parity
    suites already decoded.
    """
    ref = {}
    for name in VECTOR_NAMES:
        frames, counters = golden.scalar(name)
        ref[name] = (golden.data(name), frames, counters)
    return ref


def _slice_parallel(data: bytes, workers: int, mode: str, resilient=False):
    counters = WorkCounters()
    frames = MPSliceDecoder(
        data, workers=workers, mode=mode, resilient=resilient
    ).decode_all(counters)
    return frames, counters


def assert_slice_parity(
    data: bytes, workers: int, mode: str, resilient: bool = False
):
    counters_s = WorkCounters()
    frames_s = SequenceDecoder(
        data, engine="scalar", resilient=resilient
    ).decode_all(counters_s)
    frames_p, counters_p = _slice_parallel(data, workers, mode, resilient)
    assert_frames_identical(frames_s, frames_p)
    assert [f.temporal_reference for f in frames_s] == [
        f.temporal_reference for f in frames_p
    ]
    assert counters_s == counters_p


class TestScanStep:
    """The scan products: coding-order picture plans."""

    def test_plans_cover_every_slice_once(self, medium_stream):
        index = build_index(medium_stream)
        plans = scan_slice_tasks(index)
        assert len(plans) == index.picture_count
        assert sum(len(p.slices) for p in plans) == index.slice_count
        assert [p.order for p in plans] == list(range(len(plans)))

    def test_display_indices_are_a_permutation(self, medium_stream):
        plans = scan_slice_tasks(build_index(medium_stream))
        assert sorted(p.display_index for p in plans) == list(
            range(len(plans))
        )

    def test_dependencies_point_backwards(self, medium_stream):
        plans = scan_slice_tasks(build_index(medium_stream))
        for plan in plans:
            letter = plan.header.picture_type.letter
            assert len(plan.dependencies) == {"I": 0, "P": 1, "B": 2}[letter]
            for dep in plan.dependencies:
                assert dep < plan.order
                assert plans[dep].is_reference

    def test_exactly_one_reconstructor_per_row(self, small_stream):
        for plan in scan_slice_tasks(build_index(small_stream)):
            rows = [
                sl.vertical_position for sl in plan.slices if sl.reconstruct
            ]
            assert sorted(rows) == sorted(set(rows))
            covered = {sl.vertical_position for sl in plan.slices}
            assert set(rows) == covered

    def test_missing_reference_raises_decode_error(self, small_stream):
        # Drop the I picture's plan source: a stream whose first GOP
        # opens with a P picture must be rejected like the scalar path.
        index = build_index(small_stream)
        index.gops[0].pictures.pop(0)
        with pytest.raises(DecodeError, match="without forward reference"):
            scan_slice_tasks(index)

    def test_open_gop_rejected(self, small_stream):
        index = build_index(small_stream)
        index.gops[0].closed_gop = False
        with pytest.raises(DecodeError, match="closed GOPs"):
            scan_slice_tasks(index)


class TestGoldenVectorParity:
    """The issue's matrix: 6 vectors x 2 modes x workers in {0,1,2,4}."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_vector_parity(self, scalar_reference, name, mode, workers):
        data, frames_s, counters_s = scalar_reference[name]
        frames_p, counters_p = _slice_parallel(data, workers, mode)
        assert_frames_identical(frames_s, frames_p)
        assert counters_s == counters_p, (
            f"{name} mode={mode} workers={workers}: counters diverged"
        )

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_vector_digests_pinned(self, scalar_reference, name):
        # Belt and braces: frames also match the committed digests, so
        # this suite fails even if the scalar oracle itself drifts.
        data, _, _ = scalar_reference[name]
        frames = decode_slice_parallel(data, workers=0)
        assert [f.digest() for f in frames] == CORPUS[name]["frame_digests"]


class TestBasicParity:
    @pytest.mark.parametrize("mode", MODES)
    def test_two_gop_stream_real_workers(self, two_gop_stream, mode):
        assert_slice_parity(two_gop_stream, workers=2, mode=mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_medium_stream_inprocess(self, medium_stream, mode):
        assert_slice_parity(medium_stream, workers=0, mode=mode)

    def test_more_workers_than_slices(self, small_stream):
        # Extra workers idle; output unchanged.
        index = build_index(small_stream)
        workers = index.slices_per_picture + 3
        assert_slice_parity(small_stream, workers=workers, mode="improved")

    def test_iter_frames_streams_in_display_order(self, two_gop_stream):
        ref = SequenceDecoder(two_gop_stream).decode_all()
        dec = MPSliceDecoder(two_gop_stream, workers=2, mode="improved")
        got = list(dec.iter_frames())
        assert_frames_identical(ref, got)

    def test_invalid_arguments(self, small_stream):
        with pytest.raises(ValueError):
            MPSliceDecoder(small_stream, mode="bogus")
        with pytest.raises(ValueError, match="workers"):
            MPSliceDecoder(small_stream, workers=-1)


class TestResilientParity:
    """Concealment inside a slice worker == concealment in-sequence."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("workers", (0, 2))
    def test_corrupt_p_slice(self, small_stream, workers, mode):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        counters = WorkCounters()
        SequenceDecoder(data, resilient=True).decode_all(counters)
        assert counters.concealed_slices >= 1
        assert_slice_parity(data, workers, mode, resilient=True)

    def test_corrupt_slice_in_second_gop(self, medium_stream):
        data = corrupt_slice(medium_stream, gop=1, pic=2, sl=1)
        assert_slice_parity(data, workers=2, mode="improved", resilient=True)

    @pytest.mark.parametrize("workers", (0, 2))
    def test_strict_mode_raises_same_family(self, small_stream, workers):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        try:
            SequenceDecoder(data, engine="scalar").decode_all()
            scalar_exc = None
        except Exception as exc:
            scalar_exc = type(exc)
        assert scalar_exc is not None
        with pytest.raises(Exception) as info:
            decode_slice_parallel(data, workers=workers)
        assert not isinstance(info.value, AssertionError)


class TestObservability:
    def test_pool_bytes_and_wall_recorded(self, two_gop_stream):
        dec = MPSliceDecoder(two_gop_stream, workers=2, mode="simple")
        dec.decode_all()
        assert dec.last_pool_bytes > 0
        assert dec.last_wall_seconds > 0
        breakdown = dec.stall_breakdown()
        assert 0.0 <= sum(breakdown.values()) <= 1.0

    def test_improved_mode_reports_zero_barrier(self, medium_stream):
        # By construction the improved policy's only gating reason is
        # reference publication — it must never report barrier stall.
        from repro.obs.stalls import REASON_BARRIER

        dec = MPSliceDecoder(medium_stream, workers=2, mode="improved")
        dec.decode_all()
        assert dec.last_stalls.by_reason().get(REASON_BARRIER, 0.0) == 0.0

    def test_inprocess_allocates_no_pool(self, small_stream):
        dec = MPSliceDecoder(small_stream, workers=0)
        dec.decode_all()
        assert dec.last_pool_bytes == 0
