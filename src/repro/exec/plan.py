"""Planners: lower a scan index into a typed :class:`TaskGraph`.

Two grains, mirroring the paper's decomposition study:

* :func:`plan_gop_graph` — the coarse grain.  Closed GOPs share no
  coded state, so each GOP is an independent ``parse -> reconstruct ->
  publish`` chain with **no cross-GOP edges**: maximum parallelism,
  synchronization only at the display merge.
* :func:`plan_slice_graph` — the fine grain.  Each *picture* gets a
  ``parse`` node and a ``reconstruct`` node; reference pictures (I/P)
  additionally get a ``publish`` node.  A reconstruct depends on its
  own parse **and on the publish of every reference picture it
  predicts from** (the paper's improved barrier: wait only for the
  refs you read, not for every earlier picture).  B-picture
  reconstructs fan in from both the forward and backward reference
  publishes and publish nothing themselves — they are the leaves that
  make slice-grain parallelism wide.

The graphs carry stream coordinates, not byte payloads: they are the
executor's accounting spine (dependency safety + task conservation),
while the actual pixel work runs through the worker-pool backend.
"""

from __future__ import annotations

from repro.exec.graph import TaskGraph, TaskNode
from repro.mpeg2.index import StreamIndex


def plan_gop_graph(index: StreamIndex, stream: int = 0) -> TaskGraph:
    """GOP-grain plan: one independent chain per closed GOP."""
    graph = TaskGraph()
    for gi, _gop in enumerate(index.gops):
        parse = graph.add(
            TaskNode(tid=f"g{gi}.parse", kind="parse", stream=stream, gop=gi)
        )
        recon = graph.add(
            TaskNode(
                tid=f"g{gi}.reconstruct",
                kind="reconstruct",
                stream=stream,
                gop=gi,
                deps=(parse.tid,),
            )
        )
        graph.add(
            TaskNode(
                tid=f"g{gi}.publish",
                kind="publish",
                stream=stream,
                gop=gi,
                deps=(recon.tid,),
            )
        )
    return graph


def plan_slice_graph(index: StreamIndex, stream: int = 0) -> TaskGraph:
    """Slice-grain plan: per-picture nodes with ref-publish edges.

    Pictures are walked in coding (stream) order per GOP.  ``fwd`` and
    ``bwd`` track the publish tids of the two most recent reference
    pictures — exactly the prediction sources the MPEG-2 bitstream
    semantics allow inside a closed GOP — so each reconstruct's dep
    tuple *is* the improved barrier of the paper: P waits only on its
    forward reference's publish, B on both references', I on nothing
    but its own parse.
    """
    graph = TaskGraph()
    for gi, gop in enumerate(index.gops):
        fwd: str | None = None  # publish tid of the older reference
        bwd: str | None = None  # publish tid of the newer reference
        for order, pic in enumerate(gop.pictures):
            parse = graph.add(
                TaskNode(
                    tid=f"g{gi}.p{order}.parse",
                    kind="parse",
                    stream=stream,
                    gop=gi,
                    order=order,
                )
            )
            deps = [parse.tid]
            if pic.picture_type.is_reference:
                # P predicts from the most recent reference; the
                # opening I predicts from nothing.
                if pic.picture_type.name == "P":
                    if bwd is not None:
                        deps.append(bwd)
                recon = graph.add(
                    TaskNode(
                        tid=f"g{gi}.p{order}.reconstruct",
                        kind="reconstruct",
                        stream=stream,
                        gop=gi,
                        order=order,
                        deps=tuple(deps),
                    )
                )
                publish = graph.add(
                    TaskNode(
                        tid=f"g{gi}.p{order}.publish",
                        kind="publish",
                        stream=stream,
                        gop=gi,
                        order=order,
                        deps=(recon.tid,),
                    )
                )
                fwd, bwd = bwd, publish.tid
            else:
                # B predicts from both surrounding references and
                # publishes nothing — nobody waits on a B.
                for ref in (fwd, bwd):
                    if ref is not None:
                        deps.append(ref)
                graph.add(
                    TaskNode(
                        tid=f"g{gi}.p{order}.reconstruct",
                        kind="reconstruct",
                        stream=stream,
                        gop=gi,
                        order=order,
                        deps=tuple(deps),
                    )
                )
    return graph


def plan_graph(index: StreamIndex, grain: str, stream: int = 0) -> TaskGraph:
    """Dispatch on grain name (``gop`` | ``slice``)."""
    if grain == "gop":
        return plan_gop_graph(index, stream)
    if grain == "slice":
        return plan_slice_graph(index, stream)
    raise ValueError(f"unknown grain {grain!r}; expected 'gop' or 'slice'")
