"""Block layer: DC prediction + run/level coding of DCT coefficients.

A coded block is serialised as (intra blocks) a DC size/differential
pair followed by run/level AC codes, or (non-intra blocks) run/level
codes from coefficient 0 — terminated by EOB.  Rare (run, level) pairs
use the escape mechanism: 6-bit run + 12-bit signed level, exactly the
MPEG-2 single-escape format.

All functions work on *scan-ordered* 64-vectors; zig-zag (un)scanning
happens in the macroblock layer.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import BitReader, BitWriter
from repro.bitstream.reader import BitstreamError
from repro.mpeg2.constants import LEVEL_MAX, LEVEL_MIN
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.tables import (
    AC_CODED_PAIRS,
    AC_RUN_LEVEL,
    EOB,
    ESCAPE,
    ESCAPE_LEVEL_BITS,
    ESCAPE_RUN_BITS,
    MAX_DC_SIZE,
    VLCTable,
)
from repro.mpeg2.vlc import VLCError


class BlockSyntaxError(Exception):
    """Raised on impossible coefficient positions or level values."""


# ----------------------------------------------------------------------
# Flattened AC decode tables for the fast block decoder: per max_len
# window, the run (with negative sentinels for the control symbols) and
# magnitude as plain ints — no tuple unpacking per symbol in the hot
# loop.  Invalid windows keep run 0; they are rejected by the length
# table before these are consulted.
# ----------------------------------------------------------------------
_AC_EOB_RUN = -1
_AC_ESCAPE_RUN = -2
_AC_RUNS: list[int] = [0] * (1 << AC_RUN_LEVEL.max_len)
_AC_MAGS: list[int] = [0] * (1 << AC_RUN_LEVEL.max_len)
for _w, _sym in enumerate(AC_RUN_LEVEL._dec_syms):
    if _sym is None:
        continue
    if _sym == EOB:
        _AC_RUNS[_w] = _AC_EOB_RUN
    elif _sym == ESCAPE:
        _AC_RUNS[_w] = _AC_ESCAPE_RUN
    else:
        _AC_RUNS[_w], _AC_MAGS[_w] = _sym
del _w, _sym


# ----------------------------------------------------------------------
# DC differential (intra blocks)
# ----------------------------------------------------------------------
def encode_dc_differential(
    w: BitWriter, dc: int, predictor: int, table: VLCTable
) -> int:
    """Code ``dc - predictor``; returns the new predictor (== dc).

    The magnitude bits follow the standard's convention: positive
    differentials are coded as-is; negative ones as the one's
    complement of the magnitude (so the MSB doubles as a sign flag).
    """
    diff = dc - predictor
    size = abs(diff).bit_length()
    if size > MAX_DC_SIZE:
        raise BlockSyntaxError(f"DC differential {diff} too large")
    table.encode(w, size)
    if size:
        if diff > 0:
            w.write_bits(diff, size)
        else:
            w.write_bits((-diff) ^ ((1 << size) - 1), size)
    return dc


def decode_dc_differential(
    r: BitReader, predictor: int, table: VLCTable, counters: WorkCounters
) -> int:
    """Decode one DC differential and return the reconstructed DC."""
    size = table.decode(r)
    counters.vlc_symbols += 1
    if size == 0:
        return predictor
    raw = r.read_bits(size)
    if raw & (1 << (size - 1)):
        diff = raw
    else:
        diff = -(raw ^ ((1 << size) - 1))
    return predictor + diff


# ----------------------------------------------------------------------
# AC run/level coding
# ----------------------------------------------------------------------
def encode_run_level(w: BitWriter, run: int, level: int) -> None:
    """Emit one (run, level) pair, using the escape when needed."""
    if level == 0:
        raise BlockSyntaxError("level 0 cannot be coded as a run/level pair")
    if not LEVEL_MIN <= level <= LEVEL_MAX:
        raise BlockSyntaxError(f"level {level} outside escape-codable range")
    pair = (run, abs(level))
    if pair in AC_CODED_PAIRS:
        AC_RUN_LEVEL.encode(w, pair)
        w.write_bit(1 if level < 0 else 0)
    else:
        AC_RUN_LEVEL.encode(w, ESCAPE)
        w.write_bits(run, ESCAPE_RUN_BITS)
        w.write_bits(level & ((1 << ESCAPE_LEVEL_BITS) - 1), ESCAPE_LEVEL_BITS)


def encode_block(
    w: BitWriter,
    scanned: np.ndarray,
    *,
    intra: bool,
    dc_table: VLCTable | None = None,
    dc_predictor: int = 0,
) -> int:
    """Serialise one scan-ordered 64-vector of quantized levels.

    Intra blocks code coefficient 0 as a DC differential against
    ``dc_predictor`` (returns the new predictor); non-intra blocks
    code all 64 coefficients as run/levels.  Returns the new DC
    predictor for intra blocks, 0 otherwise.
    """
    start = 0
    new_pred = 0
    if intra:
        if dc_table is None:
            raise ValueError("intra blocks need a DC size table")
        new_pred = encode_dc_differential(w, int(scanned[0]), dc_predictor, dc_table)
        start = 1
    run = 0
    for k in range(start, 64):
        level = int(scanned[k])
        if level == 0:
            run += 1
        else:
            encode_run_level(w, run, level)
            run = 0
    AC_RUN_LEVEL.encode(w, EOB)
    return new_pred


def decode_blocks_fast(
    r: BitReader,
    cbp: int,
    *,
    intra: bool,
    dc_luma: VLCTable,
    dc_chroma: VLCTable,
    dc_pred: list[int],
    counters: WorkCounters,
) -> np.ndarray:
    """Decode every coded block of one macroblock with an inlined cursor.

    Functionally identical to calling :func:`decode_block` once per set
    bit of ``cbp`` (same syntax, same ``VLCError`` / ``BitstreamError``
    / ``BlockSyntaxError`` conditions, same counter accounting, same
    in-place DC predictor updates), but the innermost loop of the whole
    decoder — coefficient run/level decode, hundreds of thousands of
    symbols per picture at the paper's operating points — runs on local
    variables: a small MSB-first accumulator refilled a byte at a time
    from the payload, instead of a ``BitReader`` method call per
    symbol.  Doing the whole macroblock in one call amortises the
    cursor setup and writes levels straight into the ``(6, 64)`` output
    array.  The reader's position is synchronised on exit.

    The batched phase-1 parser (:mod:`repro.mpeg2.batched`) uses this
    entry point; the scalar oracle keeps the straightforward
    per-block version, and the cross-engine parity suite pins the two
    to bit-identical behaviour.
    """
    levels = np.zeros((6, 64), dtype=np.int64)
    if cbp == 0:
        return levels
    data = r._data
    n = r._nbits
    pos = r._pos
    nbytes = len(data)
    # Accumulator: the next ``abits`` stream bits, MSB-aligned at the
    # top of ``acc``; refilled from ``data[bytepos]`` a byte at a time.
    bytepos = pos >> 3
    rem = pos & 7
    if rem:
        acc = data[bytepos] & (0xFF >> rem)
        abits = 8 - rem
        bytepos += 1
    else:
        acc = 0
        abits = 0

    ac_runs = _AC_RUNS
    ac_mags = _AC_MAGS
    ac_lens = AC_RUN_LEVEL._dec_lens
    ac_maxlen = AC_RUN_LEVEL.max_len
    vlc_symbols = 0
    coefficients = 0

    for i in range(6):
        if not cbp & (32 >> i):
            continue
        row = levels[i]
        k = 0
        if intra:
            dc_table = dc_luma if i < 4 else dc_chroma
            maxlen = dc_table.max_len
            while abits < maxlen and bytepos < nbytes:
                acc = (acc << 8) | data[bytepos]
                bytepos += 1
                abits += 8
            w = (
                (acc >> (abits - maxlen))
                if abits >= maxlen
                else (acc << (maxlen - abits))
            )
            length = dc_table._dec_lens[w]
            if length == 0:
                raise VLCError(
                    f"{dc_table.name}: invalid codeword at bit {pos} "
                    f"(window {w:0{maxlen}b})"
                )
            if length > n - pos:
                raise VLCError(
                    f"{dc_table.name}: truncated codeword at end of stream"
                )
            size = dc_table._dec_syms[w]
            abits -= length
            acc &= (1 << abits) - 1
            pos += length
            vlc_symbols += 1
            di = 0 if i < 4 else i - 3
            if size:
                if size > n - pos:
                    raise BitstreamError(
                        f"read past end of stream (want {size} bits at {pos}, "
                        f"have {n - pos})"
                    )
                while abits < size and bytepos < nbytes:
                    acc = (acc << 8) | data[bytepos]
                    bytepos += 1
                    abits += 8
                raw = acc >> (abits - size)
                abits -= size
                acc &= (1 << abits) - 1
                pos += size
                if raw & (1 << (size - 1)):
                    new_pred = dc_pred[di] + raw
                else:
                    new_pred = dc_pred[di] - (raw ^ ((1 << size) - 1))
            else:
                new_pred = dc_pred[di]
            dc_pred[di] = new_pred
            row[0] = new_pred
            k = 1

        while True:
            while abits < ac_maxlen and bytepos < nbytes:
                acc = (acc << 8) | data[bytepos]
                bytepos += 1
                abits += 8
            w = (
                (acc >> (abits - ac_maxlen))
                if abits >= ac_maxlen
                else (acc << (ac_maxlen - abits))
            )
            length = ac_lens[w]
            if length == 0:
                raise VLCError(
                    f"{AC_RUN_LEVEL.name}: invalid codeword at bit {pos} "
                    f"(window {w:0{ac_maxlen}b})"
                )
            if length > n - pos:
                raise VLCError(
                    f"{AC_RUN_LEVEL.name}: truncated codeword at end of stream"
                )
            run = ac_runs[w]
            abits -= length
            acc &= (1 << abits) - 1
            pos += length
            vlc_symbols += 1
            if run < 0:
                if run == _AC_EOB_RUN:
                    break
                nbits = ESCAPE_RUN_BITS + ESCAPE_LEVEL_BITS
                if nbits > n - pos:
                    raise BitstreamError(
                        f"read past end of stream (want {nbits} bits at {pos}, "
                        f"have {n - pos})"
                    )
                while abits < nbits and bytepos < nbytes:
                    acc = (acc << 8) | data[bytepos]
                    bytepos += 1
                    abits += 8
                v = acc >> (abits - nbits)
                abits -= nbits
                acc &= (1 << abits) - 1
                pos += nbits
                run = v >> ESCAPE_LEVEL_BITS
                raw = v & ((1 << ESCAPE_LEVEL_BITS) - 1)
                level = (
                    raw - (1 << ESCAPE_LEVEL_BITS)
                    if raw & (1 << (ESCAPE_LEVEL_BITS - 1))
                    else raw
                )
                if level == 0:
                    raise BlockSyntaxError("escape-coded level of 0")
            else:
                mag = ac_mags[w]
                if pos >= n:
                    raise BitstreamError(
                        f"read past end of stream (want 1 bits at {pos}, have 0)"
                    )
                if abits == 0:
                    acc = data[bytepos]
                    bytepos += 1
                    abits = 8
                abits -= 1
                level = -mag if (acc >> abits) & 1 else mag
                acc &= (1 << abits) - 1
                pos += 1
            k += run
            if k >= 64:
                raise BlockSyntaxError(
                    f"coefficient index {k} past end of block (run {run})"
                )
            row[k] = level
            k += 1
            coefficients += 1

    r._pos = pos
    counters.vlc_symbols += vlc_symbols
    counters.coefficients += coefficients
    return levels


def decode_block(
    r: BitReader,
    *,
    intra: bool,
    dc_table: VLCTable | None = None,
    dc_predictor: int = 0,
    counters: WorkCounters,
) -> tuple[np.ndarray, int]:
    """Decode one block into a scan-ordered 64-vector of levels.

    Returns ``(levels, new_dc_predictor)``; the predictor is only
    meaningful for intra blocks.
    """
    levels = np.zeros(64, dtype=np.int64)
    k = 0
    new_pred = 0
    if intra:
        if dc_table is None:
            raise ValueError("intra blocks need a DC size table")
        new_pred = decode_dc_differential(r, dc_predictor, dc_table, counters)
        levels[0] = new_pred
        k = 1
    while True:
        sym = AC_RUN_LEVEL.decode(r)
        counters.vlc_symbols += 1
        if sym == EOB:
            return levels, new_pred
        if sym == ESCAPE:
            run = r.read_bits(ESCAPE_RUN_BITS)
            raw = r.read_bits(ESCAPE_LEVEL_BITS)
            level = raw - (1 << ESCAPE_LEVEL_BITS) if raw & (1 << (ESCAPE_LEVEL_BITS - 1)) else raw
            if level == 0:
                raise BlockSyntaxError("escape-coded level of 0")
        else:
            run, mag = sym
            level = -mag if r.read_bit() else mag
        k += run
        if k >= 64:
            raise BlockSyntaxError(
                f"coefficient index {k} past end of block (run {run})"
            )
        levels[k] = level
        k += 1
        counters.coefficients += 1
