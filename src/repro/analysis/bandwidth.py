"""Per-stream bandwidth / burstiness profiling for admission control.

MPEG-2 rate is bursty at two scales: pictures (an I costs several times
a B) and GOPs (the I-picture recurs once per GOP).  A streaming server
that admits sessions on the *mean* rate alone overcommits the link
every GOP period; the "Bandwidth Characterization Tool for MPEG-2
File" line of work profiles exactly this peak-to-mean structure.  This
module measures it from the scan index — no decode needed, wire bytes
only — and the serve/net admission controllers consume the result:

* :func:`profile_stream` → :class:`BandwidthProfile` with mean and
  per-GOP peak bit rates, per-picture-type cost split, and the
  ``burstiness`` ratio (peak/mean, >= 1.0);
* :func:`admissible_sessions` answers "how many of these profiles fit
  a link budget" using **peak** rates, so an admitted set never
  oversubscribes the wire even when every stream hits its I-picture
  burst simultaneously (the conservative, no-statistical-muxing bound).

Run standalone for a report::

    PYTHONPATH=src python -m repro.analysis.bandwidth stream.m2v --fps 30
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.mpeg2.index import StreamIndex, build_index


def _picture_wire_bytes(pic) -> int:
    """Wire bytes of one picture: header start code through last slice."""
    start = pic.header_payload_start - 4
    end = pic.header_payload_end
    if pic.slices:
        end = max(end, pic.slices[-1].payload_end)
    return end - start


@dataclass(frozen=True)
class GopBandwidth:
    """Wire cost of one GOP at a display rate."""

    gop: int
    pictures: int
    wire_bytes: int
    seconds: float
    bps: float


@dataclass(frozen=True)
class BandwidthProfile:
    """Bandwidth shape of one coded stream at a display rate.

    ``peak_bps`` is the largest per-GOP rate — the window admission
    control must budget for; ``burstiness`` is ``peak_bps / mean_bps``
    (1.0 for a perfectly smooth stream).
    """

    stream_bytes: int
    pictures: int
    fps: float
    mean_bps: float
    peak_bps: float
    burstiness: float
    gops: tuple[GopBandwidth, ...]
    #: Mean wire bytes per picture, keyed by picture type letter.
    mean_picture_bytes: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "stream_bytes": self.stream_bytes,
            "pictures": self.pictures,
            "fps": self.fps,
            "mean_bps": self.mean_bps,
            "peak_bps": self.peak_bps,
            "burstiness": self.burstiness,
            "mean_picture_bytes": dict(self.mean_picture_bytes),
            "gops": [
                {
                    "gop": g.gop,
                    "pictures": g.pictures,
                    "wire_bytes": g.wire_bytes,
                    "bps": g.bps,
                }
                for g in self.gops
            ],
        }


def profile_stream(
    data: bytes,
    fps: float = 30.0,
    index: StreamIndex | None = None,
) -> BandwidthProfile:
    """Measure a stream's bandwidth shape from its scan index.

    Pure byte accounting over the already-built index — no decode, so
    profiling an admission candidate costs microseconds, not a
    real-time budget.
    """
    if fps <= 0:
        raise ValueError(f"fps must be > 0, got {fps}")
    idx = index if index is not None else build_index(data)
    gops: list[GopBandwidth] = []
    per_type: dict[str, list[int]] = {}
    total_pictures = 0
    for gi, gop in enumerate(idx.gops):
        gop_bytes = gop.header_payload_end - gop.header_payload_start + 4
        for pic in gop.pictures:
            nbytes = _picture_wire_bytes(pic)
            gop_bytes += nbytes
            per_type.setdefault(pic.picture_type.letter, []).append(nbytes)
        n = len(gop.pictures)
        total_pictures += n
        seconds = max(n, 1) / fps
        gops.append(
            GopBandwidth(
                gop=gi,
                pictures=n,
                wire_bytes=gop_bytes,
                seconds=seconds,
                bps=gop_bytes * 8 / seconds,
            )
        )
    total_bytes = len(data)
    duration = max(total_pictures, 1) / fps
    mean_bps = total_bytes * 8 / duration
    peak_bps = max((g.bps for g in gops), default=mean_bps)
    return BandwidthProfile(
        stream_bytes=total_bytes,
        pictures=total_pictures,
        fps=fps,
        mean_bps=mean_bps,
        peak_bps=max(peak_bps, mean_bps),
        burstiness=max(peak_bps, mean_bps) / mean_bps if mean_bps else 1.0,
        gops=tuple(gops),
        mean_picture_bytes={
            letter: sum(sizes) / len(sizes)
            for letter, sizes in sorted(per_type.items())
        },
    )


def admissible_sessions(
    profiles: list[BandwidthProfile], link_bps: float
) -> int:
    """How many of ``profiles`` (in order) fit a link budget on peaks.

    Greedy prefix admission — the serve layer offers sessions in
    arrival order, so the answer is "the longest prefix whose summed
    *peak* rates stay within the link".  The first session is always
    admitted even if it alone exceeds the budget (it degrades on the
    wire rather than being unservable), matching the worker-slot
    floor of :func:`repro.serve.scheduler.estimate_capacity`.
    """
    if link_bps <= 0:
        raise ValueError(f"link_bps must be > 0, got {link_bps}")
    admitted = 0
    used = 0.0
    for p in profiles:
        if admitted > 0 and used + p.peak_bps > link_bps:
            break
        used += p.peak_bps
        admitted += 1
    return admitted


def format_profile(profile: BandwidthProfile) -> str:
    """Render a profile as a monospace report table."""
    from repro.analysis.report import TextTable

    table = TextTable(
        ["gop", "pictures", "bytes", "kbps"], title="per-GOP bandwidth"
    )
    for g in profile.gops:
        table.add_row(str(g.gop), str(g.pictures), str(g.wire_bytes),
                      f"{g.bps / 1e3:.1f}")
    lines = [
        f"stream: {profile.stream_bytes} bytes, "
        f"{profile.pictures} pictures @ {profile.fps:g} fps",
        f"mean rate:  {profile.mean_bps / 1e3:.1f} kbps",
        f"peak rate:  {profile.peak_bps / 1e3:.1f} kbps (per-GOP window)",
        f"burstiness: {profile.burstiness:.2f}x",
        "mean picture bytes: "
        + ", ".join(
            f"{k}={v:.0f}" for k, v in profile.mean_picture_bytes.items()
        ),
        table.render(),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Profile an MPEG-2 stream's bandwidth shape."
    )
    parser.add_argument("stream", help="coded .m2v file")
    parser.add_argument("--fps", type=float, default=30.0)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of the table"
    )
    args = parser.parse_args(argv)
    with open(args.stream, "rb") as fh:
        data = fh.read()
    profile = profile_stream(data, fps=args.fps)
    if args.json:
        print(json.dumps(profile.to_json(), indent=2))
    else:
        print(format_profile(profile))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
