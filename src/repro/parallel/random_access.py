"""Random-access (play-control) latency: GOP vs slice decomposition.

Section 5.1.1: when the user seeks (fast-forward, reverse, channel
hop), decoding restarts at a GOP boundary.  Under the GOP-level
decomposition only *one* worker decodes the target GOP, so the first
picture appears after a whole single-threaded picture-chain decode;
under the slice-level decomposition every worker attacks the first
picture's slices at once.  The paper argues this qualitatively; we
quantify it with the same cost model the throughput experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpeg2.constants import PictureType
from repro.parallel.profile import GopProfile, StreamProfile
from repro.smp.costs import CostModel, DEFAULT_COST_MODEL
from repro.smp.machine import CHALLENGE, MachineConfig


@dataclass(frozen=True)
class SeekLatency:
    """Time-to-first-displayed-picture after a seek, in seconds."""

    gop_level: float
    slice_level: float

    @property
    def advantage(self) -> float:
        """How many times faster the slice decomposition responds."""
        return self.gop_level / self.slice_level if self.slice_level else 1.0


def _pictures_until_first_display(gop: GopProfile) -> list[int]:
    """Coding positions that must decode before display can start.

    Display order starts at the GOP's I-picture (temporal reference
    0), which is first in coding order — so only that picture gates
    the first display.
    """
    for pos, pic in enumerate(gop.pictures):
        if pic.picture_type is PictureType.I:
            return list(range(pos + 1))
    raise ValueError("GOP contains no I-picture")


def seek_latency(
    profile: StreamProfile,
    gop_index: int,
    workers: int,
    cost: CostModel = DEFAULT_COST_MODEL,
    machine: MachineConfig = CHALLENGE,
) -> SeekLatency:
    """Latency to show the first picture of GOP ``gop_index``.

    GOP level: one worker decodes the pictures preceding the first
    displayable one, serially.  Slice level: all ``workers`` decode the
    first picture's slices in parallel (bounded by slices/picture, the
    same limit Fig. 11 shows).
    """
    gop = profile.gops[gop_index]
    gate = _pictures_until_first_display(gop)
    pixels = profile.picture_pixels

    def picture_cycles(pos: int) -> int:
        busy = cost.decode_cycles(gop.pictures[pos].total_counters())
        return busy + cost.stall_cycles(busy, machine, pixels)

    gop_cycles = sum(picture_cycles(pos) for pos in gate)

    slice_cycles = 0
    for pos in gate:
        pic = gop.pictures[pos]
        # Greedy multiprocessor schedule of the picture's slices
        # (LPT bound): ceil-ish makespan of independent slice tasks.
        loads = [0] * min(workers, max(len(pic.slices), 1))
        costs = sorted(
            (
                cost.decode_cycles(s.counters)
                + cost.stall_cycles(
                    cost.decode_cycles(s.counters), machine, pixels
                )
                for s in pic.slices
            ),
            reverse=True,
        )
        for c in costs:
            loads[loads.index(min(loads))] += c
        slice_cycles += max(loads) if loads else 0

    return SeekLatency(
        gop_level=machine.seconds(gop_cycles),
        slice_level=machine.seconds(slice_cycles),
    )
