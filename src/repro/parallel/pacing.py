"""Real-time display pacing: the 30 pictures/second deadline schedule.

The paper's goal is *real-time* decoding: 30 pictures/second reaching
the display.  The throughput experiments decode as fast as possible;
this module adds the real-time view: the display process emits picture
``k`` no earlier than ``t0 + k * period`` (where ``t0`` is when the
first picture is ready — the startup latency), and any picture not
decoded by its deadline is counted *late* with its lateness measured.

Pacing also changes memory behaviour: when decode runs faster than the
display rate, the GOP decoder's decoded-picture backlog grows against
the paced drain — the flip side of the Fig. 8/9 analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.smp.machine import MachineConfig


@dataclass
class DisplayPacer:
    """Deadline bookkeeping for a paced display process.

    With ``rate_hz`` of ``None`` the pacer is inert (decode-rate
    display, the default the throughput benchmarks use).
    """

    machine: MachineConfig
    rate_hz: float | None = None
    #: Pictures of startup buffer: deadlines start this many periods
    #: after the first picture is ready (a player's preroll).
    preroll_pictures: int = 0
    t0: int | None = field(default=None, init=False)
    late_pictures: int = field(default=0, init=False)
    max_lateness: int = field(default=0, init=False)
    total_lateness: int = field(default=0, init=False)

    @property
    def period(self) -> int:
        if self.rate_hz is None:
            raise ValueError("pacer has no display rate")
        return self.machine.cycles(1.0 / self.rate_hz)

    @property
    def enabled(self) -> bool:
        return self.rate_hz is not None

    def deadline(self, index: int) -> int:
        assert self.t0 is not None, "deadline before first picture"
        return self.t0 + (index + self.preroll_pictures) * self.period

    def on_ready(self, index: int, now: int) -> int | None:
        """Record picture ``index`` becoming displayable at ``now``.

        Returns the virtual time to sleep until before emitting it, or
        ``None`` to emit immediately (pacing off, first picture, or
        already past the deadline — a *late* picture).
        """
        if not self.enabled:
            return None
        if self.t0 is None:
            self.t0 = now
            return None
        deadline = self.deadline(index)
        if now > deadline:
            lateness = now - deadline
            self.late_pictures += 1
            self.total_lateness += lateness
            self.max_lateness = max(self.max_lateness, lateness)
            return None
        return deadline

    # ------------------------------------------------------------------
    @property
    def startup_cycles(self) -> int:
        return self.t0 or 0

    def summary(self) -> dict[str, float]:
        return {
            "late_pictures": self.late_pictures,
            "max_lateness_s": self.machine.seconds(self.max_lateness),
            "startup_s": self.machine.seconds(self.startup_cycles),
        }


@dataclass
class WallClockPacer:
    """The :class:`DisplayPacer` deadline schedule on *wall-clock* time.

    The simulator's pacer counts virtual machine cycles; the serve
    layer (:mod:`repro.serve`) needs the same bookkeeping against real
    seconds: picture ``k`` of a session should be displayable no later
    than ``t0 + k / rate_hz`` where ``t0`` anchors at the first emitted
    picture (a player's join time).  Every emission records its
    *lateness* (seconds past the deadline, clamped at 0 when on time),
    which is the raw material for the deadline-miss CDF that
    ``benchmarks/perf_serve.py`` charts and for the overload-degradation
    triggers (:mod:`repro.serve.degrade`).

    With ``rate_hz=None`` the pacer is inert (decode-rate display).
    """

    rate_hz: float | None = None
    #: Deadlines start this many periods after the first picture (a
    #: player's preroll buffer).
    preroll_pictures: int = 0
    t0: float | None = field(default=None, init=False)
    #: Lateness in seconds per emitted picture (0.0 = met deadline).
    lateness: list[float] = field(default_factory=list, init=False)

    @property
    def enabled(self) -> bool:
        return self.rate_hz is not None

    @property
    def period(self) -> float:
        if self.rate_hz is None:
            raise ValueError("pacer has no display rate")
        return 1.0 / self.rate_hz

    def deadline(self, index: int) -> float:
        assert self.t0 is not None, "deadline before first picture"
        return self.t0 + (index + self.preroll_pictures) * self.period

    def on_emit(self, index: int, now: float | None = None) -> float:
        """Record picture ``index`` becoming displayable at ``now``.

        Returns the lateness in seconds (0.0 when the deadline was met
        or pacing is off).  The first emission anchors ``t0``.
        """
        if not self.enabled:
            return 0.0
        if now is None:
            now = time.monotonic()
        if self.t0 is None:
            self.t0 = now
            self.lateness.append(0.0)
            return 0.0
        late = max(0.0, now - self.deadline(index))
        self.lateness.append(late)
        return late

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        return len(self.lateness)

    @property
    def late_pictures(self) -> int:
        return sum(1 for s in self.lateness if s > 0.0)

    @property
    def max_lateness_s(self) -> float:
        return max(self.lateness, default=0.0)

    @property
    def total_lateness_s(self) -> float:
        return sum(self.lateness)

    def miss_cdf(self, points: int = 20) -> list[dict[str, float]]:
        """Deadline-miss CDF: ``P(lateness <= x)`` at ``points`` knots.

        Knots are spread over ``[0, max_lateness]``; the first knot
        (x=0) is the fraction of pictures that met their deadline.
        """
        n = len(self.lateness)
        if n == 0:
            return []
        ordered = sorted(self.lateness)
        hi = ordered[-1]
        knots = [hi * i / max(1, points - 1) for i in range(points)] if hi > 0 else [0.0]
        out = []
        for x in knots:
            frac = sum(1 for s in ordered if s <= x + 1e-12) / n
            out.append({"lateness_s": x, "fraction": frac})
        return out

    def lateness_percentiles(self) -> dict[str, float]:
        """Fixed lateness percentiles in seconds: p50/p90/p99/max.

        The compact replacement for shipping the full :meth:`miss_cdf`
        knot list in bench payloads — four numbers instead of
        thousands of per-picture samples (linear interpolation between
        order statistics, max exact).
        """
        ordered = sorted(self.lateness)
        if not ordered:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

        def pct(q: float) -> float:
            pos = q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

        return {
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "max": ordered[-1],
        }

    def summary(self) -> dict[str, float]:
        return {
            "emitted": self.emitted,
            "late_pictures": self.late_pictures,
            "max_lateness_s": self.max_lateness_s,
            "total_lateness_s": self.total_lateness_s,
        }
