"""Synchronisation objects for the simulator.

These are plain state holders; the blocking/waking logic lives in the
engine, which is the only place virtual time advances.  All waiter
queues are FIFO, making every simulation deterministic.

Stall attribution
-----------------
Each primitive carries a canonical *reason* from
:mod:`repro.obs.stalls` (``lock`` / ``condition`` / ``barrier`` by
default; constructors accept an override so e.g. a task queue's
condition reports ``queue.get``).  The engine charges every blocked
interval to the primitive under unified names and units — **cycles**
in ``wait_cycles`` and a wait count in ``waits``, the same two fields
on all three primitives — replacing the old per-primitive ad-hoc
accounting and matching the mp pipeline's wall-second records, so
simulated and real "% time blocked" breakdowns are directly
comparable (paper Table 3).
"""

from __future__ import annotations

from collections import deque

from repro.obs.stalls import REASON_BARRIER, REASON_CONDITION, REASON_LOCK


class Lock:
    """A mutex.  Contended acquisition time is charged as sync wait."""

    __slots__ = (
        "name", "reason", "holder", "waiters",
        "acquisitions", "contentions", "waits", "wait_cycles",
    )

    def __init__(self, name: str = "lock", reason: str = REASON_LOCK) -> None:
        self.name = name
        self.reason = reason
        self.holder: object | None = None
        self.waiters: deque = deque()
        #: Total acquisitions (diagnostics: lock traffic).
        self.acquisitions = 0
        #: Acquisitions that had to wait (alias of ``waits``; kept for
        #: the historical name).
        self.contentions = 0
        #: Unified wait accounting: blocking waits and blocked cycles.
        self.waits = 0
        self.wait_cycles = 0


class Condition:
    """A broadcast condition: signalling wakes *all* current waiters.

    Waiters re-check their predicate on wakeup (standard condition
    semantics); the engine charges the blocked interval as sync wait.
    """

    __slots__ = ("name", "reason", "waiters", "signals", "waits", "wait_cycles")

    def __init__(
        self, name: str = "cond", reason: str = REASON_CONDITION
    ) -> None:
        self.name = name
        self.reason = reason
        self.waiters: deque = deque()
        #: Number of signal operations (diagnostics).
        self.signals = 0
        #: Unified wait accounting: blocking waits and blocked cycles.
        self.waits = 0
        self.wait_cycles = 0


class Barrier:
    """A reusable counting barrier for a fixed participant count."""

    __slots__ = (
        "name", "reason", "parties", "arrived", "generation",
        "waits", "wait_cycles",
    )

    def __init__(
        self, parties: int, name: str = "barrier",
        reason: str = REASON_BARRIER,
    ) -> None:
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {parties}")
        self.name = name
        self.reason = reason
        self.parties = parties
        self.arrived: deque = deque()
        self.generation = 0
        #: Unified wait accounting: blocking waits and blocked cycles.
        self.waits = 0
        self.wait_cycles = 0
