"""Analytical memory model of the GOP-level decoder (paper Fig. 9).

The paper derives ``mem(x) = scan(x) + frames(x)``: the compressed
stream the scan process has read ahead of the decoders, plus decoded
frames waiting for the display process.  The model here reconstructs
both components from first principles:

* the scan process reads the file at its fixed byte rate;
* worker ``w`` decodes GOPs ``w, w+P, w+2P, ...``; a GOP starts when
  it has been scanned and the worker's previous GOP is done, and takes
  ``gop_size x D`` cycles (``D`` = decode cycles per picture,
  including memory stalls);
* a GOP's stream bytes are freed when its decode completes;
* decoded pictures accumulate until the display process (which must
  emit in display order) has drained every earlier GOP.

The recursion is closed-form per GOP — no event simulation — and the
test suite verifies it against the simulator's measured usage, which
is the validation the paper reports ("the model has been verified to
be very close to the actual behavior of the system").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.profile import StreamProfile
from repro.smp.costs import CostModel, DEFAULT_COST_MODEL
from repro.smp.machine import CHALLENGE, MachineConfig


@dataclass(frozen=True)
class MemoryModel:
    """Closed-form memory predictor for a GOP-level decode run."""

    gop_count: int
    gop_size: int
    gop_bytes: float
    frame_bytes: int
    workers: int
    #: Scan throughput, bytes per cycle.
    scan_bytes_per_cycle: float
    #: Decode cycles per picture (busy + stall) on one worker.
    picture_cycles: float
    #: Display lags decode by ~this many pictures inside a GOP: coding
    #: order (I P B B ...) runs ahead of display order (I B B P ...) by
    #: roughly the I/P distance minus one.
    reorder_lag: float = 2.0

    @classmethod
    def from_profile(
        cls,
        profile: StreamProfile,
        workers: int,
        cost: CostModel = DEFAULT_COST_MODEL,
        machine: MachineConfig = CHALLENGE,
    ) -> "MemoryModel":
        busy = cost.decode_cycles(profile.total_counters()) / profile.picture_count
        stall = cost.stall_cycles(int(busy), machine, profile.picture_pixels)
        return cls(
            gop_count=len(profile.gops),
            gop_size=profile.gop_size,
            gop_bytes=profile.total_bytes / len(profile.gops),
            frame_bytes=profile.frame_bytes,
            workers=workers,
            scan_bytes_per_cycle=1.0 / cost.scan_cycles_per_byte,
            picture_cycles=busy + stall,
        )

    # ------------------------------------------------------------------
    @property
    def gop_cycles(self) -> float:
        return self.gop_size * self.picture_cycles

    @property
    def file_bytes(self) -> float:
        return self.gop_count * self.gop_bytes

    def _schedule(self) -> tuple[list[float], list[float]]:
        """Per-GOP (start, completion) times of the decode recursion."""
        starts: list[float] = []
        ends: list[float] = []
        for i in range(self.gop_count):
            scanned_at = (i + 1) * self.gop_bytes / self.scan_bytes_per_cycle
            worker_free = ends[i - self.workers] if i >= self.workers else 0.0
            start = max(scanned_at, worker_free)
            starts.append(start)
            ends.append(start + self.gop_cycles)
        return starts, ends

    # ------------------------------------------------------------------
    def scan_bytes(self, t: float) -> float:
        """scan(x): stream bytes resident at cycle ``t``."""
        read = min(self.file_bytes, self.scan_bytes_per_cycle * t)
        _, ends = self._schedule()
        freed = self.gop_bytes * sum(1 for e in ends if e <= t)
        return max(read - freed, 0.0)

    def frames_bytes(self, t: float) -> float:
        """frames(x): decoded-picture bytes resident at cycle ``t``."""
        starts, ends = self._schedule()
        decoded = 0.0
        for s in starts:
            progress = (t - s) / self.picture_cycles
            decoded += min(max(progress, 0.0), float(self.gop_size))
        # Display order: GOP i drains after every GOP < i has fully
        # displayed; within the *front* GOP the display process drains
        # picture by picture as its worker decodes (display work is
        # negligible next to decode work).
        displayed = 0.0
        front_done = 0.0  # completion time of the latest earlier GOP
        for s, e in zip(starts, ends):
            if max(front_done, e) <= t:
                displayed += self.gop_size
                front_done = max(front_done, e)
                continue
            if front_done <= t:
                # This GOP is the display front: partial drain, lagging
                # decode by the coding-vs-display reorder depth.
                progress = (t - s) / self.picture_cycles - self.reorder_lag
                displayed += min(max(progress, 0.0), float(self.gop_size))
            break
        return max(decoded - displayed, 0.0) * self.frame_bytes

    def memory_bytes(self, t: float) -> float:
        """mem(x) = scan(x) + frames(x)."""
        return self.scan_bytes(t) + self.frames_bytes(t)

    # ------------------------------------------------------------------
    def finish_cycles(self) -> float:
        _, ends = self._schedule()
        return max(ends)

    def curve(self, points: int = 200) -> list[tuple[float, float]]:
        """Sampled (t, mem) curve up to completion."""
        horizon = self.finish_cycles()
        return [
            (t, self.memory_bytes(t))
            for t in (horizon * k / (points - 1) for k in range(points))
        ]

    def peak_bytes(self) -> float:
        """Peak of the model curve.

        Evaluated at every schedule breakpoint (GOP starts/ends and
        picture completions, just before and after) plus a dense
        uniform sweep — the curve is piecewise linear but its kink set
        also includes display-drain onsets, which the sweep covers.
        """
        starts, ends = self._schedule()
        candidates: set[float] = set()
        for s, e in zip(starts, ends):
            candidates.update((s, e, max(e - 1e-6, 0.0)))
            for k in range(1, self.gop_size + 1):
                t = s + k * self.picture_cycles
                candidates.update((t, max(t - 1e-6, 0.0)))
        horizon = max(ends)
        candidates.update(horizon * k / 1999 for k in range(2000))
        return max(self.memory_bytes(t) for t in candidates)

    def fits(self, machine: MachineConfig) -> bool:
        """Can the run fit in the machine's program memory (Fig. 9)?"""
        return self.peak_bytes() <= machine.memory_bytes

    def steady_state_frames(self) -> float:
        """Rule-of-thumb backlog: ~P x GOP-size frames in flight."""
        return self.workers * self.gop_size * self.frame_bytes
