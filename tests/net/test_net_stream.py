"""End-to-end streaming: server + client over real localhost sockets.

The tentpole invariants:

* **Transparency** — on a clean link the client's reassembled frames
  are bit-identical to the pinned golden digests (the same pixels the
  scalar oracle produces); the network edge adds zero drift.
* **Delivered-or-concealed** — under packet loss every announced
  picture still ends in a receipt: complete, concealed (with the
  shared ``conceal_rows`` primitives), or explicitly shed; sessions
  never fail from slice loss.
* **Containment** — rejects (unknown stream, capacity, bandwidth) are
  explicit wire messages; a client disconnect cancels only its own
  session and the server keeps serving everyone else.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.net.client import stream_session
from repro.net.impair import ImpairmentProfile
from repro.net.server import NetServer
from repro.obs.stalls import REASON_CONCEAL_SPATIAL, REASON_CONCEAL_TEMPORAL

pytestmark = pytest.mark.net

VECTOR_DIR = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "vectors"
)

with open(os.path.join(VECTOR_DIR, "digests.json")) as _fh:
    DIGESTS = json.load(_fh)["streams"]


def load(name: str) -> bytes:
    with open(os.path.join(VECTOR_DIR, f"{name}.m2v"), "rb") as fh:
        return fh.read()


def run(coro):
    return asyncio.run(coro)


def _long_stream() -> bytes:
    """~48 pictures: a decode window wide enough (~0.25 s in-process)
    that a second client reliably arrives while the first session is
    still *decoding* (the service capacity window) and still
    *streaming* (the bandwidth window)."""
    from repro.mpeg2.encoder import EncoderConfig, encode_sequence
    from repro.video.synthetic import SyntheticVideo

    video = SyntheticVideo(width=48, height=32, seed=19).frames(48)
    return encode_sequence(video, EncoderConfig(gop_size=4, qscale_code=3))


STREAMS = {
    "ipb": load("ipb_64x48_gop13"),
    "two_gop": load("two_gop_48x32"),
    "long": _long_stream(),
}


async def _serve_one(server_kwargs, client_kwargs):
    srv = NetServer(STREAMS, workers=0, **server_kwargs)
    await srv.start()
    try:
        result = await stream_session(
            "127.0.0.1", srv.port, **client_kwargs
        )
    finally:
        report = await srv.aclose()
    return result, report


class TestCleanLink:
    @pytest.mark.parametrize(
        "stream,vector",
        [("ipb", "ipb_64x48_gop13"), ("two_gop", "two_gop_48x32")],
    )
    def test_frames_bit_identical_to_golden(self, stream, vector):
        result, report = run(
            _serve_one(
                {"fps": 240.0},
                {"stream": stream, "keep_frames": True},
            )
        )
        assert result.complete
        assert result.concealed_slices == 0 and result.late_slices == 0
        assert [f.digest() for f in result.frames] == (
            DIGESTS[vector]["frame_digests"]
        )
        assert report["service"]["status_counts"] == {"done": 1}

    def test_lateness_is_measured_per_picture(self):
        result, _ = run(
            _serve_one({"fps": 240.0}, {"stream": "two_gop"})
        )
        assert result.pacer.emitted == result.pictures
        assert result.to_json()["lateness"] is not None


class TestLossyLink:
    def test_delivered_or_concealed_under_loss(self):
        # 20% loss: enough that some slice in 8 pictures x 2 rows
        # virtually always drops, and every picture must still settle.
        result, report = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(loss=0.2, seed=11),
                },
                {"stream": "two_gop"},
            )
        )
        assert result.complete, result.to_json()
        assert len(result.receipts) == result.pictures
        assert result.concealed_slices > 0
        impair = report["connections"][0]["impair"]
        assert impair["dropped"] > 0
        # Conservation across the wire: bands received + dropped =
        # bands sent (rows per picture x pictures that sent bands).
        sent_bands = sum(r.rows for r in result.receipts if not r.shed)
        got_bands = sum(r.bands for r in result.receipts)
        assert got_bands + impair["dropped"] == sent_bands
        # The client's STATS receipts made it back into the report.
        assert report["client_concealed_slices"] == result.concealed_slices

    def test_concealment_uses_canonical_stall_reasons(self):
        result, _ = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(loss=0.3, seed=5),
                },
                {"stream": "ipb"},
            )
        )
        assert result.complete
        reasons = set(result.stalls.by_reason())
        assert reasons <= {REASON_CONCEAL_TEMPORAL, REASON_CONCEAL_SPATIAL}
        assert reasons, "30% loss produced no concealment stalls"

    def test_reorder_and_jitter_alone_need_no_concealment(self):
        result, _ = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(
                        reorder=0.4, jitter_ms=0.5, seed=3
                    ),
                },
                {"stream": "two_gop", "keep_frames": True},
            )
        )
        assert result.complete
        assert result.concealed_slices == 0
        assert [f.digest() for f in result.frames] == (
            DIGESTS["two_gop_48x32"]["frame_digests"]
        )

    def test_bandwidth_cap_delays_but_delivers(self):
        result, report = run(
            _serve_one(
                {
                    "fps": 240.0,
                    "impairment": ImpairmentProfile(
                        bandwidth_bps=20e6, seed=1
                    ),
                },
                {"stream": "two_gop"},
            )
        )
        assert result.complete and result.concealed_slices == 0
        assert report["connections"][0]["impair"]["delayed"] > 0


class TestAdmission:
    def test_unknown_stream_rejected(self):
        result, _ = run(
            _serve_one({"fps": 240.0}, {"stream": "nope"})
        )
        assert result.status == "rejected:unknown-stream"

    def test_capacity_gate_rejects_overload(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=30.0, capacity=1, max_queue=0
            )
            await srv.start()
            try:
                # The long stream decodes for ~0.25s, so the second
                # client arrives while the only capacity slot is busy.
                first = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "long")
                )
                await asyncio.sleep(0.05)
                second = await stream_session(
                    "127.0.0.1", srv.port, "two_gop"
                )
                return await first, second
            finally:
                await srv.aclose()

        first, second = run(scenario())
        assert first.complete
        assert second.status == "rejected:capacity"

    def test_bandwidth_gate_rejects_second_session(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=30.0, capacity=4,
                link_bps=1.0,  # below any stream's peak: 1 admit max
            )
            await srv.start()
            try:
                first = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "ipb")
                )
                await asyncio.sleep(0.1)
                second = await stream_session(
                    "127.0.0.1", srv.port, "two_gop"
                )
                return await first, second
            finally:
                await srv.aclose()

        first, second = run(scenario())
        # First always admitted (degrades on the wire, never refused).
        assert first.complete
        assert second.status == "rejected:bandwidth"

    def test_bandwidth_slot_freed_after_session_ends(self):
        async def scenario():
            srv = NetServer(STREAMS, workers=0, fps=240.0, link_bps=1.0)
            await srv.start()
            try:
                a = await stream_session("127.0.0.1", srv.port, "ipb")
                b = await stream_session("127.0.0.1", srv.port, "ipb")
                return a, b
            finally:
                await srv.aclose()

        a, b = run(scenario())
        assert a.complete and b.complete


class TestDisconnectContainment:
    def test_disconnect_cancels_only_own_session(self):
        async def scenario():
            srv = NetServer(STREAMS, workers=0, fps=60.0, capacity=4)
            await srv.start()
            try:
                quitter = asyncio.ensure_future(
                    stream_session(
                        "127.0.0.1", srv.port, "ipb", disconnect_after=2
                    )
                )
                stayer = asyncio.ensure_future(
                    stream_session("127.0.0.1", srv.port, "two_gop")
                )
                q, s = await asyncio.gather(quitter, stayer)
                # A third client connects *after* the hangup: the
                # server is still healthy.
                late = await stream_session(
                    "127.0.0.1", srv.port, "ipb", keep_frames=True
                )
                return q, s, late
            finally:
                report = await srv.aclose()
                scenario.report = report

        q, s, late = run(scenario())
        assert q.status == "disconnected"
        assert len(q.receipts) == 2
        assert s.complete
        assert late.complete
        assert [f.digest() for f in late.frames] == (
            DIGESTS["ipb_64x48_gop13"]["frame_digests"]
        )
        counts = scenario.report["service"]["status_counts"]
        # The quitter's session either finished decoding before the
        # hangup landed (tiny stream) or was cancelled — never failed.
        assert counts.get("failed", 0) == 0
        assert counts.get("done", 0) >= 2

    def test_lossy_multi_client_all_settle(self):
        async def scenario():
            srv = NetServer(
                STREAMS, workers=0, fps=120.0, capacity=4,
                impairment=ImpairmentProfile(loss=0.05, seed=42),
            )
            await srv.start()
            try:
                results = await asyncio.gather(*[
                    stream_session(
                        "127.0.0.1", srv.port,
                        "ipb" if i % 2 == 0 else "two_gop",
                    )
                    for i in range(4)
                ])
                return results
            finally:
                report = await srv.aclose()
                scenario.report = report

        results = run(scenario())
        assert all(r.complete for r in results), [
            r.to_json() for r in results
        ]
        counts = scenario.report["service"]["status_counts"]
        assert counts == {"done": 4}
