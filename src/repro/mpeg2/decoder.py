"""Sequential reference decoder, with GOP- and slice-granular entry points.

:class:`SequenceDecoder` is the uniprocessor baseline of the paper.
Its decomposition into :meth:`decode_gop`, :meth:`decode_picture` and
the slice-level :func:`repro.mpeg2.macroblock.decode_slice` is exactly
the task granularity menu of Section 4 — the parallel decoders in
:mod:`repro.parallel` call these same entry points from worker
processes.

Reference management follows the standard: the two most recent I/P
pictures are held; a P predicts from the newer one; a B predicts
forward from the older and backward from the newer.  Decoded frames
carry their temporal reference; display order is obtained by sorting
within each (closed) GOP.
"""

from __future__ import annotations

from repro.bitstream.emulation import unescape_payload
from repro.bitstream.reader import BitstreamError
from repro.mpeg2.blockcoding import BlockSyntaxError
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    GopIndex,
    PictureIndex,
    StreamIndex,
    build_index,
)
from repro.mpeg2.macroblock import (
    PictureCodingContext,
    SliceDecodeError,
    decode_slice,
)
from repro.mpeg2.reconstruct import copy_macroblock
from repro.mpeg2.vlc import VLCError


class DecodeError(Exception):
    """Raised when reference pictures needed by the stream are missing."""


#: Exceptions a corrupt slice payload can legitimately raise; the
#: resilient decoder conceals the slice on any of these.
SLICE_CORRUPTION_ERRORS = (
    BitstreamError,
    BlockSyntaxError,
    SliceDecodeError,
    VLCError,
    ValueError,
)


def conceal_slice(ctx: PictureCodingContext, vertical_position: int) -> None:
    """Replace a lost slice's macroblock row.

    Classic concealment: copy the co-located row from the forward
    reference when one exists, else fill mid-grey.  Slice independence
    (predictors reset at every slice) is what confines the damage to
    one row — the same property the parallel decomposition uses.
    """
    row = vertical_position - 1
    if ctx.fwd is not None:
        for col in range(ctx.mb_width):
            copy_macroblock(ctx.out, ctx.fwd, row, col)
    else:
        y0 = row * 16
        ctx.out.y[y0 : y0 + 16, :] = 128
        ctx.out.cb[y0 // 2 : y0 // 2 + 8, :] = 128
        ctx.out.cr[y0 // 2 : y0 // 2 + 8, :] = 128


class SequenceDecoder:
    """Decode a framed MPEG-2 stream produced by :mod:`repro.mpeg2.encoder`.

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (the parallel decoders share one
        index between the scan process and the workers).
    resilient:
        When true, a slice whose payload fails to parse is concealed
        (see :func:`conceal_slice`) instead of aborting the decode.
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        resilient: bool = False,
    ) -> None:
        self.data = data
        self.index = index if index is not None else build_index(data)
        self.seq = self.index.sequence_header
        self.resilient = resilient

    # ------------------------------------------------------------------
    # picture granularity
    # ------------------------------------------------------------------
    def decode_picture(
        self,
        pic: PictureIndex,
        fwd: Frame | None,
        bwd: Frame | None,
        counters: WorkCounters | None = None,
    ) -> Frame:
        """Decode one picture given its reference frames."""
        local = WorkCounters()
        header = pic.header()
        local.headers += 1
        local.bits += (pic.header_payload_end - pic.header_payload_start + 4) * 8
        out = Frame.blank(self.seq.width, self.seq.height)
        out.temporal_reference = pic.temporal_reference
        ctx = PictureCodingContext(
            seq=self.seq, pic=header, out=out, fwd=fwd, bwd=bwd
        )
        if header.picture_type.letter != "I" and fwd is None:
            raise DecodeError(
                f"{header.picture_type.letter}-picture without forward reference"
            )
        if header.picture_type.letter == "B" and bwd is None:
            raise DecodeError("B-picture without backward reference")
        for sl in pic.slices:
            payload = unescape_payload(
                self.data[sl.payload_start : sl.payload_end]
            )
            if self.resilient:
                try:
                    decode_slice(payload, sl.vertical_position, ctx, local)
                except SLICE_CORRUPTION_ERRORS:
                    conceal_slice(ctx, sl.vertical_position)
                    local.concealed_slices += 1
            else:
                decode_slice(payload, sl.vertical_position, ctx, local)
        if counters is not None:
            counters.add(local)
        return out

    def slice_payload(self, sl) -> bytes:
        """Unescaped payload bytes of a slice (worker-process fetch)."""
        return unescape_payload(self.data[sl.payload_start : sl.payload_end])

    def make_context(
        self, pic: PictureIndex, fwd: Frame | None, bwd: Frame | None
    ) -> PictureCodingContext:
        """Build a decode context with a fresh output frame.

        Used by the slice-level parallel decoders, where many workers
        decode slices of the same picture into one shared frame.
        """
        out = Frame.blank(self.seq.width, self.seq.height)
        out.temporal_reference = pic.temporal_reference
        return PictureCodingContext(
            seq=self.seq, pic=pic.header(), out=out, fwd=fwd, bwd=bwd
        )

    # ------------------------------------------------------------------
    # GOP granularity
    # ------------------------------------------------------------------
    def decode_gop(
        self, gop: GopIndex, counters: WorkCounters | None = None
    ) -> list[Frame]:
        """Decode one closed GOP; returns frames in *display* order.

        This is exactly the unit of work of a GOP-level worker process
        (paper Section 5.1): the GOP is self-contained, so no state is
        shared with other tasks.
        """
        if not gop.closed_gop:
            raise DecodeError(
                "GOP-level decode requires closed GOPs (paper assumption)"
            )
        local = WorkCounters()
        local.headers += 1
        local.bits += (gop.header_payload_end - gop.header_payload_start + 4) * 8
        ref_old: Frame | None = None
        ref_new: Frame | None = None
        decoded: list[Frame] = []
        for pic in gop.pictures:
            if pic.picture_type.is_reference:
                frame = self.decode_picture(pic, ref_new, None, local)
                ref_old, ref_new = ref_new, frame
            else:
                frame = self.decode_picture(pic, ref_old, ref_new, local)
            decoded.append(frame)
        decoded.sort(key=lambda f: f.temporal_reference)
        if counters is not None:
            counters.add(local)
        return decoded

    # ------------------------------------------------------------------
    # whole stream
    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the entire sequence in display order."""
        frames: list[Frame] = []
        for gop in self.index.gops:
            frames.extend(self.decode_gop(gop, counters))
        return frames


def decode_sequence(data: bytes) -> list[Frame]:
    """Convenience: decode a stream to display-ordered frames."""
    return SequenceDecoder(data).decode_all()
