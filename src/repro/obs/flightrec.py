"""Per-session flight recorder: bounded event rings + postmortem dumps.

When a session dies mid-stream — corrupt input, a client walking away,
an SLO burning out — the interesting evidence is the last few hundred
events *before* the failure: admissions, degrade ladder moves, dropped
pictures, concealments, worker deaths.  Traces capture that too, but
only when tracing was enabled up front; the flight recorder is always
on, bounded, and dumps automatically at the moment of failure.

Each session owns a ring of at most ``capacity`` events; older events
fall off the front and are counted in ``dropped`` so a dump is honest
about what it no longer holds.  Recording is a deque append plus a
small dict build — cheap enough to leave on unconditionally in the
serve and net paths.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections import deque
from typing import Any, Callable

DEFAULT_CAPACITY = 256

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(text: str) -> str:
    return _SAFE.sub("_", text) or "session"


class FlightRecorder:
    """Bounded per-session event rings with JSON postmortem dumps."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], int] = time.monotonic_ns,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._rings: dict[str, deque[dict[str, Any]]] = {}
        self._dropped: dict[str, int] = {}
        self._dump_count = 0

    def record(self, session: str, kind: str, **detail: Any) -> None:
        """Append one event to a session's ring (creating it lazily)."""

        ring = self._rings.get(session)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[session] = ring
            self._dropped[session] = 0
        if len(ring) == self.capacity:
            self._dropped[session] += 1
        event: dict[str, Any] = {"t_ns": self._clock(), "kind": kind}
        if detail:
            event.update(detail)
        ring.append(event)

    def events(self, session: str) -> list[dict[str, Any]]:
        return list(self._rings.get(session, ()))

    def sessions(self) -> list[str]:
        return sorted(self._rings)

    def discard(self, session: str) -> None:
        """Forget a session that ended cleanly — nothing to autopsy."""

        self._rings.pop(session, None)
        self._dropped.pop(session, None)

    def dump(self, session: str, reason: str) -> dict[str, Any]:
        """Build the postmortem document for one session."""

        return {
            "session": session,
            "reason": reason,
            "dumped_at_ns": self._clock(),
            "capacity": self.capacity,
            "dropped": self._dropped.get(session, 0),
            "events": self.events(session),
        }

    def dump_to(self, directory: str, session: str, reason: str) -> str:
        """Write the postmortem JSON to ``directory`` and return its path.

        File names carry the session and reason plus a running counter
        so repeated failures of one session never overwrite evidence.
        """

        os.makedirs(directory, exist_ok=True)
        self._dump_count += 1
        name = (
            f"flight-{_safe_name(session)}-{_safe_name(reason)}-"
            f"{self._dump_count:03d}.json"
        )
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.dump(session, reason), fh, indent=1)
        return path
