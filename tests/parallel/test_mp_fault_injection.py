"""Fault injection: a worker process dying mid-decode must fail clean.

A real parallel decoder faces real deaths — OOM kills, segfaults in
native code, operators' stray ``kill -9``.  ``multiprocessing`` loses
the victim's task silently, so a naive parent blocks forever on a
result that will never come.  Both mp decoders take the same defence:
result waits are chunked into liveness polls
(:data:`repro.parallel.mp.LIVENESS_POLL_S`) and a dead worker surfaces
as a :class:`~repro.mpeg2.decoder.DecodeError` within a poll.

These tests use the decoders' fault-injection hooks (``_crash_gop`` /
``_crash_task``), which ``os._exit`` the worker mid-task — the same
observable as a SIGKILL: no result, no cleanup, a nonzero exitcode.

Every test also asserts the shared-memory segment is unlinked: a
crashed decode must not leak ``/dev/shm`` blocks (the classic
``shared_memory`` footgun).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.mpeg2.decoder import DecodeError
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder

#: Upper bound on how long a crashed decode may take to fail — "no
#: hang" made executable.  Generous (CI boxes are slow); the liveness
#: poll should surface death within ~a second.
FAIL_DEADLINE_S = 60

SHM_DIR = "/dev/shm"


def shm_snapshot() -> set[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return set(os.listdir(SHM_DIR))


@pytest.fixture
def no_shm_leak():
    """Assert the test leaves no new /dev/shm entries behind."""
    before = shm_snapshot()
    yield
    # Allow the resource tracker a beat to finish unlinking.
    for _ in range(20):
        leaked = shm_snapshot() - before
        if not leaked:
            return
        time.sleep(0.1)
    raise AssertionError(f"leaked shared-memory segments: {sorted(leaked)}")


@pytest.fixture
def deadline():
    """SIGALRM watchdog: the crash must surface, not hang the suite."""
    def on_alarm(signum, frame):  # pragma: no cover - only on bug
        raise TimeoutError(
            "crashed worker did not surface as DecodeError within "
            f"{FAIL_DEADLINE_S}s — the liveness poll is broken"
        )

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(FAIL_DEADLINE_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


def assert_no_stray_children():
    """All worker processes were reaped (terminated + joined).

    Healthy persistent GOP-pool workers are exempt: they outlive
    individual decodes by design (``get_persistent_pool``), so only
    processes outside that registry count as strays.
    """
    from repro.parallel.mp import persistent_worker_pids

    for _ in range(50):
        strays = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in persistent_worker_pids()
        ]
        if not strays:
            return
        time.sleep(0.1)
    raise AssertionError(f"stray worker processes: {strays}")


class TestSliceWorkerCrash:
    def test_crash_mid_picture_raises_decode_error(
        self, medium_stream, no_shm_leak, deadline
    ):
        # Kill the worker that picks up picture 2, slice 1 — mid-GOP,
        # mid-picture, with other slices of the same picture in flight.
        dec = MPSliceDecoder(
            medium_stream, workers=2, mode="improved", _crash_task=(2, 1)
        )
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_crash_in_simple_mode(self, medium_stream, no_shm_leak, deadline):
        dec = MPSliceDecoder(
            medium_stream, workers=2, mode="simple", _crash_task=(1, 0)
        )
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_crash_on_first_slice(self, small_stream, no_shm_leak, deadline):
        # Death before any result at all: the parent has nothing but
        # the liveness poll to notice.
        dec = MPSliceDecoder(
            small_stream, workers=1, mode="improved", _crash_task=(0, 0)
        )
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_single_worker_crash_with_survivors_idle(
        self, two_gop_stream, no_shm_leak, deadline
    ):
        # Four workers, one dies: the survivors must not mask the loss
        # (the victim's slice is gone; the picture can never complete).
        dec = MPSliceDecoder(
            two_gop_stream, workers=4, mode="improved", _crash_task=(3, 0)
        )
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_clean_decode_after_crash(self, small_stream, no_shm_leak):
        # The failure must not poison the process: a fresh decoder on
        # the same stream succeeds afterwards.
        dec = MPSliceDecoder(
            small_stream, workers=1, mode="improved", _crash_task=(0, 0)
        )
        with pytest.raises(DecodeError):
            dec.decode_all()
        frames = MPSliceDecoder(small_stream, workers=1).decode_all()
        assert len(frames) == len(
            MPSliceDecoder(small_stream, workers=0).decode_all()
        )


class TestGopWorkerCrash:
    """The GOP path gets the same treatment (it previously had none)."""

    def test_crash_mid_stream_raises_decode_error(
        self, medium_stream, no_shm_leak, deadline
    ):
        dec = MPGopDecoder(medium_stream, workers=2, _crash_gop=1)
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_crash_on_first_gop(self, two_gop_stream, no_shm_leak, deadline):
        dec = MPGopDecoder(two_gop_stream, workers=1, _crash_gop=0)
        with pytest.raises(DecodeError, match="worker process died"):
            dec.decode_all()
        assert_no_stray_children()

    def test_clean_decode_after_crash(self, two_gop_stream, no_shm_leak):
        dec = MPGopDecoder(two_gop_stream, workers=2, _crash_gop=0)
        with pytest.raises(DecodeError):
            dec.decode_all()
        frames = MPGopDecoder(two_gop_stream, workers=2).decode_all()
        ref = MPGopDecoder(two_gop_stream, workers=0).decode_all()
        assert len(frames) == len(ref)


class TestNoCrashControl:
    """The hooks themselves must be inert when unset."""

    def test_slice_decoder_default_has_no_injection(self, small_stream):
        dec = MPSliceDecoder(small_stream, workers=1)
        assert dec._crash_task is None
        assert len(dec.decode_all()) > 0

    def test_gop_decoder_default_has_no_injection(self, small_stream):
        dec = MPGopDecoder(small_stream, workers=1)
        assert dec._crash_gop is None
        assert len(dec.decode_all()) > 0
