"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``encode``    synthesize a test clip and encode it to an .m2v file
``info``      scan a stream and print its structure (the scan process)
``decode``    decode a stream; optionally dump frames as PGM files
``serve``     decode many streams concurrently on one shared worker pool
``net-serve`` publish streams over TCP (paced slices, optional loss shim)
``net-client`` stream one session from a net-serve and report delivery
``simulate``  run a parallel decoder on the simulated multiprocessor
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.mpeg2.encoder import EncoderConfig, encode_sequence
    from repro.video.synthetic import SyntheticVideo

    video = SyntheticVideo(
        width=args.width, height=args.height, seed=args.seed
    )
    frames = video.frames(args.frames)
    config = EncoderConfig(
        gop_size=args.gop_size,
        qscale_code=args.qscale,
        target_bits_per_picture=(
            int(args.bit_rate / 30.0) if args.bit_rate else None
        ),
        bit_rate=args.bit_rate or 5_000_000,
    )
    data = encode_sequence(frames, config)
    with open(args.output, "wb") as fh:
        fh.write(data)
    rate = len(data) * 8 * 30 / len(frames)
    print(
        f"encoded {len(frames)} pictures {args.width}x{args.height} -> "
        f"{args.output} ({len(data):,} bytes, {rate/1e6:.2f} Mb/s at 30 pics/s)"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis import TextTable
    from repro.mpeg2.index import build_index

    with open(args.input, "rb") as fh:
        data = fh.read()
    idx = build_index(data)
    seq = idx.sequence_header
    print(
        f"{args.input}: {seq.width}x{seq.height} @ {seq.frame_rate} pics/s, "
        f"{seq.bit_rate/1e6:.2f} Mb/s nominal, {len(data):,} bytes"
    )
    print(
        f"{len(idx.gops)} GOPs, {idx.picture_count} pictures, "
        f"{idx.slice_count} slices ({idx.slices_per_picture}/picture)"
    )
    table = TextTable(["GOP", "pictures", "types (coding order)", "bytes"])
    for gi, gop in enumerate(idx.gops[: args.max_gops]):
        types = "".join(p.picture_type.letter for p in gop.pictures)
        table.add_row(gi, len(gop.pictures), types, gop.wire_bytes)
    print(table.render())
    if len(idx.gops) > args.max_gops:
        print(f"... ({len(idx.gops) - args.max_gops} more GOPs)")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    from repro.mpeg2.counters import WorkCounters
    from repro.mpeg2.decoder import SequenceDecoder
    from repro.obs import (
        disable_tracing,
        enable_tracing,
        format_stall_breakdown,
        get_tracer,
        metrics,
        reset_metrics,
    )

    with open(args.input, "rb") as fh:
        data = fh.read()
    if args.trace:
        enable_tracing(process_name="main (scan+merge)")
    reset_metrics()
    counters = WorkCounters()
    mp_decoder = None
    trick = (
        args.seek is not None
        or args.rate != 1
        or args.reverse
        or args.iframes
    )
    if trick:
        from repro.access import trick_decode, trick_decode_mp
        from repro.mpeg2.index import build_index, sequence_prefix

        if sum(map(bool, (args.reverse, args.iframes, args.rate != 1))) > 1:
            print(
                "decode: --reverse, --iframes and --rate are exclusive",
                file=sys.stderr,
            )
            return 2
        target = 0
        if args.reverse:
            mode = "reverse"
        elif args.iframes:
            mode = "iframes"
        elif args.rate != 1:
            mode = f"ff{args.rate}"
            if args.seek is not None:
                # Compose seek + fast-forward the way the net server
                # does: join at the closed GOP owning the target, then
                # fast-forward over the tail substream.
                index = build_index(data)
                join = index.gop_for_display_index(args.seek)
                base = index.gop_display_base(join)
                data = (
                    sequence_prefix(data, index)
                    + data[index.gops[join].start_offset :]
                )
                print(f"joined at GOP {join} (display base {base})")
        else:
            mode = "seek"
            target = args.seek
        if args.workers is not None:
            pairs = trick_decode_mp(
                data, mode, target=target, workers=args.workers,
                resilient=args.resilient, counters=counters,
            )
        else:
            engine = "batched" if args.engine == "auto" else args.engine
            pairs = trick_decode(
                data, mode, target=target, engine=engine,
                resilient=args.resilient, counters=counters,
            )
        frames = [f for _, f in pairs]
        # Dump under the *display* index so a seek tail diffs 1:1
        # against the same files from a linear decode.
        dump_indices = [d for d, _ in pairs]
        lo = min(dump_indices) if pairs else 0
        hi = max(dump_indices) if pairs else 0
        print(
            f"trick-play {mode}: {len(frames)} pictures "
            f"(display indices {lo}..{hi})"
        )
    elif args.grain is not None or args.engine == "auto":
        # The unified executor path: typed task graph + auto (or
        # pinned) grain/engine decisions over the shared backend.
        from repro.exec import TaskGraphExecutor

        ex = TaskGraphExecutor(
            data,
            grain=args.grain or "auto",
            engine=args.engine,
            workers=args.workers,
            mode=args.barrier,
            resilient=args.resilient,
        )
        frames = ex.decode_all(counters)
        mp_decoder = ex
        mode = (
            f"{ex.workers} worker processes"
            if ex.workers
            else "in-process fallback"
        )
        print(
            f"executor decode ({mode}, grain {args.grain or 'auto'}, "
            f"engine {args.engine})"
        )
        for i, d in enumerate(ex.last_decisions):
            print(
                f"  plan[{i}]: grain={d.grain} engine={d.engine} "
                f"[{d.reason}] est {d.est_cost:.3f}s "
                f"(alt {d.alt_grain}/{d.alt_engine} {d.alt_cost:.3f}s)"
            )
    elif args.workers is not None:
        mode = (
            f"{args.workers} worker processes"
            if args.workers
            else "in-process fallback"
        )
        if args.parallel == "slice":
            from repro.parallel.mp_slice import MPSliceDecoder

            mp_decoder = MPSliceDecoder(
                data, workers=args.workers, mode=args.barrier,
                resilient=args.resilient,
            )
            frames = mp_decoder.decode_all(counters)
            print(
                f"parallel decode ({mode}, slice-level, "
                f"{args.barrier} barrier)"
            )
        else:
            from repro.parallel.mp import MPGopDecoder

            mp_decoder = MPGopDecoder(
                data, workers=args.workers, engine=args.engine,
                resilient=args.resilient,
            )
            frames = mp_decoder.decode_all(counters)
            print(f"parallel decode ({mode}, GOP-level)")
    else:
        decoder = SequenceDecoder(
            data, resilient=args.resilient, engine=args.engine
        )
        frames = decoder.decode_all(counters)
    print(
        f"decoded {len(frames)} pictures; {counters.macroblocks:,} macroblocks, "
        f"{counters.coefficients:,} coefficients, {counters.bits:,} bits"
    )
    if counters.concealed_slices:
        print(f"concealed {counters.concealed_slices} corrupt slices")
    if args.trace:
        tracer = get_tracer()
        doc = tracer.write_chrome(args.trace)
        disable_tracing()
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {args.trace} "
            f"(open in https://ui.perfetto.dev or chrome://tracing)"
        )
    if args.stats:
        print()
        print(metrics().render_table())
        if mp_decoder is not None and mp_decoder.last_stalls:
            print()
            print(
                format_stall_breakdown(
                    mp_decoder.stall_breakdown(),
                    title="stall breakdown (% of process time, real mp run)",
                )
            )
    if args.dump_dir:
        os.makedirs(args.dump_dir, exist_ok=True)
        if not trick:
            dump_indices = range(len(frames))
        for i, frame in zip(dump_indices, frames):
            y, _, _ = frame.display_view()
            path = os.path.join(args.dump_dir, f"frame{i:04d}.pgm")
            with open(path, "wb") as fh:
                fh.write(f"P5\n{y.shape[1]} {y.shape[0]}\n255\n".encode())
                fh.write(y.tobytes())
        print(f"wrote {len(frames)} PGM luma frames to {args.dump_dir}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis import TextTable, format_bytes
    from repro.obs import (
        disable_tracing,
        enable_tracing,
        format_stall_breakdown,
        get_tracer,
        metrics,
        reset_metrics,
    )
    from repro.serve import DecodeService

    if args.trace:
        enable_tracing(process_name="serve (scheduler+display)")
    reset_metrics()
    svc = DecodeService(
        workers=args.workers,
        fps=args.fps,
        capacity=args.capacity,
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        resilient=args.resilient,
        task_timeout_s=args.task_timeout,
        preroll_pictures=args.preroll,
        grain=args.grain,
        engine=args.engine,
    )
    for spec in args.streams:
        weight = 1.0
        path = spec
        if "=" in spec and not os.path.exists(spec):
            path, _, w = spec.rpartition("=")
            weight = float(w)
        name = os.path.splitext(os.path.basename(path))[0]
        base, n = name, 2
        while name in svc.sessions:
            name = f"{base}#{n}"
            n += 1
        with open(path, "rb") as fh:
            data = fh.read()
        svc.submit(name, data, weight=weight)
    report = svc.run()

    table = TextTable(
        ["session", "status", "pictures", "emitted", "dropped",
         "b-shed", "gop-skip", "late", "max late ms"],
        title=(
            f"serve: {len(svc.sessions)} sessions, {svc.workers} workers, "
            f"capacity {svc.capacity}"
            + (f", {args.fps:g} fps deadlines" if args.fps else "")
        ),
    )
    for sess in svc.sessions.values():
        dl = sess.pacer.summary() if sess.pacer.enabled else None
        table.add_row(
            sess.name,
            sess.status.value,
            sess.picture_count,
            sess.emitted_pictures,
            sess.dropped_pictures,
            sess.dropped_b_tasks,
            sess.skipped_gops,
            dl["late_pictures"] if dl else "-",
            round(dl["max_lateness_s"] * 1e3, 1) if dl else "-",
        )
    print(table.render())
    dl = report["deadline"]
    print(
        f"wall {report['wall_seconds']:.2f}s, "
        f"frame pools {format_bytes(report['pool_bytes'])}, "
        f"deadline misses {dl['missed']}/{dl['emitted']} "
        f"({dl['miss_fraction'] * 100:.1f}%)"
    )
    for sess in svc.sessions.values():
        if sess.error is not None:
            print(
                f"  {sess.name}: {sess.error['type']}: "
                f"{sess.error['message']} (contained)"
            )
    if args.trace:
        tracer = get_tracer()
        doc = tracer.write_chrome(args.trace)
        disable_tracing()
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {args.trace} "
            f"(open in https://ui.perfetto.dev or chrome://tracing)"
        )
    if args.stats:
        print()
        print(metrics().render_table())
        if svc.last_stalls:
            print()
            print(
                format_stall_breakdown(
                    svc.stall_breakdown(),
                    title="stall breakdown (% of process time, serve run)",
                )
            )
    if args.report:
        import json

        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, default=str)
        print(f"wrote service report to {args.report}")
    failed = sum(
        1 for s in svc.sessions.values() if s.status.value == "failed"
    )
    return 1 if failed == len(svc.sessions) and svc.sessions else 0


def _cmd_net_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.impair import ImpairmentProfile
    from repro.net.server import NetServer
    from repro.obs import disable_tracing, enable_tracing, get_tracer

    if args.trace:
        enable_tracing(process_name="net-serve (acceptor+service)")
    streams: dict[str, bytes] = {}
    for path in args.streams:
        name = os.path.splitext(os.path.basename(path))[0]
        base, n = name, 2
        while name in streams:
            name = f"{base}#{n}"
            n += 1
        with open(path, "rb") as fh:
            streams[name] = fh.read()

    impairment = None
    if args.loss or args.reorder or args.jitter_ms or args.bandwidth:
        impairment = ImpairmentProfile(
            loss=args.loss,
            reorder=args.reorder,
            jitter_ms=args.jitter_ms,
            bandwidth_bps=args.bandwidth or None,
            seed=args.seed,
        )

    slo = None
    if args.slo_miss_budget is not None or args.slo_p99_ms is not None:
        from repro.obs.slo import SLOPolicy

        defaults = SLOPolicy()
        slo = SLOPolicy(
            deadline_miss_budget=(
                args.slo_miss_budget
                if args.slo_miss_budget is not None
                else defaults.deadline_miss_budget
            ),
            p99_lateness_ms=(
                args.slo_p99_ms
                if args.slo_p99_ms is not None
                else defaults.p99_lateness_ms
            ),
        )

    async def serve() -> dict:
        srv = NetServer(
            streams,
            workers=args.workers,
            fps=args.fps,
            capacity=args.capacity,
            link_bps=args.link_bps,
            impairment=impairment,
            preroll_pictures=args.preroll,
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            slo=slo,
            stats_push_pictures=args.stats_push,
            flight_dir=args.flight_dir,
        )
        await srv.start()
        if srv.metrics_port is not None:
            print(
                "metrics exposition on "
                f"http://{srv.host}:{srv.metrics_port}/metrics"
            )
        shim = (
            f", impaired (loss {args.loss:.0%}, reorder {args.reorder:.0%},"
            f" jitter {args.jitter_ms:g}ms"
            + (f", {args.bandwidth / 1e6:g} Mb/s cap" if args.bandwidth else "")
            + ")"
            if impairment
            else ""
        )
        print(
            f"net-serve on {srv.host}:{srv.port} — {len(streams)} streams "
            f"@ {args.fps:g} fps{shim}"
        )
        for name in sorted(streams):
            p = srv.profiles.get(name)
            detail = (
                f"{p.pictures} pictures, mean {p.mean_bps / 1e6:.2f} Mb/s, "
                f"peak {p.peak_bps / 1e6:.2f} Mb/s ({p.burstiness:.2f}x)"
                if p
                else f"UNSCANNABLE ({srv.profile_errors[name]})"
            )
            print(f"  {name}: {detail}")
        try:
            if args.duration:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # Ctrl-C stops the server
        finally:
            report = await srv.aclose()
        return report

    try:
        report = asyncio.run(serve())
    except KeyboardInterrupt:
        print("\ninterrupted")
        return 0
    counts = report["service"]["status_counts"]
    print(
        f"served {len(report['connections'])} connections; "
        f"sessions {counts or '{}'}; client-concealed slices "
        f"{report['client_concealed_slices']}"
    )
    if report.get("flight_dumps"):
        print(
            f"flight-recorder dumps ({len(report['flight_dumps'])}):"
        )
        for path in report["flight_dumps"]:
            print(f"  {path}")
    if args.trace:
        doc = get_tracer().write_chrome(args.trace)
        disable_tracing()
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {args.trace}"
        )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, default=str)
        print(f"wrote server report to {args.report}")
    return 0


def _cmd_net_client(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.client import stream_session
    from repro.obs import disable_tracing, enable_tracing, get_tracer

    if args.trace:
        enable_tracing(process_name=f"net-client ({args.stream})")
    result = asyncio.run(
        stream_session(
            args.host, args.port, args.stream, timeout_s=args.timeout,
            disconnect_after=args.disconnect_after,
            seek=args.seek, rate=args.rate,
        )
    )
    if args.trace:
        doc = get_tracer().write_chrome(args.trace)
        disable_tracing()
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {args.trace}"
        )
    j = result.to_json()
    print(
        f"{args.stream}: {j['status']} — {j['pictures']} pictures "
        f"({j['delivered']} intact, {j['concealed_pictures']} concealed, "
        f"{j['shed_pictures']} shed, {j['abandoned']} abandoned)"
    )
    if j.get("join_gop") or j.get("rate", 1) != 1:
        print(
            f"trick-play: joined at GOP {j['join_gop']} "
            f"(display base {j['join_display_base']}), rate {j['rate']}x"
        )
    if j["concealed_slices"]:
        per = result.stalls.by_reason()
        detail = ", ".join(
            f"{reason} {t * 1e3:.2f}ms" for reason, t in sorted(per.items())
        )
        print(f"concealed {j['concealed_slices']} slices ({detail})")
    if j["lateness"] is not None:
        late = j["lateness"]
        print(
            f"deadlines: {late['late_pictures']}/{late['emitted']} late, "
            f"max {late['max_lateness_s'] * 1e3:.1f} ms"
        )
    if j["slo"] is not None:
        slo = j["slo"]
        breaches = ", ".join(slo["breaches"]) or "none"
        print(
            f"server SLO: budget spent {slo['budget_spent']:.2f}, "
            f"burn rate {slo['burn_rate']:.2f}, breaches: {breaches} "
            f"({j['server_stats_pushes']} pushes)"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(j, fh, indent=2)
        print(f"wrote client report to {args.json}")
    if args.disconnect_after is not None and result.status == "disconnected":
        return 0  # the hangup was the point
    return 0 if result.complete else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import TextTable, format_bytes
    from repro.parallel import (
        GopLevelDecoder,
        MacroblockLevelDecoder,
        ParallelConfig,
        SliceLevelDecoder,
        SliceMode,
        profile_stream,
    )
    from repro.parallel.profile import tile_profile
    from repro.smp import challenge, dash

    with open(args.input, "rb") as fh:
        data = fh.read()
    profile, _ = profile_stream(data)
    if args.repeat > 1:
        profile = tile_profile(profile, args.repeat)

    if args.machine == "dash":
        machine = dash(max(args.processors, args.workers + 2))
    else:
        machine = challenge(max(args.processors, args.workers + 2))
    config = ParallelConfig(
        workers=args.workers,
        machine=machine,
        display_rate_hz=args.rate,
        display_preroll_pictures=args.preroll,
    )

    if args.decoder == "gop":
        result = GopLevelDecoder(profile).run(config)
    elif args.decoder == "slice-simple":
        result = SliceLevelDecoder(profile).run(config, SliceMode.SIMPLE)
    elif args.decoder == "slice-improved":
        result = SliceLevelDecoder(profile).run(config, SliceMode.IMPROVED)
    elif args.decoder == "macroblock":
        result = MacroblockLevelDecoder(profile).run(config)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.decoder)

    table = TextTable(["metric", "value"], title=f"{args.decoder} decoder, {machine.name}")
    table.add_row("pictures", result.picture_count)
    table.add_row("simulated seconds", round(result.finish_seconds, 2))
    table.add_row("pictures/second", round(result.pictures_per_second, 2))
    table.add_row("peak memory", format_bytes(result.peak_memory))
    table.add_row("mean sync/exec", round(result.mean_sync_ratio, 4))
    if args.rate:
        table.add_row("late pictures", result.late_pictures)
        table.add_row("max lateness s", round(result.max_lateness_seconds, 3))
    print(table.render())
    if args.stats and hasattr(result, "stall_breakdown"):
        from repro.obs import format_stall_breakdown

        print()
        print(
            format_stall_breakdown(
                result.stall_breakdown(),
                title="stall breakdown (% of process time, simulated run)",
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel MPEG-2 decoding reproduction (IPPS 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enc = sub.add_parser("encode", help="encode a synthetic clip")
    enc.add_argument("output")
    enc.add_argument("--width", type=int, default=176)
    enc.add_argument("--height", type=int, default=120)
    enc.add_argument("--frames", type=int, default=26)
    enc.add_argument("--gop-size", type=int, default=13)
    enc.add_argument("--qscale", type=int, default=3)
    enc.add_argument("--seed", type=int, default=0)
    enc.add_argument("--bit-rate", type=int, default=None,
                     help="enable rate control toward this bits/second")
    enc.set_defaults(func=_cmd_encode)

    info = sub.add_parser("info", help="print stream structure")
    info.add_argument("input")
    info.add_argument("--max-gops", type=int, default=8)
    info.set_defaults(func=_cmd_info)

    dec = sub.add_parser("decode", help="decode a stream")
    dec.add_argument("input")
    dec.add_argument("--dump-dir", help="write luma planes as PGM files")
    dec.add_argument("--resilient", action="store_true",
                     help="conceal corrupt slices instead of failing")
    dec.add_argument("--workers", type=int, default=None, metavar="N",
                     help="decode on N real worker processes "
                          "(repro.parallel.mp[_slice]; 0 = in-process "
                          "fallback)")
    dec.add_argument("--parallel", default="gop", choices=["gop", "slice"],
                     help="parallel decomposition when --workers is "
                          "given: whole closed GOPs (Section 5.1) or "
                          "individual slices (Section 5.2)")
    dec.add_argument("--barrier", default="improved",
                     choices=["simple", "improved"],
                     help="slice-level synchronisation: barrier after "
                          "every picture (simple) or only after "
                          "reference pictures (improved)")
    dec.add_argument("--engine", default="batched",
                     choices=["scalar", "batched", "auto"],
                     help="decode engine (bit-identical either way); "
                          "'auto' lets the executor's cost model pick")
    dec.add_argument("--grain", default=None,
                     choices=["auto", "gop", "slice"],
                     help="route through the unified task-graph "
                          "executor (repro.exec): pin the decomposition "
                          "grain, or 'auto' to choose per stream and "
                          "re-pick at GOP boundaries from observed "
                          "stage timings")
    dec.add_argument("--seek", type=int, default=None, metavar="PIC",
                     help="trick-play: start at the closed GOP owning "
                          "display picture PIC (bit-identical to the "
                          "same tail of a linear decode)")
    dec.add_argument("--rate", type=int, default=1, choices=[1, 2, 4],
                     help="trick-play: fast-forward at Nx (reference "
                          "pictures only, every (N/2)-th GOP); "
                          "composes with --seek")
    dec.add_argument("--reverse", action="store_true",
                     help="trick-play: emit pictures in reverse display "
                          "order (GOPs last-to-first)")
    dec.add_argument("--iframes", action="store_true",
                     help="trick-play: emit only each GOP's I picture")
    dec.add_argument("--trace", metavar="OUT.json",
                     help="record a Chrome trace-event timeline (spans "
                          "from every process; open in Perfetto)")
    dec.add_argument("--stats", action="store_true",
                     help="print the metrics registry summary table "
                          "(histograms, gauges, stall breakdown)")
    dec.set_defaults(func=_cmd_decode)

    srv = sub.add_parser(
        "serve",
        help="decode many streams concurrently on one worker pool",
    )
    srv.add_argument("--streams", nargs="+", required=True,
                     metavar="PATH[=WEIGHT]",
                     help="input .m2v files (repeat a path for identical "
                          "sessions; append =W for a priority weight)")
    srv.add_argument("--workers", type=int, default=None, metavar="N",
                     help="shared decode worker processes (default: CPU "
                          "count; 0 = in-process, deterministic)")
    srv.add_argument("--fps", type=float, default=None,
                     help="per-session display deadline rate; enables "
                          "deadline tracking and overload degradation")
    srv.add_argument("--capacity", type=int, default=None,
                     help="max concurrently active sessions (default: "
                          "estimated from BENCH_parallel.json throughput)")
    srv.add_argument("--max-queue", type=int, default=0,
                     help="admission queue depth beyond the capacity")
    srv.add_argument("--max-inflight", type=int, default=2,
                     help="per-session in-flight task bound (backpressure)")
    srv.add_argument("--preroll", type=int, default=0,
                     help="deadline preroll buffer in pictures")
    srv.add_argument("--grain", default=None,
                     choices=["auto", "gop", "slice"],
                     help="scheduler task grain per session: 'gop' = "
                          "one task per GOP, 'slice' = fine ref/B "
                          "tasks (default), 'auto' = per-stream pick "
                          "from the bandwidth profile's cost estimate")
    srv.add_argument("--engine", default=None,
                     choices=["auto", "scalar", "batched"],
                     help="cost-model engine hint for --grain auto")
    srv.add_argument("--task-timeout", type=float, default=60.0,
                     help="per-task wall-clock budget before the worker "
                          "is presumed wedged and the task retried")
    srv.add_argument("--resilient", action="store_true",
                     help="conceal corrupt slices instead of failing the "
                          "session")
    srv.add_argument("--trace", metavar="OUT.json",
                     help="record a Chrome trace-event timeline across "
                          "the scheduler and every worker")
    srv.add_argument("--stats", action="store_true",
                     help="print the metrics registry + stall breakdown")
    srv.add_argument("--report", metavar="OUT.json",
                     help="write the full JSON service report")
    srv.set_defaults(func=_cmd_serve)

    nsrv = sub.add_parser(
        "net-serve",
        help="publish streams over TCP with paced slice delivery",
    )
    nsrv.add_argument("--streams", nargs="+", required=True, metavar="PATH",
                      help="input .m2v files, published under their "
                           "basenames")
    nsrv.add_argument("--host", default="127.0.0.1")
    nsrv.add_argument("--port", type=int, default=0,
                      help="TCP port (default: pick a free one)")
    nsrv.add_argument("--workers", type=int, default=0, metavar="N",
                      help="decode worker processes (0 = in-process)")
    nsrv.add_argument("--fps", type=float, default=30.0,
                      help="display rate pictures are paced onto the wire")
    nsrv.add_argument("--capacity", type=int, default=None,
                      help="max concurrently decoding sessions")
    nsrv.add_argument("--link-bps", type=float, default=None,
                      help="admission budget: reject sessions whose "
                           "summed peak rates exceed this")
    nsrv.add_argument("--preroll", type=int, default=1,
                      help="pictures buffered before pacing starts")
    nsrv.add_argument("--duration", type=float, default=None,
                      help="serve this many seconds then exit "
                           "(default: until Ctrl-C)")
    nsrv.add_argument("--loss", type=float, default=0.0,
                      help="impairment shim: per-slice drop probability")
    nsrv.add_argument("--reorder", type=float, default=0.0,
                      help="impairment shim: per-slice swap probability")
    nsrv.add_argument("--jitter-ms", type=float, default=0.0,
                      help="impairment shim: max per-message delay")
    nsrv.add_argument("--bandwidth", type=float, default=None,
                      help="impairment shim: wire bandwidth cap in bits/s")
    nsrv.add_argument("--seed", type=int, default=0,
                      help="impairment schedule seed (deterministic)")
    nsrv.add_argument("--report", metavar="OUT.json",
                      help="write the JSON server report on exit")
    nsrv.add_argument("--trace", metavar="OUT.json",
                      help="record a Chrome trace-event timeline of the "
                           "service while serving")
    nsrv.add_argument("--metrics-port", type=int, default=None, metavar="N",
                      help="expose Prometheus metrics on this HTTP port "
                           "(0 = pick a free one)")
    nsrv.add_argument("--stats-push", type=int, default=0, metavar="K",
                      help="push a live STATS frame (SLO snapshot + "
                           "metrics digest) to each client every K "
                           "pictures (0 = off)")
    nsrv.add_argument("--flight-dir", metavar="DIR",
                      help="dump per-session flight-recorder rings here "
                           "on failure/cancel/SLO burnout")
    nsrv.add_argument("--slo-miss-budget", type=float, default=None,
                      help="SLO: allowed deadline-miss fraction "
                           "(default 0.05)")
    nsrv.add_argument("--slo-p99-ms", type=float, default=None,
                      help="SLO: p99 lateness objective in ms "
                           "(default 100)")
    nsrv.set_defaults(func=_cmd_net_serve)

    ncli = sub.add_parser(
        "net-client",
        help="stream one session from a net-serve server",
    )
    ncli.add_argument("stream", help="published stream name to request")
    ncli.add_argument("--host", default="127.0.0.1")
    ncli.add_argument("--port", type=int, required=True)
    ncli.add_argument("--timeout", type=float, default=300.0,
                      help="whole-session wall-clock bound")
    ncli.add_argument("--json", metavar="OUT.json",
                      help="write the client delivery report")
    ncli.add_argument("--trace", metavar="OUT.json",
                      help="record the client's trace shard (merge with "
                           "the server's via obs_report --merged)")
    ncli.add_argument("--disconnect-after", type=int, default=None,
                      metavar="K",
                      help="hang up abruptly after K picture commits "
                           "(exercises server-side cancel + flight dump)")
    ncli.add_argument("--seek", type=int, default=None, metavar="PIC",
                      help="join mid-stream at the closed GOP owning "
                           "display picture PIC (reliable SEEK frame)")
    ncli.add_argument("--rate", type=int, default=1, choices=[1, 2, 4],
                      help="fast-forward at Nx (reliable RATE frame; "
                           "server serves reference pictures only)")
    ncli.set_defaults(func=_cmd_net_client)

    simp = sub.add_parser("simulate", help="simulated parallel decode")
    simp.add_argument("input")
    simp.add_argument("--decoder", default="gop",
                      choices=["gop", "slice-simple", "slice-improved", "macroblock"])
    simp.add_argument("--workers", type=int, default=4)
    simp.add_argument("--machine", default="challenge", choices=["challenge", "dash"])
    simp.add_argument("--processors", type=int, default=16)
    simp.add_argument("--rate", type=float, default=None,
                      help="pace the display at this rate (pics/s)")
    simp.add_argument("--preroll", type=int, default=0,
                      help="paced-playback startup buffer in pictures")
    simp.add_argument("--repeat", type=int, default=1,
                      help="tile the stream's GOPs this many times")
    simp.add_argument("--stats", action="store_true",
                      help="print the per-reason stall breakdown "
                           "(same vocabulary as decode --stats)")
    simp.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
