"""Synthetic test video: the paper's Table 1 stream matrix.

The paper built its streams from one public clip (a panning flower
garden) by repeating and rescaling pictures.  We generate an
equivalent panning textured scene procedurally —
:class:`~repro.video.synthetic.SyntheticVideo` — and encode the same
matrix of streams: four resolutions (176x120 .. 1408x960) times four
GOP sizes (4, 13, 16, 31), I/P distance 3, one slice per macroblock
row, ~30 pictures/sec (see :mod:`repro.video.streams`).
"""

from repro.video.synthetic import SyntheticVideo
from repro.video.streams import (
    PAPER_RESOLUTIONS,
    PAPER_GOP_SIZES,
    TestStreamSpec,
    paper_stream_matrix,
    build_stream,
)
from repro.video.metrics import psnr, sequence_psnr

__all__ = [
    "SyntheticVideo",
    "PAPER_RESOLUTIONS",
    "PAPER_GOP_SIZES",
    "TestStreamSpec",
    "paper_stream_matrix",
    "build_stream",
    "psnr",
    "sequence_psnr",
]
