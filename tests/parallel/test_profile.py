"""Stream profiling: per-task counters and reference relationships."""

from __future__ import annotations

import pytest

from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder, decode_sequence
from repro.parallel.profile import cached_profile, profile_stream


@pytest.fixture(scope="module")
def profile_and_frames(medium_stream):
    return profile_stream(medium_stream, keep_frames=True)


class TestProfileStructure:
    def test_counts(self, profile_and_frames, medium_stream):
        profile, _ = profile_and_frames
        assert profile.picture_count == 26
        assert len(profile.gops) == 2
        assert profile.gop_size == 13
        assert profile.slices_per_picture == 4  # 64/16 rows
        assert profile.slice_count == 26 * 4
        assert profile.total_bytes == len(medium_stream)
        assert profile.width == 96 and profile.height == 64

    def test_display_indices_are_global_and_unique(self, profile_and_frames):
        profile, _ = profile_and_frames
        indices = sorted(
            p.display_index for g in profile.gops for p in g.pictures
        )
        assert indices == list(range(26))

    def test_frame_bytes(self, profile_and_frames):
        profile, _ = profile_and_frames
        assert profile.frame_bytes == 96 * 64 * 3 // 2

    def test_kept_frames_match_sequential_decoder(
        self, profile_and_frames, medium_stream
    ):
        _, frames = profile_and_frames
        reference = decode_sequence(medium_stream)
        assert len(frames) == len(reference)
        for a, b in zip(frames, reference):
            assert a.same_pixels(b)

    def test_total_counters_match_sequential_decode(
        self, profile_and_frames, medium_stream
    ):
        profile, _ = profile_and_frames
        seq_counters = WorkCounters()
        SequenceDecoder(medium_stream).decode_all(seq_counters)
        total = profile.total_counters()
        assert total.macroblocks == seq_counters.macroblocks
        assert total.idct_blocks == seq_counters.idct_blocks
        assert total.pixels == seq_counters.pixels
        assert total.coefficients == seq_counters.coefficients

    def test_per_picture_wire_bytes_sum_to_stream(
        self, profile_and_frames, medium_stream
    ):
        profile, _ = profile_and_frames
        total = sum(
            p.wire_bytes for g in profile.gops for p in g.pictures
        )
        # Remaining bytes: sequence header, GOP headers, sequence end.
        overhead = len(medium_stream) - total
        assert 8 < overhead < 200


class TestReferences:
    def test_reference_positions_coding_order(self, profile_and_frames):
        profile, _ = profile_and_frames
        gop = profile.gops[0]
        # Coding order is I P B B P B B ...
        types = [p.picture_type for p in gop.pictures]
        assert types[0] is PictureType.I
        assert types[1] is PictureType.P
        assert gop.reference_positions(0) == []
        assert gop.reference_positions(1) == [0]      # P3 <- I0
        assert gop.reference_positions(2) == [0, 1]   # B1 <- I0, P3
        assert gop.reference_positions(3) == [0, 1]   # B2 <- I0, P3
        assert gop.reference_positions(4) == [1]      # P6 <- P3

    def test_dependents_inverse_of_references(self, profile_and_frames):
        profile, _ = profile_and_frames
        gop = profile.gops[0]
        n = len(gop.pictures)
        for pos in range(n):
            for d in gop.dependents(pos):
                assert pos in gop.reference_positions(d)
        # B-pictures have no dependents.
        for pos in range(n):
            if gop.pictures[pos].picture_type is PictureType.B:
                assert gop.dependents(pos) == []


class TestProfileCache:
    def test_cache_roundtrip(self, medium_stream, tmp_path):
        p1 = cached_profile(medium_stream, "testkey", cache_dir=str(tmp_path))
        assert (tmp_path / "testkey.profile.pkl").exists()
        p2 = cached_profile(medium_stream, "testkey", cache_dir=str(tmp_path))
        assert p2.picture_count == p1.picture_count
        assert p2.total_counters().bits == p1.total_counters().bits
