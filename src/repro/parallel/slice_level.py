"""Slice-level parallel decoder, simple and improved (paper Section 5.2).

Tasks are slices, organised in the 2-D picture/slice queue.  The
*simple* variant synchronises workers at the end of every picture; the
*improved* variant observes that consecutive B-pictures share the same
references and are never referenced themselves, so workers may roll
into the next picture early — synchronisation is needed only when the
next picture (transitively) depends on an unfinished reference, i.e.
at the end of I- and P-pictures.

Compared with the GOP decoder: memory stays at a handful of frames
independent of worker count and GOP size, and random access is fast
(all workers attack the first picture together); the price is
synchronisation at picture boundaries and slice-grain queue traffic,
plus re-reading picture headers per worker (all modelled, all measured
by the paper).
"""

from __future__ import annotations

import enum
import heapq

from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.macroblock import PictureCodingContext, decode_slice
from repro.parallel.gop_level import DecodeRunResult, ParallelConfig
from repro.parallel.pacing import DisplayPacer
from repro.parallel.profile import StreamProfile, profile_stream
from repro.parallel.queues import PictureEntry, SimQueue, SliceTask, SliceTaskQueue
from repro.smp.engine import Compute, Halt, Process, Simulator, SleepUntil, Stall
from repro.smp.memtrack import MemoryTracker


class SliceMode(enum.Enum):
    """Synchronisation policy of the slice-level decoder."""

    #: Barrier after every picture (first implementation in the paper).
    SIMPLE = "simple"
    #: Barrier only after reference (I/P) pictures (improved version).
    IMPROVED = "improved"


class SliceLevelDecoder:
    """Simulate the slice-level parallel decoder over a stream profile."""

    def __init__(self, profile: StreamProfile, data: bytes | None = None) -> None:
        self.profile = profile
        self._data = data

    @classmethod
    def from_stream(cls, data: bytes) -> "SliceLevelDecoder":
        profile, _ = profile_stream(data)
        return cls(profile, data)

    # ------------------------------------------------------------------
    def _build_entries(self) -> list[PictureEntry]:
        """Flatten the stream into coding-order picture entries."""
        entries: list[PictureEntry] = []
        base = 0
        for gop in self.profile.gops:
            for pos, pic in enumerate(gop.pictures):
                deps = [base + r for r in gop.reference_positions(pos)]
                entries.append(
                    PictureEntry(
                        gop=gop, picture=pic, order=base + pos, dependencies=deps
                    )
                )
            base += len(gop.pictures)
        return entries

    def run(
        self, config: ParallelConfig, mode: SliceMode = SliceMode.IMPROVED
    ) -> DecodeRunResult:
        profile = self.profile
        if config.execute and self._data is None:
            raise ValueError("execute=True needs the stream bytes")

        sim = Simulator()
        cost = config.cost
        machine = config.machine
        memory = MemoryTracker()
        result = DecodeRunResult(
            config=config, picture_count=profile.picture_count, memory=memory
        )
        entries = self._build_entries()
        queue = SliceTaskQueue("slice-tasks", cost.queue_op_cycles, mode.value)
        display_queue = SimQueue("display", cost.queue_op_cycles)
        fbytes = profile.frame_bytes
        pixels = profile.picture_pixels

        # Frame lifetime refcounts: 1 for display + 1 per dependent
        # picture that still needs this frame as a reference.
        dependents: dict[int, list[int]] = {}
        base = 0
        for gop in profile.gops:
            for pos in range(len(gop.pictures)):
                dependents[base + pos] = [base + d for d in gop.dependents(pos)]
            base += len(gop.pictures)
        refcount = {
            e.order: 1 + len(dependents[e.order]) for e in entries
        }

        def _release(order: int) -> None:
            refcount[order] -= 1
            if refcount[order] == 0:
                memory.free(sim.now, fbytes, "frames")

        # Execute mode: shared decode contexts, one per picture.  Slice
        # tasks decode through the scalar per-slice entry point — the
        # batched fast path is picture-granular, and a slice worker by
        # definition owns only its own row — so ``config.engine`` here
        # only affects the decoder used for payload/context plumbing.
        decoder = (
            SequenceDecoder(self._data, engine=config.engine)
            if config.execute
            else None
        )
        contexts: dict[int, PictureCodingContext] = {}
        frames: dict[int, Frame] = {}
        index_pictures = {}
        if config.execute:
            k = 0
            for gop in decoder.index.gops:
                for pic in gop.pictures:
                    index_pictures[k] = pic
                    k += 1

        def _context_for(entry: PictureEntry) -> PictureCodingContext:
            ctx = contexts.get(entry.order)
            if ctx is None:
                deps = entry.dependencies
                fwd = frames.get(deps[0]) if deps else None
                bwd = frames.get(deps[1]) if len(deps) > 1 else None
                ctx = decoder.make_context(index_pictures[entry.order], fwd, bwd)
                contexts[entry.order] = ctx
                frames[entry.order] = ctx.out
            return ctx

        # -- scan process -------------------------------------------------
        def scan_body(proc: Process):
            i = 0
            for gop in profile.gops:
                yield Compute(cost.scan_cycles(max(gop.header_bits // 8, 1)))
                for _ in gop.pictures:
                    entry = entries[i]
                    yield Compute(cost.scan_cycles(entry.picture.wire_bytes))
                    memory.allocate(sim.now, entry.picture.wire_bytes, "stream")
                    yield from queue.add_picture(entry)
                    i += 1
            yield from queue.finish_feeding()

        # -- worker processes ----------------------------------------------
        def make_worker(wid: int):
            seen_pictures: set[int] = set()

            def worker_body(proc: Process):
                while True:
                    task = yield from queue.get_slice()
                    if task is None:
                        break
                    entry = task.entry
                    if entry.order not in seen_pictures:
                        seen_pictures.add(entry.order)
                        # Each worker re-reads the picture header and
                        # sets up per-picture context for every picture
                        # it touches (paper: the slice versions' extra
                        # overhead, Section 5.2.1).
                        yield Compute(
                            int(
                                cost.picture_attach_cycles
                                + cost.cycles_per_bit * entry.picture.header_bits
                            )
                        )
                    if entry.order not in _allocated:
                        _allocated.add(entry.order)
                        memory.allocate(sim.now, fbytes, "frames")
                    sp = entry.picture.slices[task.slice_index]
                    if config.execute:
                        ctx = _context_for(entry)
                        sl = index_pictures[entry.order].slices[task.slice_index]
                        decode_slice(
                            decoder.slice_payload(sl), sl.vertical_position, ctx
                        )
                    busy = cost.decode_cycles(sp.counters)
                    yield Compute(busy)
                    yield Stall(
                        cost.stall_cycles(
                            busy, machine, pixels, config.remote_fraction
                        )
                    )
                    finished = yield from queue.complete_slice(task)
                    if finished:
                        memory.free(sim.now, entry.picture.wire_bytes, "stream")
                        for dep in entry.dependencies:
                            _release(dep)
                        yield from display_queue.put(entry)

            return worker_body

        _allocated: set[int] = set()

        # -- display process -----------------------------------------------
        pacer = DisplayPacer(
            machine, config.display_rate_hz, config.display_preroll_pictures
        )

        def display_body(proc: Process):
            pending: list[tuple[int, PictureEntry]] = []
            next_index = 0
            total = profile.picture_count
            while next_index < total:
                entry = yield from display_queue.get()
                assert entry is not None, "display queue closed early"
                heapq.heappush(pending, (entry.picture.display_index, entry))
                while pending and pending[0][0] == next_index:
                    _, done = heapq.heappop(pending)
                    target = pacer.on_ready(next_index, sim.now)
                    if target is not None:
                        yield SleepUntil(target)
                    yield Compute(cost.display_cycles())
                    result.display_times.append(sim.now)
                    _release(done.order)
                    next_index += 1
            yield Halt()

        sim.add_process("scan", scan_body)
        workers = [
            sim.add_process(f"worker-{i}", make_worker(i))
            for i in range(config.workers)
        ]
        sim.add_process("display", display_body)
        sim.run()

        result.finish_cycles = result.display_times[-1]
        result.stalls = sim.stalls
        result.worker_busy = [w.stats.busy for w in workers]
        result.worker_stall = [w.stats.stall for w in workers]
        result.worker_sync = [w.stats.sync_wait for w in workers]
        result.late_pictures = pacer.late_pictures
        result.max_lateness_cycles = pacer.max_lateness
        result.startup_cycles = pacer.startup_cycles or (
            result.display_times[0] if result.display_times else 0
        )
        if config.execute:
            by_display = sorted(
                ((entries[o].picture.display_index, f) for o, f in frames.items()),
                key=lambda t: t[0],
            )
            result.frames = [f for _, f in by_display]
        return result
