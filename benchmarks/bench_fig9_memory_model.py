"""Figure 9 — the analytical memory model mem(x) = scan(x) + frames(x).

Paper: the model predicts memory over time for three cases; the third
(1408x960, 31 pictures/GOP, 11 workers) exceeds the machine's 500 MB
programme memory and cannot be run.  The model is validated against
the measured behaviour.
"""

from __future__ import annotations

import pytest

from repro.analysis import TextTable, ascii_series, format_bytes
from repro.mpeg2.frame import frame_bytes
from repro.parallel import GopLevelDecoder, MemoryModel, ParallelConfig
from repro.smp import CHALLENGE, challenge

from benchmarks.conftest import PAPER_CASES

#: The paper's three Figure 9 cases: (resolution, GOP size, workers).
CASES = [
    ("352x240", 13, 11),
    ("704x480", 13, 11),
    ("1408x960", 31, 11),
]


def test_fig9_memory_model(benchmark, env, record):
    cases = [c for c in CASES if c[0] in PAPER_CASES]

    def run():
        out = {}
        for res, gop_size, workers in cases:
            profile = env.profile_with_gop_size(res, gop_size, 1120)
            model = MemoryModel.from_profile(profile, workers)
            out[(res, gop_size, workers)] = model
        return out

    models = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    table = TextTable(
        ["case", "peak mem", "steady-state frames", "fits 500MB?"],
        title="Figure 9: analytical memory model, 1120 pictures, 11 workers",
    )
    for (res, gop_size, workers), model in models.items():
        table.add_row(
            f"{res}/gop{gop_size}",
            format_bytes(model.peak_bytes()),
            format_bytes(model.steady_state_frames()),
            "yes" if model.fits(CHALLENGE) else "NO (paper: cannot be run)",
        )
    blocks.append(table.render())

    # mem(x) curve of the first case, sampled over time.
    key = next(iter(models))
    model = models[key]
    curve = model.curve(points=12)
    blocks.append(
        ascii_series(
            [(round(CHALLENGE.seconds(t), 1), m / 1e6) for t, m in curve],
            label=f"mem(x) in MB over seconds, {key[0]}/gop{key[1]}",
        )
    )
    record("\n\n".join(blocks))

    # The paper's infeasibility result.
    if ("1408x960", 31, 11) in models:
        big = models[("1408x960", 31, 11)]
        assert not big.fits(CHALLENGE)
        assert big.steady_state_frames() > 500e6
    small = models[next(iter(models))]
    assert small.fits(CHALLENGE) or small.frame_bytes > frame_bytes(704, 480)


def test_fig9_model_validated_against_simulation(benchmark, env, record):
    """The paper: 'the model has been verified to be very close to the
    actual behavior of the system'."""
    res = next(iter(PAPER_CASES))

    def run():
        profile = env.profile(res, 13, pictures=156)
        workers = 6
        model = MemoryModel.from_profile(profile, workers)
        result = GopLevelDecoder(profile).run(
            ParallelConfig(workers=workers, machine=challenge(16))
        )
        return model.peak_bytes(), result.memory.peak()

    predicted, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        f"Figure 9 validation ({res}, 156 pictures, 6 workers)\n"
        f"model peak:    {format_bytes(predicted)}\n"
        f"measured peak: {format_bytes(measured)}\n"
        f"ratio: {predicted / measured:.2f}"
    )
    assert predicted == pytest.approx(measured, rel=0.40)
