"""From-scratch MPEG-2 codec substrate.

This package implements the codec the paper parallelizes: the layered
sequence/GOP/picture/slice/macroblock/block syntax, variable-length
coding, zig-zag scanning, quantization, the 8x8 DCT/IDCT, motion
estimation and compensation, a complete encoder and the sequential
reference decoder.

The public surface mirrors the MPEG Software Simulation Group decoder
the paper builds on:

* :func:`repro.mpeg2.encoder.encode_sequence` — frames -> bitstream
* :class:`repro.mpeg2.decoder.SequenceDecoder` — bitstream -> frames,
  with slice- and GOP-granular entry points used by the parallel
  decoders in :mod:`repro.parallel`.
"""

from repro.mpeg2.constants import PictureType, MACROBLOCK_SIZE, BLOCK_SIZE
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.decoder import SequenceDecoder, decode_sequence
from repro.mpeg2.gop import GopStructure

__all__ = [
    "PictureType",
    "MACROBLOCK_SIZE",
    "BLOCK_SIZE",
    "EncoderConfig",
    "encode_sequence",
    "SequenceDecoder",
    "decode_sequence",
    "GopStructure",
]
