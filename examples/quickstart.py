#!/usr/bin/env python3
"""Quickstart: encode a clip, decode it three ways, compare.

Demonstrates the full public API in one run:

1. generate a synthetic panning clip (the paper's flower-garden stand-in);
2. encode it to an MPEG-2 bitstream with the from-scratch encoder;
3. decode sequentially (the uniprocessor baseline);
4. decode with the GOP-level and improved slice-level parallel
   decoders on a simulated 16-processor SGI Challenge, verifying the
   parallel outputs are bit-identical to the sequential decode;
5. report quality (PSNR) and simulated decode rates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.mpeg2.decoder import decode_sequence
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.parallel import (
    GopLevelDecoder,
    ParallelConfig,
    SliceLevelDecoder,
    SliceMode,
    profile_stream,
)
from repro.smp import challenge
from repro.video.metrics import sequence_psnr
from repro.video.synthetic import SyntheticVideo


def main() -> None:
    # 1. A 52-frame clip: four closed 13-picture GOPs (I B B P ...).
    video = SyntheticVideo(width=176, height=120, seed=42)
    frames = video.frames(52)
    print(f"generated {len(frames)} frames at 176x120")

    # 2. Encode.  The defaults match the paper's streams: GOP size 13,
    #    I/P distance 3, one slice per macroblock row.
    config = EncoderConfig(gop_size=13, qscale_code=3)
    stream = encode_sequence(frames, config)
    kbps = len(stream) * 8 * 30 / len(frames) / 1000
    print(f"encoded to {len(stream):,} bytes ({kbps:.0f} kbit/s at 30 pics/s)")

    # 3. Sequential reference decode.
    decoded = decode_sequence(stream)
    print(f"sequential decode: PSNR {sequence_psnr(frames, decoded):.1f} dB")

    # 4. Parallel decodes on the simulated Challenge.  ``execute=True``
    #    makes the workers really decode so we can verify the output.
    profile, _ = profile_stream(stream)
    machine = challenge(16)
    runs = {
        "GOP level": GopLevelDecoder(profile, stream).run(
            ParallelConfig(workers=4, machine=machine, execute=True)
        ),
        "slice level (simple)": SliceLevelDecoder(profile, stream).run(
            ParallelConfig(workers=4, machine=machine, execute=True),
            SliceMode.SIMPLE,
        ),
        "slice level (improved)": SliceLevelDecoder(profile, stream).run(
            ParallelConfig(workers=4, machine=machine, execute=True),
            SliceMode.IMPROVED,
        ),
    }
    for name, result in runs.items():
        identical = all(
            a.same_pixels(b) for a, b in zip(decoded, result.frames)
        )
        assert identical, f"{name} output differs from sequential decode!"
    print("parallel decoders verified bit-identical to the sequential decoder")

    # 5. Simulated decode rates (virtual time on 150 MHz R4400s).
    table = TextTable(
        ["decoder", "pics/s (4 workers)", "peak memory KB", "sync/exec"],
        title="Simulated decode on a 16-processor Challenge",
    )
    for name, result in runs.items():
        table.add_row(
            name,
            round(result.pictures_per_second, 1),
            round(result.peak_memory / 1024, 1),
            round(result.mean_sync_ratio, 3),
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
