"""Ablation — bounding the GOP decoder's memory (Figs. 8-9 follow-up).

The paper's conclusion flags the GOP decomposition's "extreme memory
requirements that increase linearly with the GOP size, picture
resolution, and number of processors" — the backlog of decoded frames
awaiting the in-order display.  A natural question: is the backlog
slack that a bounded frame pool could trim cheaply?

This ablation answers *no*: sweeping the pool cap shows throughput
falling nearly proportionally once the cap drops below ~P x GOP size,
because the backlog IS the pipeline — every in-flight GOP needs its
decoded pictures parked until the display drains the GOPs before it.
The GOP decomposition's memory cost is structural, which is exactly
why the paper prefers the slice decomposition when memory matters
(its frames-in-flight are a handful regardless of P; Section 5.2).
"""

from __future__ import annotations

from repro.analysis import TextTable, format_bytes

from benchmarks.conftest import PAPER_CASES

WORKERS = 11
PICTURES = 546  # 42 GOPs
CAPS = [4, 13, 39, 78, 143, None]


def test_ablation_bounded_memory(benchmark, env, record):
    res = "704x480" if "704x480" in PAPER_CASES else next(iter(PAPER_CASES))
    profile = env.profile(res, 13, pictures=PICTURES)

    def run():
        out = {}
        for cap in CAPS:
            result = env.run_gop(profile, WORKERS, max_frames_in_flight=cap)
            out[cap] = (
                result.pictures_per_second,
                result.memory.peak("frames"),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    free_rate, free_mem = results[None]
    table = TextTable(
        ["frame pool cap", "pics/s", "throughput %", "peak frame memory", "memory %"],
        title=(
            f"Ablation: bounded decoded-frame pool, {res}, {WORKERS} workers "
            f"(GOP size 13; P x GOP = {WORKERS * 13} frames)"
        ),
    )
    for cap in CAPS:
        rate, mem = results[cap]
        table.add_row(
            cap if cap is not None else "unbounded (paper)",
            round(rate, 1),
            round(rate / free_rate * 100, 1),
            format_bytes(mem),
            round(mem / free_mem * 100, 1),
        )
    record(
        table.render()
        + "\n\nthe backlog is the pipeline: memory saved is throughput lost —\n"
        "the GOP decomposition's memory cost is structural (hence the\n"
        "paper's preference for slice-level decoding when memory matters)"
    )

    # Monotone tradeoff: bigger pools never hurt throughput.
    rates = [results[cap][0] for cap in CAPS]
    for a, b in zip(rates, rates[1:]):
        assert b >= a * 0.98
    # A pool of ~P x GOP frames recovers full throughput (and full
    # memory): the unbounded peak is the working backlog, not slack.
    rate_full, mem_full = results[143]
    assert rate_full > 0.97 * free_rate
    assert mem_full > 0.9 * free_mem
    # Halving the pool costs real throughput: the structural tradeoff.
    rate_half, _ = results[78]
    assert rate_half < 0.9 * free_rate