"""Motion-vector differential coding (ISO 11172-2 2.4.4.2 semantics).

Each vector component is coded as a VLC ``motion_code`` plus, for
``f_code > 1``, a fixed-length ``motion_residual``; the decoded
differential is added to the predictor with modulo wrap into the
representable window ``[-16*f, 16*f - 1]`` (``f = 1 << (f_code-1)``).

Predictors (PMVs) are reset at slice starts — the property that makes
slices independently decodable, on which the paper's slice-level
parallel decoder rests.
"""

from __future__ import annotations

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.tables import MOTION_CODE


class MotionRangeError(Exception):
    """Raised when a vector cannot be represented under the f_code."""


def f_range(f_code: int) -> tuple[int, int]:
    """Representable half-pel component window ``[low, high]``."""
    if not 1 <= f_code <= 7:
        raise ValueError(f"f_code out of range: {f_code}")
    f = 1 << (f_code - 1)
    return -16 * f, 16 * f - 1


def wrap_component(value: int, f_code: int) -> int:
    """Wrap a component into the representable window (decoder rule)."""
    low, high = f_range(f_code)
    span = 32 << (f_code - 1)
    while value < low:
        value += span
    while value > high:
        value -= span
    return value


def encode_component(
    writer: BitWriter, value: int, predictor: int, f_code: int
) -> int:
    """Code one vector component; returns the new predictor (== value).

    ``value`` must already lie inside the f_code window; the encoder
    guarantees this by choosing the picture's f_code from the largest
    vector it emits.
    """
    low, high = f_range(f_code)
    if not low <= value <= high:
        raise MotionRangeError(
            f"component {value} outside f_code={f_code} window [{low},{high}]"
        )
    f = 1 << (f_code - 1)
    delta = wrap_component(value - predictor, f_code)
    if f == 1 or delta == 0:
        MOTION_CODE.encode(writer, delta)
    else:
        mag = abs(delta) - 1
        code = mag // f + 1
        residual = mag % f
        MOTION_CODE.encode(writer, code if delta > 0 else -code)
        writer.write_bits(residual, f_code - 1)
    return value


def decode_component(reader: BitReader, predictor: int, f_code: int) -> int:
    """Decode one vector component given its predictor."""
    code = MOTION_CODE.decode(reader)
    f = 1 << (f_code - 1)
    if f == 1 or code == 0:
        delta = code
    else:
        residual = reader.read_bits(f_code - 1)
        delta = 1 + f * (abs(code) - 1) + residual
        if code < 0:
            delta = -delta
    # Inline of :func:`wrap_component` (this runs twice per coded
    # motion vector): wrap ``predictor + delta`` into the f_code window.
    value = predictor + delta
    low = -16 * f
    high = 16 * f - 1
    span = 32 * f
    while value < low:
        value += span
    while value > high:
        value -= span
    return value


def required_f_code(max_abs_component: int) -> int:
    """Smallest f_code whose window covers ``+/- max_abs_component``."""
    for f_code in range(1, 8):
        low, high = f_range(f_code)
        if -max_abs_component >= low and max_abs_component <= high:
            return f_code
    raise MotionRangeError(
        f"motion component {max_abs_component} exceeds every f_code window"
    )
