"""Synchronisation objects for the simulator.

These are plain state holders; the blocking/waking logic lives in the
engine, which is the only place virtual time advances.  All waiter
queues are FIFO, making every simulation deterministic.
"""

from __future__ import annotations

from collections import deque


class Lock:
    """A mutex.  Contended acquisition time is charged as sync wait."""

    __slots__ = ("name", "holder", "waiters", "acquisitions", "contentions")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.holder: object | None = None
        self.waiters: deque = deque()
        #: Total acquisitions (diagnostics: lock traffic).
        self.acquisitions = 0
        #: Acquisitions that had to wait.
        self.contentions = 0


class Condition:
    """A broadcast condition: signalling wakes *all* current waiters.

    Waiters re-check their predicate on wakeup (standard condition
    semantics); the engine charges the blocked interval as sync wait.
    """

    __slots__ = ("name", "waiters", "signals")

    def __init__(self, name: str = "cond") -> None:
        self.name = name
        self.waiters: deque = deque()
        #: Number of signal operations (diagnostics).
        self.signals = 0


class Barrier:
    """A reusable counting barrier for a fixed participant count."""

    __slots__ = ("name", "parties", "arrived", "generation")

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {parties}")
        self.name = name
        self.parties = parties
        self.arrived: deque = deque()
        self.generation = 0
