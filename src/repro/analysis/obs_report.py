"""Render utilization and stall reports from a Chrome trace file.

The paper's Figs. 5-7 are per-process execution timelines with the
busy/stall/synchronisation split measured by pixie/prof and source
instrumentation.  This module reproduces that analysis from a trace
written by ``python -m repro decode ... --trace out.json``:

* **span totals** — total wall milliseconds per span name (Table 2's
  "where does decode time go", but measured, not modelled);
* **per-process utilization** — for each pid, the union of its
  non-stall span intervals divided by the trace's wall span (the
  paper's processor-utilization plots);
* **stall breakdown** — ``cat == "stall"`` events grouped by their
  canonical reason (``args.reason``, :mod:`repro.obs.stalls`
  vocabulary), as a fraction of aggregate process time — directly
  comparable with the simulator's ``DecodeRunResult.stall_breakdown``
  and the mp pipeline's ``MPGopDecoder.stall_breakdown``.

PR-8 adds ``--merged``: given the *server* trace shard first and any
number of client shards after it, the shards are joined onto the
server's clock (:func:`repro.obs.propagate.merge_traces`, using each
client's recorded ``clock.sync`` offset), every client picture is
validated against its matching server send
(:func:`~repro.obs.propagate.validate_joins`), and the end-to-end
latency waterfall — ``decode → pace → wire → reassemble → conceal →
deadline lateness`` — is printed per stage.  A join failure (a client
picture with no matching server span) exits nonzero, which is what the
CI telemetry job gates on.

Usage::

    python -m repro.analysis.obs_report out.json
    python -m repro.analysis.obs_report --merged server.json client*.json

Exported timestamps/durations are microseconds (Chrome trace format),
rebased so the earliest event is at 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

from repro.analysis.report import TextTable
from repro.obs.propagate import (
    TraceJoinError,
    clock_syncs,
    merge_traces,
    sessions_in,
    validate_joins,
    waterfall,
)
from repro.obs.stalls import format_stall_breakdown
from repro.obs.trace import validate_chrome_trace


def load_trace(path: str) -> dict:
    """Load and validate a Chrome trace-event JSON document."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_chrome_trace(doc)
    return doc


# ----------------------------------------------------------------------
# span analysis
# ----------------------------------------------------------------------
def complete_events(doc: dict) -> list[dict]:
    """All ``ph == "X"`` (complete) events in the trace."""
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


def span_totals(doc: dict) -> dict[str, dict]:
    """Aggregate complete events by name: count, total/mean ms."""
    totals: dict[str, dict] = {}
    for e in complete_events(doc):
        rec = totals.setdefault(e["name"], {"count": 0, "total_us": 0.0})
        rec["count"] += 1
        rec["total_us"] += e.get("dur", 0)
    for rec in totals.values():
        rec["total_ms"] = rec["total_us"] / 1e3
        rec["mean_ms"] = rec["total_ms"] / rec["count"]
        del rec["total_us"]
    return totals


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly overlapping intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    covered += cur_end - cur_start
    return covered


def process_names(doc: dict) -> dict[int, str]:
    """pid -> process_name from the trace's metadata events."""
    names: dict[int, str] = {}
    for e in doc["traceEvents"]:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            names[e["pid"]] = e.get("args", {}).get("name", str(e["pid"]))
    return names


def utilization(doc: dict) -> dict[int, dict]:
    """Per-pid busy fraction over the trace's wall span.

    Busy time is the interval union of each pid's non-stall complete
    events (nested spans don't double-count); the wall span is the
    whole trace's extent, so a worker that joins late or idles early
    shows correspondingly lower utilization — exactly the effect the
    paper's Fig. 5 timelines visualise for the scan/display bottleneck.
    """
    events = complete_events(doc)
    if not events:
        return {}
    wall_start = min(e["ts"] for e in events)
    wall_end = max(e["ts"] + e.get("dur", 0) for e in events)
    wall = max(wall_end - wall_start, 1e-9)
    by_pid: dict[int, list[tuple[float, float]]] = defaultdict(list)
    stall_by_pid: dict[int, float] = defaultdict(float)
    for e in events:
        if e.get("cat") == "stall":
            stall_by_pid[e["pid"]] += e.get("dur", 0)
        else:
            by_pid[e["pid"]].append((e["ts"], e["ts"] + e.get("dur", 0)))
    out: dict[int, dict] = {}
    # Include pids that only emitted metadata (fully idle workers on
    # streams with fewer GOPs than workers): they show 0% utilization.
    all_pids = set(by_pid) | set(stall_by_pid) | set(process_names(doc))
    for pid in sorted(all_pids):
        busy = _union_length(by_pid.get(pid, []))
        out[pid] = {
            "busy_ms": busy / 1e3,
            "stall_ms": stall_by_pid.get(pid, 0.0) / 1e3,
            "wall_ms": wall / 1e3,
            "busy_fraction": busy / wall,
        }
    return out


def stall_breakdown(doc: dict) -> dict[str, float]:
    """Fraction of aggregate process time blocked, per canonical reason.

    Groups ``cat == "stall"`` complete events by ``args.reason``
    (falling back to the event name), with denominator
    ``wall span x number of pids`` — the trace-file analogue of the
    simulator's ``finish_cycles x processes`` and the mp pipeline's
    ``wall seconds x processes`` denominators.
    """
    events = complete_events(doc)
    if not events:
        return {}
    wall_start = min(e["ts"] for e in events)
    wall_end = max(e["ts"] + e.get("dur", 0) for e in events)
    pids = {e["pid"] for e in events}
    denominator = (wall_end - wall_start) * len(pids)
    by_reason: dict[str, float] = defaultdict(float)
    for e in events:
        if e.get("cat") != "stall":
            continue
        reason = e.get("args", {}).get("reason", e["name"])
        by_reason[reason] += e.get("dur", 0)
    total_stall = sum(by_reason.values())
    denominator = max(denominator, total_stall, 1e-9)
    return {r: v / denominator for r, v in sorted(by_reason.items())}


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def render_report(doc: dict) -> str:
    """The full three-table report as one string."""
    sections: list[str] = []

    totals = span_totals(doc)
    table = TextTable(
        ["span", "count", "total ms", "mean ms"], title="span totals"
    )
    for name in sorted(totals, key=lambda n: -totals[n]["total_ms"]):
        rec = totals[name]
        table.add_row(
            name, rec["count"],
            round(rec["total_ms"], 3), round(rec["mean_ms"], 3),
        )
    sections.append(table.render())

    names = process_names(doc)
    util = utilization(doc)
    table = TextTable(
        ["process", "busy ms", "stall ms", "busy %", ""],
        title="per-process utilization",
    )
    for pid, rec in util.items():
        table.add_row(
            names.get(pid, str(pid)),
            round(rec["busy_ms"], 2),
            round(rec["stall_ms"], 2),
            f"{rec['busy_fraction'] * 100:.1f}%",
            _bar(rec["busy_fraction"]),
        )
    sections.append(table.render())

    breakdown = stall_breakdown(doc)
    if breakdown:
        sections.append(
            format_stall_breakdown(
                breakdown, title="stall breakdown (% of process time)"
            )
        )
    else:
        sections.append("stall breakdown: no stall events recorded")

    return "\n\n".join(sections)


def render_merged_report(doc: dict) -> str:
    """Join summary + clock-sync bounds + end-to-end waterfall table."""
    sections: list[str] = []

    stats = validate_joins(doc)
    sections.append(
        "merged trace: {joined} pictures joined across the socket "
        "boundary ({client} client spans, {server} server spans; "
        "server pids {spids}, client pids {cpids}; sessions: "
        "{sessions})".format(
            joined=stats["joined"],
            client=stats["client_spans"],
            server=stats["server_spans"],
            spids=sorted(stats["server_pids"]),
            cpids=sorted(stats["client_pids"]),
            sessions=", ".join(str(s) for s in sessions_in(doc)) or "-",
        )
    )

    syncs = clock_syncs(doc)
    if syncs:
        table = TextTable(
            ["session", "offset ms", "rtt ms", "error bound ms"],
            title="clock sync (per client shard)",
        )
        for sync in syncs:
            table.add_row(
                sync.get("session", "-"),
                round(sync["offset_ns"] / 1e6, 3),
                round(sync["rtt_ns"] / 1e6, 3),
                round(sync["error_bound_ns"] / 1e6, 3),
            )
        sections.append(table.render())

    stages = waterfall(doc)
    table = TextTable(
        ["stage", "count", "mean ms", "p50 ms", "p99 ms", "max ms"],
        title="end-to-end latency waterfall (parse→display deadline)",
    )
    for stage, rec in stages.items():
        table.add_row(
            stage, rec["count"],
            round(rec["mean_ms"], 3), round(rec["p50_ms"], 3),
            round(rec["p99_ms"], 3), round(rec["max_ms"], 3),
        )
    sections.append(table.render())

    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.obs_report",
        description="Per-worker utilization and stall report from a "
        "--trace Chrome trace file",
    )
    parser.add_argument(
        "trace", nargs="+",
        help="trace JSON written by --trace (with --merged: the server "
        "shard first, then client shards)",
    )
    parser.add_argument(
        "--merged", action="store_true",
        help="merge server + client shards onto the server clock, "
        "validate cross-boundary joins, print the e2e waterfall",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="with --merged: also write the merged Chrome trace here",
    )
    args = parser.parse_args(argv)
    if not args.merged and len(args.trace) > 1:
        parser.error("multiple trace files require --merged")

    if args.merged:
        docs = [load_trace(path) for path in args.trace]
        try:
            doc = merge_traces(docs)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(doc, fh)
        print(
            "merged {n} shard(s): {events} events".format(
                n=len(docs), events=len(doc["traceEvents"])
            )
        )
        print()
        try:
            print(render_merged_report(doc))
        except TraceJoinError as exc:
            print(f"join validation FAILED: {exc}", file=sys.stderr)
            return 1
        return 0

    doc = load_trace(args.trace[0])
    print(f"{args.trace[0]}: {len(doc['traceEvents'])} events")
    print()
    print(render_report(doc))
    return 0


if __name__ == "__main__":
    sys.exit(main())
