"""From-scratch MPEG-2 codec substrate.

This package implements the codec the paper parallelizes: the layered
sequence/GOP/picture/slice/macroblock/block syntax, variable-length
coding, zig-zag scanning, quantization, the 8x8 DCT/IDCT, motion
estimation and compensation, a complete encoder and the sequential
reference decoder.

The public surface mirrors the MPEG Software Simulation Group decoder
the paper builds on:

* :func:`repro.mpeg2.encoder.encode_sequence` — frames -> bitstream
* :class:`repro.mpeg2.decoder.SequenceDecoder` — bitstream -> frames,
  with slice- and GOP-granular entry points used by the parallel
  decoders in :mod:`repro.parallel`.

Decoding runs on one of two engines (``SequenceDecoder(engine=...)``):
the per-macroblock ``"scalar"`` oracle, or the default ``"batched"``
two-phase fast path (:mod:`repro.mpeg2.batched`) that mirrors the
paper's parse/reconstruct decomposition — bit-identical output and
work counters, several times the wall-clock speed.
"""

from repro.mpeg2.constants import PictureType, MACROBLOCK_SIZE, BLOCK_SIZE
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.decoder import ENGINES, SequenceDecoder, decode_sequence
from repro.mpeg2.gop import GopStructure

__all__ = [
    "PictureType",
    "MACROBLOCK_SIZE",
    "BLOCK_SIZE",
    "ENGINES",
    "EncoderConfig",
    "encode_sequence",
    "SequenceDecoder",
    "decode_sequence",
    "GopStructure",
]
