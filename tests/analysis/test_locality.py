"""Locality analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import amdahl_speedup, spatial_locality_score, working_set_knee


class TestWorkingSetKnee:
    def test_finds_collapse_point(self):
        rates = {4096: 0.30, 8192: 0.28, 16384: 0.05, 32768: 0.03}
        assert working_set_knee(rates) == 16384

    def test_no_knee_returns_none(self):
        rates = {4096: 0.30, 8192: 0.25, 16384: 0.20}
        assert working_set_knee(rates) is None

    def test_zero_base_rate(self):
        assert working_set_knee({1024: 0.0, 2048: 0.0}) == 1024

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            working_set_knee({})

    def test_threshold_controls_strictness(self):
        rates = {4096: 0.30, 8192: 0.12, 16384: 0.02}
        assert working_set_knee(rates, threshold=0.5) == 8192
        assert working_set_knee(rates, threshold=0.1) == 16384


class TestSpatialLocality:
    def test_perfect_halving_scores_two(self):
        rates = {16: 0.8, 32: 0.4, 64: 0.2}
        assert spatial_locality_score(rates) == pytest.approx(2.0)

    def test_no_locality_scores_one(self):
        rates = {16: 0.5, 32: 0.5, 64: 0.5}
        assert spatial_locality_score(rates) == pytest.approx(1.0)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            spatial_locality_score({64: 0.1})

    def test_zero_tail_skipped(self):
        rates = {16: 0.4, 32: 0.2, 64: 0.0}
        assert spatial_locality_score(rates) == pytest.approx(2.0)


class TestAmdahl:
    def test_no_serial_part_is_linear(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)

    def test_all_serial_is_one(self):
        assert amdahl_speedup(1.0, 64) == pytest.approx(1.0)

    def test_half_serial_approaches_two(self):
        assert amdahl_speedup(0.5, 10_000) == pytest.approx(2.0, rel=1e-3)

    def test_range_checked(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)
