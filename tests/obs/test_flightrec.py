"""Flight recorder: bounded rings, dump files, service integration."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.flightrec import DEFAULT_CAPACITY, FlightRecorder


class TestRing:
    def test_records_ordered_events(self):
        rec = FlightRecorder()
        rec.record("s", "a", x=1)
        rec.record("s", "b", y=2)
        events = rec.events("s")
        assert [e["kind"] for e in events] == ["a", "b"]
        assert events[0]["x"] == 1
        assert all("t_ns" in e for e in events)

    def test_sessions_isolated(self):
        rec = FlightRecorder()
        rec.record("a", "one")
        rec.record("b", "two")
        assert [e["kind"] for e in rec.events("a")] == ["one"]
        assert [e["kind"] for e in rec.events("b")] == ["two"]
        assert set(rec.sessions()) == {"a", "b"}

    def test_ring_bounded_and_counts_dropped(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("s", f"e{i}")
        events = rec.events("s")
        assert len(events) == 4
        assert [e["kind"] for e in events] == ["e6", "e7", "e8", "e9"]
        assert rec.dump("s", "test")["dropped"] == 6

    def test_default_capacity(self):
        rec = FlightRecorder()
        for i in range(DEFAULT_CAPACITY + 5):
            rec.record("s", "e")
        assert len(rec.events("s")) == DEFAULT_CAPACITY

    def test_discard_frees_session(self):
        rec = FlightRecorder()
        rec.record("s", "e")
        rec.discard("s")
        assert rec.events("s") == []
        assert "s" not in rec.sessions()

    def test_deterministic_clock_injectable(self):
        ticks = iter(range(100, 200))
        rec = FlightRecorder(clock=lambda: next(ticks))
        rec.record("s", "a")
        rec.record("s", "b")
        assert [e["t_ns"] for e in rec.events("s")] == [100, 101]


class TestDump:
    def test_dump_shape(self):
        rec = FlightRecorder(capacity=8)
        rec.record("s#0", "net.hello", conn=1)
        doc = rec.dump("s#0", "failed")
        assert doc["session"] == "s#0"
        assert doc["reason"] == "failed"
        assert doc["capacity"] == 8
        assert doc["dropped"] == 0
        assert len(doc["events"]) == 1
        json.dumps(doc)  # JSON-safe end to end

    def test_dump_to_writes_numbered_files(self, tmp_path):
        rec = FlightRecorder()
        rec.record("s#0", "e")
        p1 = rec.dump_to(str(tmp_path), "s#0", "failed")
        p2 = rec.dump_to(str(tmp_path), "s#0", "failed")
        assert p1 != p2  # a second dump never overwrites the first
        for p in (p1, p2):
            assert os.path.exists(p)
            with open(p) as fh:
                assert json.load(fh)["session"] == "s#0"

    def test_dump_filenames_sanitized(self, tmp_path):
        rec = FlightRecorder()
        rec.record("weird/../name#0", "e")
        path = rec.dump_to(str(tmp_path), "weird/../name#0", "why not")
        assert os.path.dirname(path) == str(tmp_path)
        base = os.path.basename(path)
        assert "/" not in base and "#" not in base and " " not in base


class TestServiceIntegration:
    """The service dumps a ring when a session dies."""

    def _corrupt_stream(self) -> bytes:
        return b"\x00\x00\x01\xb3" + b"\x00" * 64

    def test_scan_failure_dumps_flight_ring(self, tmp_path):
        from repro.serve.service import DecodeService

        svc = DecodeService(workers=0, flight_dir=str(tmp_path))
        svc.submit("bad", self._corrupt_stream())
        svc.run()
        assert svc.sessions["bad"].status.value == "failed"
        assert svc.flight_dumps, "no flight dump recorded"
        path = svc.flight_dumps[0]
        assert os.path.exists(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["session"] == "bad"
        kinds = [e["kind"] for e in doc["events"]]
        assert "scan.failed" in kinds

    def test_no_flight_dir_means_no_dump_files(self, tmp_path):
        from repro.serve.service import DecodeService

        svc = DecodeService(workers=0)
        svc.submit("bad", self._corrupt_stream())
        svc.run()
        assert svc.sessions["bad"].status.value == "failed"
        assert svc.flight_dumps == []
