"""Real-hardware GOP-level parallel decoding with OS processes.

Everything else in :mod:`repro.parallel` runs the paper's scan/worker/
display architecture on the *simulated* SMP, because CPython threads
cannot show real speedup under the GIL.  This module escapes the GIL
the same way the paper escaped a single R4400: separate OS processes
(`multiprocessing`), one per worker, each decoding whole closed GOPs.

This module is now a thin *planner* over :mod:`repro.exec` — the
shared-memory substrate (:mod:`repro.exec.shm`), the persistent
worker-pool backend, liveness polling, teardown ordering, and the
GOP-chunk worker body all live in :mod:`repro.exec.backend` and are
re-exported here, so historical imports keep working.

The paper's three roles map onto real primitives:

* **scan** — the parent builds a :class:`repro.mpeg2.index.StreamIndex`
  (start-code scan, no decoding) and splits it into per-GOP byte-range
  tasks (:func:`repro.exec.backend.scan_gop_tasks` /
  :func:`repro.mpeg2.index.gop_byte_ranges`).
* **workers** — a *persistent*, pre-forked :class:`multiprocessing.Pool`
  (:func:`repro.exec.backend.get_persistent_pool`), created once per
  ``(workers, start_method)`` and reused across every decode in the
  process, so repeated runs pay fork + interpreter warm-up exactly
  once.  The coded stream is published **once** into POSIX shared
  memory (:class:`StreamArena`); workers attach by name and slice
  their GOP's bytes straight out of the segment — the bitstream never
  crosses the task pipe.  Each worker rebuilds a stand-alone substream
  (sequence-header prefix + GOP bytes), decodes it with the batched
  :class:`~repro.mpeg2.decoder.SequenceDecoder`, and writes the
  decoded planes straight into a shared-memory frame pool.  Tasks are
  *chunks* of consecutive GOPs
  (:func:`repro.exec.backend.coalesce_gop_tasks`) so streams with many
  more GOPs than workers cost one queue message per chunk — dispatch
  and result publication both — instead of one per GOP; only tiny
  metadata (temporal references + work counters) crosses the process
  boundary through pickling, and pixel arrays never do.
* **display** — the parent merges completed GOPs back into display
  order through a reorder buffer (:func:`_merge_in_order`), reading
  frames out of the shared pool.

``workers=0`` runs the identical scan/decode/merge pipeline in-process
(no ``fork``, no shared memory) so functional tests are deterministic
on constrained CI; ``workers>=1`` is the real-silicon path measured by
``benchmarks/perf_parallel.py``.

Bit-exactness: closed GOPs carry no coded state across their
boundaries, so a GOP decoded from its substream is identical to the
same GOP decoded mid-stream; frames within a GOP are display-ordered
by ``decode_gop`` and closed GOPs appear in display order in the
stream.  The mp decoder therefore reproduces
``SequenceDecoder.decode_all`` bit-for-bit, counters included — pinned
by ``tests/parallel/test_mp_parity.py`` and the golden-vector suite.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Callable, Iterator

from repro.exec.backend import (  # noqa: F401  (re-exported legacy names)
    LIVENESS_POLL_S,
    ChunkResult,
    GopChunk,
    GopResult,
    GopTask,
    _decode_gop_chunk,
    _decode_substream,
    _init_persistent_worker,
    coalesce_gop_tasks,
    collect_trace_shards,
    get_persistent_pool,
    invalidate_persistent_pool,
    iter_chunk_results,
    persistent_worker_pids,
    scan_gop_tasks,
    shutdown_persistent_pools,
)
from repro.exec.shm import (  # noqa: F401  (re-exported legacy names)
    FrameLayout,
    FramePoolBase,
    LocalFramePool,
    SharedFramePool,
    StreamArena,
)
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import ENGINES
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    StreamIndex,
    build_index,
    sequence_prefix,
)
from repro.obs.metrics import metrics
from repro.obs.stalls import REASON_MERGE, StallTable
from repro.obs.trace import trace_complete, trace_span, tracing_enabled


# ----------------------------------------------------------------------
# display side
# ----------------------------------------------------------------------
def _merge_in_order(
    results: Iterator[GopResult],
    gop_count: int,
    on_hold: Callable[[int, float], None] | None = None,
    on_depth: Callable[[int], None] | None = None,
) -> Iterator[GopResult]:
    """Display-order merger: reorder GOP completions into stream order.

    Workers finish in load-dependent order; the display process must
    emit GOP 0's pictures before GOP 1's.  A reorder buffer holds
    early completions until their turn — the same role the paper's
    display process plays with its picture reorder queue.

    Observability hooks (both optional): ``on_hold(gop, seconds)``
    fires when an out-of-order completion is finally released, with
    the time it sat in the reorder buffer (the ``merge.reorder``
    stall); ``on_depth(n)`` reports the buffer depth after each
    arrival (the ``queue.depth`` gauge).
    """
    pending: dict[int, GopResult] = {}
    held_since: dict[int, int] = {}
    next_gop = 0
    for result in results:
        pending[result.gop] = result
        if result.gop != next_gop:
            held_since[result.gop] = time.monotonic_ns()
        if on_depth is not None:
            on_depth(len(pending))
        while next_gop in pending:
            out = pending.pop(next_gop)
            t0 = held_since.pop(next_gop, None)
            if t0 is not None and on_hold is not None:
                on_hold(next_gop, (time.monotonic_ns() - t0) / 1e9)
            yield out
            next_gop += 1
    if next_gop != gop_count:
        missing = sorted(set(range(next_gop, gop_count)) - pending.keys())
        raise RuntimeError(f"worker pool lost GOP results: {missing}")


# ----------------------------------------------------------------------
# the decoder
# ----------------------------------------------------------------------
class MPGopDecoder:
    """GOP-level parallel decoder on real cores (paper Section 5.1).

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (shared between the scan step and
        the workers, as in the paper).
    workers:
        ``0`` decodes in-process through the identical scan/merge
        pipeline (deterministic CI path, no processes).  ``>= 1``
        spawns exactly that many OS worker processes (the paper's
        ``P``); workers beyond the GOP count simply stay idle.
        ``None`` uses the available CPU count.
    engine:
        Decode engine for the workers (default ``"batched"``).
    resilient:
        Conceal corrupt slices instead of failing (worker-local,
        identical to the sequential decoder's behaviour).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"fork"`` on Linux keeps the coded bytes copy-on-write).
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        workers: int | None = None,
        engine: str = "batched",
        resilient: bool = False,
        start_method: str | None = None,
        _crash_gop: int | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.data = data
        if index is not None:
            self.index = index
        else:
            # The scan step (paper Fig. 4): a start-code walk, no
            # decoding.  Traced and timed so the timeline starts where
            # the paper's does.
            t0 = time.perf_counter()
            with trace_span("mp.scan", cat="mp", bytes=len(data)):
                self.index = build_index(data)
            metrics().counter("mp.scan_ms").inc(
                (time.perf_counter() - t0) * 1e3
            )
        self.workers = workers
        self.engine = engine
        self.resilient = resilient
        self.start_method = start_method
        #: Test-only fault injection: the worker that picks up this GOP
        #: dies with ``os._exit`` mid-stream (no result, no cleanup).
        self._crash_gop = _crash_gop
        self.seq = self.index.sequence_header
        self.layout = FrameLayout.for_display(self.seq.width, self.seq.height)
        self.tasks = scan_gop_tasks(self.index)
        self.prefix = sequence_prefix(data, self.index)
        #: Shared-pool bytes the last parallel run allocated (Fig. 8
        #: counterpart on real silicon); 0 for the in-process path.
        self.last_pool_bytes = 0
        #: Stall attribution for the last run (wall seconds, canonical
        #: :mod:`repro.obs.stalls` reasons; workers + merge combined).
        self.last_stalls = StallTable()
        #: Wall seconds of the last ``iter_gops`` drain.
        self.last_wall_seconds = 0.0

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason.

        Denominator: ``wall seconds x (worker processes + merger)`` —
        the real-silicon analogue of the simulator's
        ``finish_cycles x processes``, so the two breakdowns line up
        in ``repro.analysis.obs_report``.
        """
        procs = min(self.workers, len(self.tasks)) + 1 if self.workers else 1
        return self.last_stalls.breakdown(self.last_wall_seconds * procs)

    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the whole stream to display-ordered frames.

        Bit-identical to ``SequenceDecoder(data).decode_all()`` —
        frames *and* aggregate work counters.
        """
        frames: list[Frame] = []
        for _gop, gop_frames in self.iter_gops(counters):
            frames.extend(gop_frames)
        return frames

    def iter_gops(
        self, counters: WorkCounters | None = None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """Yield ``(gop_number, display_ordered_frames)`` in stream order."""
        if self.workers == 0:
            yield from self._iter_gops_inprocess(counters)
        else:
            yield from self._iter_gops_mp(counters)

    # ------------------------------------------------------------------
    def _iter_gops_inprocess(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        """The workers=0 fallback: same pipeline, no processes."""
        self.last_pool_bytes = 0
        self.last_stalls = StallTable()
        t_run = time.perf_counter()
        for task in self.tasks:
            substream = self.prefix + self.data[task.byte_start : task.byte_end]
            with trace_span(
                "mp.worker.decode_gop", cat="mp",
                gop=task.gop, pictures=task.picture_count,
            ):
                frames, local = _decode_substream(
                    substream, self.engine, self.resilient
                )
            if counters is not None:
                counters.add(local)
            yield task.gop, frames
        self.last_wall_seconds = time.perf_counter() - t_run

    def _iter_gops_mp(
        self, counters: WorkCounters | None
    ) -> Iterator[tuple[int, list[Frame]]]:
        # The pre-forked persistent pool for exactly the requested
        # worker count (the paper's P); extra workers idle when the
        # stream has fewer chunks, but the pool is shared by every
        # decode in the process, so fork cost is paid once.
        workers = self.workers
        picture_count = self.index.picture_count
        frame_pool = SharedFramePool(self.layout, slots=picture_count)
        arena = StreamArena(self.data)
        self.last_pool_bytes = frame_pool.nbytes
        self.last_stalls = StallTable()
        tasks_by_gop = {t.gop: t for t in self.tasks}
        reg = metrics()
        occupancy = reg.gauge("mp.frame_pool.occupancy")
        depth = reg.gauge("queue.depth")

        # When the parent is tracing, workers trace too: each writes a
        # raw-event shard the parent merges into one timeline below.
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-") if tracing_enabled() else None

        dispatch_epoch_ns = time.monotonic_ns()
        chunks = [
            GopChunk(
                arena_name=arena.name,
                arena_size=arena.size,
                prefix=self.prefix,
                pool_name=frame_pool.name,
                layout=self.layout,
                engine=self.engine,
                resilient=self.resilient,
                trace_dir=trace_dir,
                crash_gop=self._crash_gop,
                tasks=group,
                epoch_ns=dispatch_epoch_ns,
            )
            for group in coalesce_gop_tasks(self.tasks, workers)
        ]
        reg.counter("mp.dispatch.messages").inc(len(chunks))

        def on_hold(gop: int, seconds: float) -> None:
            # An out-of-order completion sat in the reorder buffer:
            # the display-order merge stall (paper's display process).
            self.last_stalls.record("merge", REASON_MERGE, seconds)
            now = time.monotonic_ns()
            trace_complete(
                "mp.merge.hold", "stall", now - int(seconds * 1e9),
                int(seconds * 1e9), gop=gop, reason=REASON_MERGE,
            )

        t_run = time.perf_counter()
        try:
            pool = get_persistent_pool(workers, self.start_method)
            completions = pool.imap_unordered(
                _decode_gop_chunk, chunks, chunksize=1
            )
            # The liveness-polled drain — timed queue.get stalls, dead
            # worker detection, per-chunk obs payload folding — is the
            # backend's iter_chunk_results; this planner only merges
            # display order and reads frames back out of the pool.
            for result in _merge_in_order(
                iter_chunk_results(
                    completions,
                    pool,
                    workers,
                    self.start_method,
                    self.last_stalls,
                    reg,
                    occupancy,
                ),
                len(self.tasks),
                on_hold=on_hold,
                on_depth=depth.set,
            ):
                if counters is not None:
                    counters.add(result.counters)
                task = tasks_by_gop[result.gop]
                with trace_span(
                    "mp.shm.read", cat="mp", gop=result.gop,
                    frames=len(result.temporal_references),
                ):
                    frames = [
                        frame_pool.read_frame(task.slot_base + j, ref)
                        for j, ref in enumerate(result.temporal_references)
                    ]
                occupancy.dec(len(result.temporal_references))
                yield result.gop, frames
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run
            frame_pool.close()
            frame_pool.unlink()
            arena.close()
            arena.unlink()
            if trace_dir is not None:
                self._collect_shards(trace_dir)

    @staticmethod
    def _collect_shards(trace_dir: str) -> None:
        collect_trace_shards(trace_dir)


def decode_parallel(
    data: bytes,
    workers: int | None = None,
    engine: str = "batched",
    resilient: bool = False,
    start_method: str | None = None,
) -> list[Frame]:
    """Convenience: parallel-decode a stream to display-ordered frames."""
    return MPGopDecoder(
        data,
        workers=workers,
        engine=engine,
        resilient=resilient,
        start_method=start_method,
    ).decode_all()
