"""Real-time paced display: deadlines, lateness, memory backpressure."""

from __future__ import annotations

import pytest

from repro.parallel import (
    GopLevelDecoder,
    ParallelConfig,
    SliceLevelDecoder,
    SliceMode,
    profile_stream,
)
from repro.parallel.pacing import DisplayPacer
from repro.parallel.profile import tile_profile
from repro.smp import CHALLENGE, challenge


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return tile_profile(p, 4)  # 8 GOPs, 104 pictures


def cfg(workers, rate=None):
    return ParallelConfig(
        workers=workers, machine=challenge(16), display_rate_hz=rate
    )


class TestDisplayPacer:
    def test_disabled_pacer_never_sleeps(self):
        pacer = DisplayPacer(CHALLENGE, None)
        assert not pacer.enabled
        assert pacer.on_ready(0, 100) is None
        assert pacer.on_ready(1, 5) is None
        assert pacer.late_pictures == 0

    def test_first_picture_sets_epoch(self):
        pacer = DisplayPacer(CHALLENGE, 30.0)
        assert pacer.on_ready(0, 1000) is None
        assert pacer.t0 == 1000
        assert pacer.startup_cycles == 1000

    def test_early_picture_sleeps_to_deadline(self):
        pacer = DisplayPacer(CHALLENGE, 30.0)
        pacer.on_ready(0, 0)
        period = pacer.period
        assert pacer.on_ready(1, period // 2) == period
        assert pacer.late_pictures == 0

    def test_late_picture_counted(self):
        pacer = DisplayPacer(CHALLENGE, 30.0)
        pacer.on_ready(0, 0)
        period = pacer.period
        assert pacer.on_ready(1, period + 500) is None
        assert pacer.late_pictures == 1
        assert pacer.max_lateness == 500

    def test_period_from_rate(self):
        pacer = DisplayPacer(CHALLENGE, 30.0)
        assert pacer.period == CHALLENGE.cycles(1 / 30)

    def test_period_requires_rate(self):
        with pytest.raises(ValueError):
            DisplayPacer(CHALLENGE, None).period


class TestPacedRuns:
    @pytest.mark.parametrize("decoder_kind", ["gop", "slice"])
    def test_fast_decode_meets_deadlines(self, profile, decoder_kind):
        """Tiny 96x64 pictures decode far above 30/s: no late pictures,
        and display times are spaced at (at least) the period."""
        config = cfg(4, rate=30.0)
        if decoder_kind == "gop":
            result = GopLevelDecoder(profile).run(config)
        else:
            result = SliceLevelDecoder(profile).run(config, SliceMode.IMPROVED)
        assert result.met_realtime
        assert result.late_pictures == 0
        period = CHALLENGE.cycles(1 / 30)
        gaps = [
            b - a for a, b in zip(result.display_times, result.display_times[1:])
        ]
        assert min(gaps) >= period * 0.99
        # Paced playback of 104 pictures at 30/s takes ~3.4 s.
        assert result.finish_seconds > 103 / 30

    def test_unpaced_run_is_faster_than_paced(self, profile):
        free = GopLevelDecoder(profile).run(cfg(4))
        paced = GopLevelDecoder(profile).run(cfg(4, rate=30.0))
        assert free.finish_cycles < paced.finish_cycles
        assert free.late_pictures == 0  # field unused without pacing

    def test_impossible_rate_reports_lateness(self, profile):
        """At an absurd display rate a single worker must miss
        deadlines, and the lateness is reported."""
        result = GopLevelDecoder(profile).run(cfg(1, rate=100_000.0))
        assert not result.met_realtime
        assert result.late_pictures > 0
        assert result.max_lateness_cycles > 0
        assert result.max_lateness_seconds > 0

    def test_paced_gop_memory_grows_against_display(self, profile):
        """When decode outruns a paced display, the GOP decoder's
        decoded-frame backlog grows — the real-time face of Fig. 8."""
        free = GopLevelDecoder(profile).run(cfg(6))
        paced = GopLevelDecoder(profile).run(cfg(6, rate=30.0))
        assert paced.memory.peak("frames") > free.memory.peak("frames")

    def test_startup_latency_reported(self, profile):
        result = SliceLevelDecoder(profile).run(
            cfg(4, rate=30.0), SliceMode.IMPROVED
        )
        assert result.startup_cycles > 0
        assert result.startup_seconds < 1.0

    def test_output_identical_under_pacing(self, medium_stream):
        base, _ = profile_stream(medium_stream)
        from repro.mpeg2.decoder import decode_sequence

        ref = decode_sequence(medium_stream)
        result = SliceLevelDecoder(base, medium_stream).run(
            ParallelConfig(
                workers=3, machine=challenge(16),
                display_rate_hz=30.0, execute=True,
            ),
            SliceMode.IMPROVED,
        )
        for a, b in zip(ref, result.frames):
            assert a.same_pixels(b)
