"""Frame storage: padding, cropping, sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpeg2.frame import Frame, frame_bytes


class TestBlank:
    def test_coded_size_rounds_up_to_macroblocks(self):
        f = Frame.blank(176, 120)
        assert (f.coded_width, f.coded_height) == (176, 128)
        assert (f.mb_width, f.mb_height) == (11, 8)
        assert (f.display_width, f.display_height) == (176, 120)

    def test_chroma_is_quarter_size(self):
        f = Frame.blank(64, 48)
        assert f.cb.shape == (24, 32)
        assert f.cr.shape == (24, 32)

    def test_nbytes(self):
        f = Frame.blank(64, 48)
        assert f.nbytes == 64 * 48 * 3 // 2


class TestFromPlanes:
    def test_edge_padding(self):
        y = np.arange(40 * 24, dtype=np.uint8).reshape(24, 40) % 200
        cb = np.full((12, 20), 80, dtype=np.uint8)
        cr = np.full((12, 20), 90, dtype=np.uint8)
        f = Frame.from_planes(y, cb, cr)
        assert f.coded_width == 48 and f.coded_height == 32
        # Padding replicates the last row/column.
        assert np.all(f.y[:24, 40:] == y[:, -1:])
        assert np.all(f.y[24:, :40] == y[-1:, :])
        got_y, got_cb, got_cr = f.display_view()
        assert np.array_equal(got_y, y)
        assert np.array_equal(got_cb, cb)
        assert np.array_equal(got_cr, cr)

    def test_bad_chroma_shape_rejected(self):
        y = np.zeros((24, 40), dtype=np.uint8)
        with pytest.raises(ValueError):
            Frame.from_planes(y, np.zeros((6, 10), dtype=np.uint8),
                              np.zeros((12, 20), dtype=np.uint8))


class TestEquality:
    def test_same_pixels_ignores_padding(self):
        y = np.random.default_rng(0).integers(0, 256, (24, 40)).astype(np.uint8)
        cb = np.zeros((12, 20), dtype=np.uint8)
        f1 = Frame.from_planes(y, cb, cb)
        f2 = Frame.from_planes(y, cb, cb)
        f2.y[30, 45] = 255  # padding area only
        assert f1.same_pixels(f2)

    def test_display_difference_detected(self):
        f1 = Frame.blank(32, 32)
        f2 = Frame.blank(32, 32)
        f2.y[5, 5] = 1
        assert not f1.same_pixels(f2)

    def test_copy_is_deep(self):
        f1 = Frame.blank(32, 32)
        f2 = f1.copy()
        f2.y[0, 0] = 7
        assert f1.y[0, 0] == 0


class TestFrameBytes:
    def test_matches_blank_frame(self):
        for w, h in [(176, 120), (352, 240), (704, 480), (1408, 960)]:
            assert frame_bytes(w, h) == Frame.blank(w, h).nbytes

    def test_paper_table1_picture_sizes(self):
        """Table 1 lists raw picture sizes 22K/82.5K/330K/1320K (the
        330K row is misprinted as 530K in the paper's OCR) — our 4:2:0
        frames land close to those, modulo macroblock padding."""
        assert frame_bytes(352, 240) == 126_720  # ~ 82.5K * 1.5 = 124K
        assert frame_bytes(1408, 960) == 2_027_520
