"""Figure 12 — synchronisation wait time over execution time.

Paper: the average sync/exec ratio of the workers grows with the
worker count; the improved version stays well below the simple one;
the curve's local *drops* mirror the Fig. 11 knees (reversed); the
task-queue component itself is negligible.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode
from repro.parallel.stats import sync_ratio

from benchmarks.conftest import PAPER_CASES

SWEEP = [2, 4, 6, 8, 10, 12, 14]
PICTURES = 130


def test_fig12_sync_over_exec(benchmark, env, record):
    def run():
        out = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=PICTURES)
            for mode in (SliceMode.SIMPLE, SliceMode.IMPROVED):
                for p in SWEEP:
                    result = env.run_slice(profile, p, mode)
                    out[(res, mode.value, p)] = sync_ratio(result)
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case"] + [f"P={p}" for p in SWEEP],
        title="Figure 12: avg worker sync/exec ratio, slice versions",
    )
    for res in PAPER_CASES:
        for mode in ("simple", "improved"):
            table.add_row(
                f"{res}/{mode}",
                *[round(ratios[(res, mode, p)], 3) for p in SWEEP],
            )
    record(table.render())

    for res in PAPER_CASES:
        # Sync grows with P for the simple version...
        assert ratios[(res, "simple", 14)] > ratios[(res, "simple", 2)], res
        # ...and the improved version sits below the simple one at scale.
        for p in (8, 10, 12, 14):
            assert (
                ratios[(res, "improved", p)] < ratios[(res, "simple", p)]
            ), (res, p)
