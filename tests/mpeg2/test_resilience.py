"""Error resilience: slice-level concealment on corrupt payloads.

Slice independence confines bitstream damage to one macroblock row —
the same property the fine-grained parallel decomposition exploits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder, decode_sequence
from repro.mpeg2.index import build_index
from repro.video.metrics import psnr


def corrupt_slice(stream: bytes, gop: int, pic: int, sl: int) -> bytes:
    """Zero out one slice's payload bytes on the wire.

    A zero run contains no ``00 00 01`` prefix, so the start-code
    structure (and hence the index) is untouched; the payload itself
    becomes garbage (quantiser_scale_code 0 -> guaranteed parse error).
    """
    idx = build_index(stream)
    s = idx.gops[gop].pictures[pic].slices[sl]
    out = bytearray(stream)
    out[s.payload_start : s.payload_end] = bytes(
        s.payload_end - s.payload_start
    )
    return bytes(out)


@pytest.fixture(scope="module")
def corrupt_stream(small_stream):
    # Corrupt a slice of the second P picture (coding position 4).
    return corrupt_slice(small_stream, gop=0, pic=4, sl=1)


class TestStrictDecoder:
    def test_corruption_raises(self, corrupt_stream):
        with pytest.raises(Exception):
            decode_sequence(corrupt_stream)

    def test_clean_stream_unaffected(self, small_stream):
        dec = SequenceDecoder(small_stream, resilient=True)
        counters = WorkCounters()
        frames = dec.decode_all(counters)
        assert counters.concealed_slices == 0
        assert len(frames) == 13


class TestResilientDecoder:
    def test_decodes_to_completion(self, corrupt_stream):
        dec = SequenceDecoder(corrupt_stream, resilient=True)
        counters = WorkCounters()
        frames = dec.decode_all(counters)
        assert len(frames) == 13
        assert counters.concealed_slices >= 1

    def test_damage_confined_to_row_and_dependents(
        self, small_stream, corrupt_stream
    ):
        clean = decode_sequence(small_stream)
        dirty = SequenceDecoder(corrupt_stream, resilient=True).decode_all()
        # Pictures decoded before the corrupted reference are bit-exact.
        damaged_pic_tref = build_index(small_stream).gops[0].pictures[4].temporal_reference
        for k in range(13):
            if k < min(damaged_pic_tref, 4):
                assert clean[k].same_pixels(dirty[k]), f"picture {k} changed"
        # The corrupted picture itself is still watchable (concealment
        # copies the reference row), not garbage.
        assert psnr(clean[damaged_pic_tref], dirty[damaged_pic_tref]) > 20.0

    def test_rows_outside_slice_unaffected_in_damaged_picture(
        self, small_stream, corrupt_stream
    ):
        clean = decode_sequence(small_stream)
        dirty = SequenceDecoder(corrupt_stream, resilient=True).decode_all()
        tref = build_index(small_stream).gops[0].pictures[4].temporal_reference
        a, b = clean[tref].y, dirty[tref].y
        # Slice 1 covers rows 0..15; slice 2 (corrupted) rows 16..31;
        # slice 3 rows 32..47.  Rows of slices 1 and 3 must be intact.
        assert np.array_equal(a[0:16], b[0:16])
        assert np.array_equal(a[32:48], b[32:48])
        assert not np.array_equal(a[16:32], b[16:32])

    def test_i_picture_concealment_without_reference(self, small_stream):
        corrupted = corrupt_slice(small_stream, gop=0, pic=0, sl=0)
        dec = SequenceDecoder(corrupted, resilient=True)
        frames = dec.decode_all()
        # First I-picture row concealed with grey (no reference exists).
        assert np.all(frames[0].y[0:16, :] == 128)

    def test_multiple_corrupt_slices(self, small_stream):
        s = corrupt_slice(small_stream, gop=0, pic=2, sl=0)
        s = corrupt_slice(s, gop=0, pic=3, sl=2)
        counters = WorkCounters()
        frames = SequenceDecoder(s, resilient=True).decode_all(counters)
        assert len(frames) == 13
        assert counters.concealed_slices == 2
