"""Network streaming under loss: the delivered-or-concealed sweep.

The serve benchmarks ask how many sessions one pool sustains; this
harness asks whether those sessions *survive the wire*.  It runs the
real `repro.net` stack — asyncio TCP server fronting the decode
service, real client reassembly and concealment — under the in-process
impairment shim, sweeping injected slice loss {0, 1, 5, 10}% against
concurrent session counts, and writes ``BENCH_net.json`` at the repo
root:

* ``profile`` — the stream's bandwidth/burstiness shape
  (:func:`repro.analysis.bandwidth.profile_stream`), the same numbers
  the server's admission gate consumes;
* ``sweep`` — one record per (loss, sessions) point: per-client
  delivery accounting (intact / concealed / shed / abandoned), the
  per-client lateness CDF at fixed percentiles
  (:meth:`WallClockPacer.lateness_percentiles` — p50/p90/p99/max, a
  stable shape instead of the old raw knot list; readers accept both),
  the server's per-connection SLO snapshot (burn rate, budget spent,
  breaches), concealment rates, and the shim's own drop ledger;
* ``gates`` — the acceptance summary the pytest gate asserts.

The gate (``perf`` marker, never tier-1): at every point with **loss
<= 5%**, zero failed sessions and every announced picture delivered or
concealed (no abandoned pictures); at 5% loss the shim must actually
drop slices and the clients must actually conceal them (the sweep has
teeth).  10% loss is recorded, not gated — the paper-grade claim stops
at 5%.

Run directly (``PYTHONPATH=src python benchmarks/perf_net.py``) or via
``pytest benchmarks/perf_net.py -m perf``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import sys
from dataclasses import asdict
from datetime import datetime, timezone
from time import perf_counter

import numpy as np
import pytest

from repro.analysis.bandwidth import profile_stream
from repro.net.client import stream_session
from repro.net.impair import ImpairmentProfile
from repro.net.server import NetServer
from repro.video.streams import TestStreamSpec, build_stream

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_net.json")

#: Injected per-slice loss probabilities (the issue's sweep).
LOSS_SWEEP = (0.0, 0.01, 0.05, 0.10)

#: Loss levels the acceptance gate applies to (<= 5%).
GATED_LOSS = 0.05

#: Concurrent client counts per loss level.
SESSION_COUNTS = (1, 2, 4)

#: Wire pacing rate.  Real-time-shaped (the lateness CDFs mean
#: something) but fast enough that the full sweep stays under a minute.
FPS = 30.0

IMPAIR_SEED = 0x10C5

#: Server pushes a live STATS frame (SLO snapshot) every N pictures, so
#: the bench exercises the telemetry path and each client's JSON block
#: carries the server-observed SLO state.
STATS_PUSH_PICTURES = 8

#: The streamed workload: IPB GOPs so temporal concealment has a
#: previous picture to borrow from and B slices actually drop.
NET_SPEC = TestStreamSpec(
    name="net/176x120/gop13x2",
    width=176,
    height=120,
    gop_size=13,
    pictures=26,
    bit_rate=1_500_000,
)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


async def _run_point(
    data: bytes, loss: float, sessions: int
) -> tuple[list, dict, float]:
    impairment = (
        ImpairmentProfile(loss=loss, seed=IMPAIR_SEED)
        if loss > 0
        else None
    )
    srv = NetServer(
        {"net": data},
        workers=0,
        fps=FPS,
        capacity=sessions,
        impairment=impairment,
        preroll_pictures=2,
        stats_push_pictures=STATS_PUSH_PICTURES,
    )
    await srv.start()
    t0 = perf_counter()
    try:
        results = await asyncio.gather(
            *[
                stream_session("127.0.0.1", srv.port, "net", timeout_s=120.0)
                for _ in range(sessions)
            ]
        )
    finally:
        wall = perf_counter() - t0
        report = await srv.aclose()
    return results, report, wall


def _point_record(loss, sessions, results, report, wall) -> dict:
    clients = []
    total_rows = 0
    concealed = 0
    for res in results:
        j = res.to_json()
        j["complete"] = res.complete
        clients.append(j)
        total_rows += sum(r.rows for r in res.receipts if not r.shed)
        concealed += res.concealed_slices
    dropped = sum(
        c.get("impair", {}).get("dropped", 0)
        for c in report["connections"]
    )
    counts = report["service"]["status_counts"]
    slo_blocks = [
        c["slo"] for c in report["connections"] if c.get("slo") is not None
    ]
    return {
        "loss": loss,
        "sessions": sessions,
        "wall_seconds": wall,
        "clients": clients,
        "all_complete": all(c["complete"] for c in clients),
        "abandoned_pictures": sum(c["abandoned"] for c in clients),
        "failed_sessions": counts.get("failed", 0),
        "status_counts": counts,
        "slices_dropped": dropped,
        "slices_concealed": concealed,
        "slices_expected": total_rows,
        "concealment_rate": concealed / total_rows if total_rows else 0.0,
        # Server-side SLO accounting, one block per connection.
        "slo": slo_blocks,
    }


def run(path: str = OUTPUT_PATH) -> dict:
    data = build_stream(NET_SPEC)
    profile = profile_stream(data, fps=FPS)
    sweep = []
    for loss in LOSS_SWEEP:
        for sessions in SESSION_COUNTS:
            results, report, wall = asyncio.run(
                _run_point(data, loss, sessions)
            )
            sweep.append(
                _point_record(loss, sessions, results, report, wall)
            )
    gated = [p for p in sweep if p["loss"] <= GATED_LOSS + 1e-9]
    at_gate = [p for p in sweep if abs(p["loss"] - GATED_LOSS) < 1e-9]
    gates = {
        "gated_loss_max": GATED_LOSS,
        "failed_sessions": sum(p["failed_sessions"] for p in gated),
        "abandoned_pictures": sum(p["abandoned_pictures"] for p in gated),
        "all_complete": all(p["all_complete"] for p in gated),
        "dropped_at_gate": sum(p["slices_dropped"] for p in at_gate),
        "concealed_at_gate": sum(p["slices_concealed"] for p in at_gate),
    }
    out = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cores(),
        "spec": asdict(NET_SPEC),
        "stream_bytes": len(data),
        "fps": FPS,
        "workers": 0,
        "impair_seed": IMPAIR_SEED,
        "profile": profile.to_json(),
        "sweep": sweep,
        "gates": gates,
    }
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    return out


def _format_report(report: dict) -> str:
    lines = [
        f"{'loss':<7}{'sessions':<10}{'complete':<10}{'concealed':<11}"
        f"{'dropped':<9}{'conceal %':<11}{'wall s':<8}"
    ]
    for p in report["sweep"]:
        lines.append(
            f"{p['loss'] * 100:<7.0f}{p['sessions']:<10}"
            f"{str(p['all_complete']):<10}{p['slices_concealed']:<11}"
            f"{p['slices_dropped']:<9}"
            f"{p['concealment_rate'] * 100:<11.2f}{p['wall_seconds']:<8.2f}"
        )
    g = report["gates"]
    lines.append(
        f"gate (loss <= {g['gated_loss_max']:.0%}): "
        f"failed {g['failed_sessions']}, abandoned "
        f"{g['abandoned_pictures']}, all complete {g['all_complete']}, "
        f"at 5%: dropped {g['dropped_at_gate']} / concealed "
        f"{g['concealed_at_gate']}"
    )
    return "\n".join(lines)


@pytest.mark.perf
def test_perf_net(record) -> None:
    """Perf gate: delivered-or-concealed at every loss level <= 5%."""
    report = run()
    record(_format_report(report))
    g = report["gates"]
    assert g["failed_sessions"] == 0, "sessions failed under gated loss"
    assert g["abandoned_pictures"] == 0, (
        "pictures abandoned under gated loss"
    )
    assert g["all_complete"], "a client ended incomplete under gated loss"
    # The sweep has teeth: at 5% loss the shim dropped real slices and
    # the clients concealed every one of them.
    assert g["dropped_at_gate"] > 0, "5% loss dropped nothing"
    assert g["concealed_at_gate"] == g["dropped_at_gate"], (
        "dropped and concealed slice counts diverge at the gate"
    )
    # Every client recorded a lateness CDF (the per-client evidence).
    # Current records carry fixed percentiles under ``lateness_cdf``;
    # pre-PR-8 files carried raw knots under ``miss_cdf`` — accept both
    # so the gate can read an old committed BENCH_net.json.
    for p in report["sweep"]:
        for c in p["clients"]:
            cdf = c.get("lateness_cdf") or c.get("miss_cdf")
            assert cdf, "client recorded no lateness CDF"
        # The telemetry path ran: the server tracked an SLO per
        # connection and pushed live snapshots on the wire.
        assert p["slo"], "no per-connection SLO blocks recorded"
        for c in p["clients"]:
            assert c["server_stats_pushes"] > 0, "no STATS pushes seen"


if __name__ == "__main__":
    rep = run()
    print(_format_report(rep))
    print(f"wrote {OUTPUT_PATH}")
