"""Shared-memory substrate for every parallel decode path.

The frame pool and bitstream arena were born in ``repro.parallel.mp``
and grew identical consumers in ``mp_slice`` and the serve layer; they
now live here so all three schedulers (and the unified executor) share
one copy.  ``repro.parallel.mp`` re-exports these names, so historical
imports keep working.

* :class:`FrameLayout` — byte layout of one decoded 4:2:0 frame slot.
* :class:`FramePoolBase` — slot-addressed decoded-frame storage over
  an arbitrary buffer.
* :class:`SharedFramePool` — the POSIX-shared-memory pool (real
  silicon path; workers write planes in place).
* :class:`LocalFramePool` — the same slot discipline on a plain
  ``numpy`` buffer (``workers=0`` paths; nothing to unlink).
* :class:`StreamArena` — the coded bitstream, published once into
  shared memory and parsed in place by every worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.mpeg2.frame import Frame


@dataclass(frozen=True)
class FrameLayout:
    """Byte layout of one decoded 4:2:0 frame slot in the shared pool.

    Slots are sized for *coded* planes (multiples of 16); display
    dimensions ride along so frames can be rebuilt exactly.
    """

    display_width: int
    display_height: int
    coded_width: int
    coded_height: int

    @classmethod
    def for_display(cls, width: int, height: int) -> "FrameLayout":
        blank = Frame.blank(width, height)
        return cls(
            display_width=width,
            display_height=height,
            coded_width=blank.coded_width,
            coded_height=blank.coded_height,
        )

    @property
    def y_bytes(self) -> int:
        return self.coded_width * self.coded_height

    @property
    def chroma_bytes(self) -> int:
        return (self.coded_width // 2) * (self.coded_height // 2)

    @property
    def slot_bytes(self) -> int:
        """Bytes per frame slot: Y + Cb + Cr, stored contiguously."""
        return self.y_bytes + 2 * self.chroma_bytes

    def slot_views(
        self, buf, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``uint8`` plane views over slot ``slot`` of ``buf``."""
        base = slot * self.slot_bytes
        ch, cw = self.coded_height, self.coded_width
        y = np.ndarray((ch, cw), dtype=np.uint8, buffer=buf, offset=base)
        cb = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes,
        )
        cr = np.ndarray(
            (ch // 2, cw // 2),
            dtype=np.uint8,
            buffer=buf,
            offset=base + self.y_bytes + self.chroma_bytes,
        )
        return y, cb, cr


class FramePoolBase:
    """Slot-addressed decoded-frame storage over an arbitrary buffer.

    Concrete pools supply ``_pool_buf`` (a writable buffer of at least
    ``layout.slot_bytes * slots`` bytes).  :class:`SharedFramePool`
    backs it with POSIX shared memory (the real-silicon path);
    :class:`LocalFramePool` with a plain ``numpy`` array (the
    ``workers=0`` in-process path and the serve layer's fallback).
    """

    layout: FrameLayout
    slots: int

    @property
    def _pool_buf(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Allocated pool size (the Fig. 8 quantity, measured for real)."""
        return self.layout.slot_bytes * self.slots

    def write_frame(self, slot: int, frame: Frame) -> None:
        """Copy ``frame``'s planes into ``slot`` (worker side)."""
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        y[:, :] = frame.y
        cb[:, :] = frame.cb
        cr[:, :] = frame.cr
        del y, cb, cr  # release exported buffers before any close()

    def read_frame(self, slot: int, temporal_reference: int) -> Frame:
        """Rebuild the :class:`Frame` stored in ``slot`` (display side)."""
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        frame = Frame(
            y=y.copy(),
            cb=cb.copy(),
            cr=cr.copy(),
            display_width=self.layout.display_width,
            display_height=self.layout.display_height,
            temporal_reference=temporal_reference,
        )
        del y, cb, cr
        return frame

    def view_frame(self, slot: int, temporal_reference: int = 0) -> Frame:
        """A zero-copy :class:`Frame` whose planes alias slot ``slot``.

        This is how the slice-level workers read reference pictures
        and write their own rows **in place**: no pixel ever crosses a
        process boundary.  The caller must drop every reference to the
        returned frame (and any views derived from it) before
        :meth:`close`, or the exported-buffer check in
        ``SharedMemory.close`` will raise.
        """
        y, cb, cr = self.layout.slot_views(self._pool_buf, slot)
        return Frame(
            y=y,
            cb=cb,
            cr=cr,
            display_width=self.layout.display_width,
            display_height=self.layout.display_height,
            temporal_reference=temporal_reference,
        )

    def close(self) -> None:  # pragma: no cover - overridden
        pass

    def unlink(self) -> None:  # pragma: no cover - overridden
        pass


class SharedFramePool(FramePoolBase):
    """A block of ``slots`` decoded-frame slots in POSIX shared memory.

    Workers write planes in place (:meth:`write_frame`); the display
    merger copies them out (:meth:`read_frame`).  The *owner* (parent
    process) creates and eventually unlinks the segment; workers attach
    by name and never unlink.
    """

    def __init__(
        self, layout: FrameLayout, slots: int, name: str | None = None
    ) -> None:
        self.layout = layout
        self.slots = slots
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(layout.slot_bytes * slots, 1)
            )
            self._owner = True
        else:
            # Attach-only: pool workers share the parent's resource
            # tracker (they are forked/spawned from it), so the segment
            # is registered exactly once and unlinked exactly once by
            # the owning parent — no per-worker unregister needed.
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False

    @property
    def _pool_buf(self):
        return self._shm.buf

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


class LocalFramePool(FramePoolBase):
    """The same slot discipline on a process-local ``numpy`` buffer.

    Used by the in-process (``workers=0``) paths — deterministic on
    constrained CI, never touches ``/dev/shm``, nothing to unlink.
    """

    def __init__(self, layout: FrameLayout, slots: int) -> None:
        self.layout = layout
        self.slots = slots
        self._arr = np.zeros(max(layout.slot_bytes * slots, 1), dtype=np.uint8)

    @property
    def _pool_buf(self):
        return self._arr.data

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


class StreamArena:
    """The coded bitstream, published once into POSIX shared memory.

    The low-overhead dispatch contract: the parent copies the stream
    into a segment exactly once per decode; every worker attaches by
    name and parses **in place** through :attr:`view`, materialising
    only the few-KB byte range of its own task.  Nothing about the
    bitstream ever rides the task pipe — with a spawn start method the
    per-worker cost drops from pickling the whole stream to pickling a
    segment name, and with fork it removes the initargs copy entirely.

    The parent (owner) creates and eventually unlinks the segment;
    workers attach and only ever :meth:`close`.
    """

    def __init__(
        self,
        data: bytes | None = None,
        *,
        name: str | None = None,
        size: int = 0,
    ) -> None:
        if name is None:
            if data is None:
                raise ValueError("StreamArena needs data (create) or name (attach)")
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(len(data), 1)
            )
            self._shm.buf[: len(data)] = data
            self.size = len(data)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.size = size
            self._owner = False
        self._view: memoryview | None = None

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def view(self) -> memoryview:
        """Zero-copy view of the published bytes (cached; released by
        :meth:`close`)."""
        if self._view is None:
            self._view = self._shm.buf[: self.size]
        return self._view

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()
