"""Section 3 — bit-rate robustness.

Paper: across streams of widely varying bit rates, decoding time for a
given picture size stays within 10-15% of the test streams', and the
*speedups are consistent* — bit rate does not change parallel
behaviour.  We encode the smallest configured resolution at half and
at 1.5x its nominal rate and compare decode cycles and speedup curves.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.smp import DEFAULT_COST_MODEL

from benchmarks.conftest import PAPER_CASES

SWEEP = [1, 4, 8, 14]


def test_sec3_bitrate_robustness(benchmark, env, record):
    res = next(iter(PAPER_CASES))
    nominal = PAPER_CASES[res][2]
    rates_to_try = [nominal // 2, nominal, nominal * 3 // 2]

    def run():
        out = {}
        for rate in rates_to_try:
            profile = env.profile(res, 13, bit_rate=rate)
            cycles = (
                DEFAULT_COST_MODEL.decode_cycles(profile.total_counters())
                / profile.picture_count
            )
            base = env.run_gop(profile, 1).pictures_per_second
            speedups = {
                p: env.run_gop(profile, p).pictures_per_second / base for p in SWEEP
            }
            out[rate] = (cycles, speedups)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    nominal_cycles = results[nominal][0]
    table = TextTable(
        ["bit rate", "cycles/pic (M)", "vs nominal %"]
        + [f"S(P={p})" for p in SWEEP],
        title=f"Section 3: bit-rate sensitivity, {res}, GOP version",
    )
    for rate, (cycles, speedups) in results.items():
        table.add_row(
            f"{rate/1e6:.2f}Mb/s",
            round(cycles / 1e6, 1),
            round((cycles / nominal_cycles - 1) * 100, 1),
            *[round(speedups[p], 2) for p in SWEEP],
        )
    record(
        table.render()
        + "\n\npaper: decode times within 10-15% across bit rates; speedups consistent"
    )

    for rate, (cycles, speedups) in results.items():
        # Decode time moves modestly with bit rate (paper: 10-15%; our
        # band is wider because the rate sweep here is 3x end to end).
        assert abs(cycles / nominal_cycles - 1) < 0.35, rate
        # Speedups are consistent across rates.
        for p in SWEEP:
            assert abs(speedups[p] - results[nominal][1][p]) < 0.12 * p, (rate, p)
