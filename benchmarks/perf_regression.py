"""Perf-regression guard: fresh numbers vs the committed baseline.

``BENCH_decode.json`` is committed at the repo root so the repository
carries its own perf trajectory.  This guard (``perf`` marker, never
tier-1) re-measures the headline stream with the same harness
(:mod:`benchmarks.perf_decode`) and fails if batched decode throughput
dropped more than :data:`ALLOWED_REGRESSION` below the committed
number — the tripwire that catches a "refactor" quietly costing 2x.

The committed baseline is read *before* any fresh run overwrites the
file.  Machine identity is checked loosely: if the baseline was
recorded on a different platform string, the comparison is
informational only (skip, not fail) — cross-machine wall-clock deltas
are not regressions.

A second gate audits the committed ``BENCH_parallel.json`` ``auto``
section: on every benchmarked vector, ``--grain auto`` must match or
beat the best fixed (grain, engine) configuration within the recorded
tolerance — regressed artifacts cannot be quietly committed.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from benchmarks.perf_decode import (
    DECODE_REPEATS,
    HEADLINE_SPEC,
    _cores,
    _traced_stage_breakdown,
    bench_stream,
)
from repro.obs.metrics import metrics
from repro.video.streams import build_stream

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_decode.json")
PARALLEL_BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")
VERDICT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "perf_regression_verdict.json",
)

#: Fail when fresh throughput drops below (1 - this) of the baseline.
ALLOWED_REGRESSION = 0.25


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def _breakdown_table(fresh: dict, baseline: dict | None) -> str:
    """Render a per-stage span table for the failure message.

    ``fresh`` is :func:`span_totals` output (stage -> count/total_ms/
    mean_ms) from a traced decode of the regressed engine, taken *at
    failure time*; when the committed baseline row carries its own
    ``stage_breakdown`` the ratio column points straight at the stage
    that regressed, otherwise the fresh totals alone still show where
    the wall-clock went.
    """
    baseline = baseline or {}
    have_base = bool(baseline)
    header = f"{'stage':<28}{'count':>7}{'total ms':>10}{'mean ms':>9}"
    if have_base:
        header += f"{'base ms':>10}{'ratio':>7}"
    lines = ["stage breakdown (regressed engine, one traced pass):", header]
    order = sorted(fresh, key=lambda n: -fresh[n]["total_ms"])
    for name in order:
        rec = fresh[name]
        line = (
            f"{name:<28}{rec['count']:>7d}{rec['total_ms']:>10.2f}"
            f"{rec['mean_ms']:>9.3f}"
        )
        if have_base:
            base_ms = baseline.get(name, {}).get("total_ms")
            if base_ms:
                line += f"{base_ms:>10.2f}{rec['total_ms'] / base_ms:>7.2f}"
            else:
                line += f"{'-':>10}{'-':>7}"
        lines.append(line)
    return "\n".join(lines)


def _diagnose_regression(engine: str, baseline_row: dict, record) -> str:
    """On failure: trace one decode, print + persist the stage split."""
    data = build_stream(HEADLINE_SPEC)
    fresh = _traced_stage_breakdown(data, engine=engine)
    table = _breakdown_table(fresh, baseline_row.get("stage_breakdown"))
    record(table)
    return table


def _write_verdict(verdict: dict) -> None:
    """Persist the comparison so CI logs/artifacts carry the numbers.

    The verdict also lands in the :mod:`repro.obs` metrics registry
    (gauges under ``perf.regression.*``), so a ``--stats``-style
    snapshot taken after the guard includes it.
    """
    reg = metrics()
    for key in ("baseline_pps", "measured_pps", "floor_pps", "ratio"):
        if verdict.get(key) is not None:
            reg.gauge(f"perf.regression.{key}").set(verdict[key])
    os.makedirs(os.path.dirname(VERDICT_PATH), exist_ok=True)
    doc = dict(verdict)
    doc["metrics_snapshot"] = reg.snapshot()
    with open(VERDICT_PATH, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _baseline_row(baseline: dict) -> dict | None:
    """The committed headline row, or ``None`` when it cannot anchor a
    comparison.

    A renamed or newly-added headline spec (or an older JSON schema)
    must surface as a clean "baseline missing stream" verdict — never
    a ``KeyError`` mid-comparison — so every access is defensive: the
    row only qualifies when both engines carry a throughput number.
    """
    row = (baseline.get("streams") or {}).get(HEADLINE_SPEC.name)
    if row is None:
        return None
    decode = row.get("decode") or {}
    for engine in ("scalar", "batched"):
        if "pictures_per_sec" not in (decode.get(engine) or {}):
            return None
    return row


@pytest.mark.perf
def test_perf_no_decode_regression(record) -> None:
    if not os.path.exists(BASELINE_PATH):
        pytest.skip("no committed BENCH_decode.json baseline")
    baseline = load_baseline()
    base_row = _baseline_row(baseline)
    if base_row is None:
        _write_verdict(
            {
                "stream": HEADLINE_SPEC.name,
                "verdict": "baseline-missing-stream",
                "detail": (
                    "committed BENCH_decode.json has no comparable "
                    f"row for {HEADLINE_SPEC.name!r} (renamed/added "
                    "spec or older schema); regenerate the baseline"
                ),
            }
        )
        pytest.skip(
            f"baseline missing stream {HEADLINE_SPEC.name!r} — "
            "renamed/added spec; regenerate BENCH_decode.json "
            "(clean verdict written, no comparison possible)"
        )

    fresh = bench_stream(HEADLINE_SPEC, repeats=DECODE_REPEATS)

    lines = [f"{'engine':<10}{'baseline p/s':>14}{'fresh p/s':>12}{'ratio':>8}"]
    ratios = {}
    for engine in ("scalar", "batched"):
        base_pps = base_row["decode"][engine]["pictures_per_sec"]
        fresh_pps = fresh["decode"][engine]["pictures_per_sec"]
        ratios[engine] = fresh_pps / base_pps
        lines.append(
            f"{engine:<10}{base_pps:>14.2f}{fresh_pps:>12.2f}"
            f"{ratios[engine]:>8.2f}"
        )
    record("\n".join(lines))

    floor = 1.0 - ALLOWED_REGRESSION
    base_pps = base_row["decode"]["batched"]["pictures_per_sec"]
    measured_pps = fresh["decode"]["batched"]["pictures_per_sec"]
    floor_pps = floor * base_pps
    same_platform = baseline.get("platform") == platform.platform()
    # Effective-core identity matters as much as platform identity:
    # a baseline recorded with a different affinity mask (container
    # resize, taskset) is not comparable wall-clock.  Old baselines
    # without the field are treated as same-machine.
    base_cores = baseline.get("cpu_affinity")
    same_cores = base_cores is None or base_cores == _cores()
    verdict = {
        "stream": HEADLINE_SPEC.name,
        "engine": "batched",
        "baseline_pps": base_pps,
        "measured_pps": measured_pps,
        "floor_pps": floor_pps,
        "ratio": ratios["batched"],
        "allowed_regression": ALLOWED_REGRESSION,
        "same_platform": same_platform,
        "baseline_cpu_affinity": base_cores,
        "cpu_affinity": _cores(),
        "verdict": (
            "informational"
            if not (same_platform and same_cores)
            else ("pass" if measured_pps >= floor_pps else "fail")
        ),
    }
    _write_verdict(verdict)

    if not same_platform:
        pytest.skip(
            "baseline recorded on a different platform "
            f"({baseline.get('platform')!r}); wall-clock comparison "
            "is informational only (measured "
            f"{measured_pps:.2f} p/s vs baseline {base_pps:.2f} p/s)"
        )
    if not same_cores:
        pytest.skip(
            f"baseline recorded with {base_cores} effective core(s), "
            f"this run has {_cores()}; wall-clock comparison is "
            "informational only (measured "
            f"{measured_pps:.2f} p/s vs baseline {base_pps:.2f} p/s)"
        )

    if measured_pps < floor_pps:
        # Don't just say "slower" — say *which stage*.  One traced
        # decode pass, aggregated by span name, lands in the failure
        # message, the -s output, and the persisted verdict.
        table = _diagnose_regression("batched", base_row, record)
        verdict["stage_breakdown"] = True
        _write_verdict(verdict)
        raise AssertionError(
            f"batched decode regressed: measured {measured_pps:.2f} "
            f"pictures/s vs floor {floor_pps:.2f} pictures/s "
            f"(baseline {base_pps:.2f} p/s x {floor:.2f} allowed; "
            f"ratio {ratios['batched']:.2f}x) — see {VERDICT_PATH} and "
            f"investigate before re-committing BENCH_decode.json\n{table}"
        )
    # The batched engine must also still beat scalar by a wide margin.
    scalar_pps = fresh["decode"]["scalar"]["pictures_per_sec"]
    if not measured_pps > 2.0 * scalar_pps:
        table = _diagnose_regression("batched", base_row, record)
        raise AssertionError(
            f"batched engine no longer beats scalar 2x: batched "
            f"{measured_pps:.2f} p/s vs scalar {scalar_pps:.2f} p/s "
            f"(floor {2.0 * scalar_pps:.2f} p/s)\n{table}"
        )


@pytest.mark.perf
def test_perf_auto_granularity_matches_best_fixed(record) -> None:
    """Gate on the committed BENCH_parallel.json ``auto`` section.

    Auto-granularity's whole claim is "you never pay for not knowing
    the right grain": on every benchmarked vector the committed
    numbers must show ``--grain auto`` within the tolerance of (or
    beating) the best fixed (grain, engine) configuration.  A commit
    of a regressed artifact — auto slower than the best fixed config —
    fails here; remeasure with ``benchmarks/perf_parallel.py`` after
    fixing the controller rather than re-committing the regression.
    """
    if not os.path.exists(PARALLEL_BASELINE_PATH):
        pytest.skip("no committed BENCH_parallel.json baseline")
    with open(PARALLEL_BASELINE_PATH) as fh:
        baseline = json.load(fh)
    auto = baseline.get("auto")
    if not auto or not auto.get("streams"):
        pytest.skip(
            "committed BENCH_parallel.json has no auto section "
            "(older schema); regenerate with benchmarks/perf_parallel.py"
        )

    tol = auto["tolerance"]
    lines = [
        f"{'stream':<26}{'auto s':>9}{'best fixed':>16}{'ratio':>8}"
    ]
    failures = []
    for name, row in auto["streams"].items():
        ratio = row["auto_vs_best_fixed"]
        lines.append(
            f"{name:<26}{row['auto']['seconds']:>9.3f}"
            f"{row['best_fixed']['config']:>12} "
            f"{row['best_fixed']['seconds']:>.3f}"
            f"{ratio:>8.3f}"
        )
        if not row["within_tolerance"] or ratio > 1.0 + tol:
            failures.append((name, ratio))
    record("\n".join(lines))
    assert not failures, (
        "committed BENCH_parallel.json shows auto-granularity slower "
        f"than the best fixed configuration (tolerance {tol}): "
        + ", ".join(f"{n} ratio {r:.3f}" for n, r in failures)
    )
