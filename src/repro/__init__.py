"""Reproduction of *Real-Time Parallel MPEG-2 Decoding in Software*.

Bilas, Fritts, Singh — IPPS 1997, Princeton University.

The package is organised as the paper's system is:

``repro.bitstream``
    Bit-level I/O and MPEG start-code handling.
``repro.mpeg2``
    A from-scratch MPEG-2 codec substrate: VLC coding, zig-zag scans,
    quantization, 8x8 DCT/IDCT, motion estimation/compensation, the
    sequence/GOP/picture/slice/macroblock/block syntax, a full encoder
    and a sequential reference decoder.
``repro.video``
    Synthetic test-video generation reproducing the paper's Table 1
    stream matrix (four resolutions x four GOP sizes).
``repro.smp``
    A deterministic discrete-event simulator of a bus-based
    cache-coherent shared-memory multiprocessor (the SGI Challenge of
    the paper) including a NUMA (Stanford DASH-like) configuration.
``repro.cache``
    A trace-driven cache simulator with miss classification — the
    TangoLite analogue used for the paper's locality study (Figs 13-15).
``repro.parallel``
    The paper's contribution: the scan/worker/display parallel decoder
    architecture with GOP-level, simple slice-level and improved
    slice-level task decompositions, plus the analytical memory model.
``repro.analysis``
    Speedup/load-balance/synchronization analysis and table rendering.
"""

from repro._version import __version__

__all__ = ["__version__"]
