"""Session cancellation: client disconnects must not poison the pool.

The latent teardown bug this guards against: cancelling a session
whose tasks are in flight used to be impossible (no CANCELLED state,
one-shot ``run()``), and naively finishing a lane while a worker still
holds its task would blow up ``scheduler.complete``/``requeue`` with
ValueError when the result lands.  The dynamic control plane
(:meth:`DecodeService.request_cancel`) has to shed the session at a
loop-safe point and *discard* late results — these tests disconnect
sessions at 100 random points and require the service, its scheduler,
and the shared worker pool to keep serving everyone else.
"""

from __future__ import annotations

import glob
import os
import random
import threading
import time

import pytest

from repro.serve.service import DecodeService
from repro.serve.session import SessionStatus

VECTOR_DIR = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "vectors"
)


def load(name: str) -> bytes:
    with open(os.path.join(VECTOR_DIR, f"{name}.m2v"), "rb") as fh:
        return fh.read()


def _shm_segments() -> list[str]:
    return glob.glob("/dev/shm/psm_*")


class TestDynamicCancellation:
    def test_hundred_random_disconnects_inprocess(self):
        """100 sessions, each cancelled after a random number of emitted
        pictures (0 = before any); stragglers left uncancelled must
        finish DONE and a fresh session submitted after the churn must
        decode — the pool is not poisoned."""
        data = load("ipb_64x48_gop13")
        rng = random.Random(0xD15C)
        svc = DecodeService(workers=0, capacity=4, max_queue=200)
        thread = threading.Thread(target=svc.run_forever, daemon=True)
        thread.start()
        try:
            cancel_after = {}
            sessions = []
            for i in range(100):
                name = f"s{i:03d}"
                # ~1/5 run to completion; the rest disconnect after
                # 0..12 emitted pictures.
                cancel_after[name] = (
                    None if rng.random() < 0.2 else rng.randrange(0, 13)
                )

                def make_sink(n=name):
                    count = [0]

                    def sink(display_index, frame):
                        count[0] += 1
                        limit = cancel_after[n]
                        if limit is not None and count[0] > limit:
                            svc.request_cancel(n)

                    return sink

                sess = svc.submit_dynamic(name, data, on_frame=make_sink())
                if cancel_after[name] == 0:
                    svc.request_cancel(name)
                sessions.append(sess)

            deadline = time.monotonic() + 120
            while (
                any(not s.terminal for s in sessions)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert all(s.terminal for s in sessions), (
                "sessions stuck after cancellation churn"
            )
            # Every session ended in a sanctioned state; nothing FAILED
            # and nothing REJECTED (queue depth covers all 100).
            statuses = {s.name: s.status for s in sessions}
            assert set(statuses.values()) <= {
                SessionStatus.DONE, SessionStatus.CANCELLED
            }, statuses
            # Uncancelled sessions always complete.
            for s in sessions:
                if cancel_after[s.name] is None:
                    assert s.status is SessionStatus.DONE
                    assert s.emitted_pictures == 13
            assert any(
                s.status is SessionStatus.CANCELLED for s in sessions
            ), "churn produced no cancellations; test lost its teeth"

            # The pool still serves: a fresh post-churn session decodes.
            fresh = svc.submit_dynamic("fresh", data)
            deadline = time.monotonic() + 30
            while not fresh.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fresh.status is SessionStatus.DONE
            assert fresh.emitted_pictures == 13
        finally:
            svc.shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()
        report = svc.report()
        assert report["status_counts"].get("failed", 0) == 0

    @pytest.mark.parametrize("drain", [False, True])
    def test_shutdown_modes(self, drain):
        data = load("two_gop_48x32")
        svc = DecodeService(workers=0, capacity=2)
        thread = threading.Thread(target=svc.run_forever, daemon=True)
        thread.start()
        sess = svc.submit_dynamic("a", data)
        svc.shutdown(drain=drain)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert sess.terminal
        if drain:
            assert sess.status is SessionStatus.DONE
        else:
            assert sess.status in (
                SessionStatus.DONE, SessionStatus.CANCELLED
            )

    def test_cancel_unknown_and_terminal_names_is_harmless(self):
        data = load("two_gop_48x32")
        svc = DecodeService(workers=0, capacity=2)
        thread = threading.Thread(target=svc.run_forever, daemon=True)
        thread.start()
        try:
            svc.request_cancel("never-existed")
            sess = svc.submit_dynamic("a", data)
            deadline = time.monotonic() + 30
            while not sess.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sess.status is SessionStatus.DONE
            svc.request_cancel("a")  # already DONE: ignored
            fresh = svc.submit_dynamic("b", data)
            deadline = time.monotonic() + 30
            while not fresh.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fresh.status is SessionStatus.DONE
        finally:
            svc.shutdown()
            thread.join(timeout=30)

    def test_submit_dynamic_requires_run_forever(self):
        svc = DecodeService(workers=0)
        with pytest.raises(RuntimeError):
            svc.submit_dynamic("a", b"")

    def test_static_run_unaffected_by_control_plane(self):
        # run() (the one-shot batch mode) still refuses post-run
        # submission and ignores stray cancel requests.
        data = load("two_gop_48x32")
        svc = DecodeService(workers=0, capacity=2)
        svc.submit("a", data)
        svc.request_cancel("a")  # applied at the first loop-safe point
        report = svc.run()
        assert report["status_counts"] == {"cancelled": 1}
        with pytest.raises(RuntimeError):
            svc.submit("b", data)


class TestDynamicCancellationMP:
    """Real worker processes: disconnects mid-GOP with tasks in flight."""

    def test_random_disconnects_do_not_poison_worker_pool(self):
        data = load("ipb_64x48_gop13")
        before = set(_shm_segments())
        rng = random.Random(7)
        svc = DecodeService(workers=2, capacity=3, max_queue=30)
        thread = threading.Thread(target=svc.run_forever, daemon=True)
        thread.start()
        try:
            sessions = []
            for i in range(12):
                sess = svc.submit_dynamic(f"m{i:02d}", data)
                sessions.append(sess)
                # Cancel at a random later moment — racing admission,
                # dispatch, decode, and completion on real processes.
                if i % 3 != 0:
                    time.sleep(rng.uniform(0.0, 0.02))
                    svc.request_cancel(sess.name)
            deadline = time.monotonic() + 120
            while (
                any(not s.terminal for s in sessions)
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert all(s.terminal for s in sessions)
            assert set(s.status for s in sessions) <= {
                SessionStatus.DONE, SessionStatus.CANCELLED
            }
            fresh = svc.submit_dynamic("fresh", data)
            deadline = time.monotonic() + 60
            while not fresh.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fresh.status is SessionStatus.DONE
            assert fresh.emitted_pictures == 13
        finally:
            svc.shutdown()
            thread.join(timeout=60)
        assert not thread.is_alive()
        # No /dev/shm leakage from cancelled sessions' pools/arenas.
        assert set(_shm_segments()) <= before
        assert svc.report()["status_counts"].get("failed", 0) == 0
