"""Figure 13 — read miss rate vs cache-line size (spatial locality).

Paper: for an 8-processor execution with 1 MB fully-associative
caches, the read miss rate roughly *halves* every time the line size
doubles — the decoder's accesses are overwhelmingly sequential, i.e.
excellent spatial locality.
"""

from __future__ import annotations

from repro.analysis import TextTable, doubling_ratios
from repro.cache import generate_decode_trace
from repro.cache.cachesim import line_size_sweep

from benchmarks.conftest import PAPER_CASES

LINE_SIZES = [16, 32, 64, 128, 256]
PROCESSORS = 8
TRACE_PICTURES = 7  # I P B B P B B: every picture type represented


def test_fig13_line_size_sweep(benchmark, env, record):
    res = next(iter(PAPER_CASES))  # smallest configured resolution
    data = env.stream(res, 13)

    def run():
        trace = generate_decode_trace(
            data, processors=PROCESSORS, max_pictures=TRACE_PICTURES
        )
        return line_size_sweep(trace, LINE_SIZES, capacity=1 << 20), len(trace)

    sweep, refs = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["line size", "read miss rate %", "ratio to previous"],
        title=(
            f"Figure 13: read miss rate vs line size "
            f"({res}, {PROCESSORS} procs, 1MB fully-assoc, {refs:,} refs)"
        ),
    )
    ratios = doubling_ratios(sweep)
    for i, ls in enumerate(LINE_SIZES):
        table.add_row(
            f"{ls}B",
            round(sweep[ls] * 100, 3),
            round(ratios[i - 1], 2) if i else "-",
        )
    record(table.render() + "\n\npaper: miss rate halves per line-size doubling")

    # Shape: each doubling cuts the miss rate substantially (the paper
    # reports a clean 2x; table/queue traffic keeps ours a bit under).
    for r in ratios:
        assert r > 1.35, f"doubling ratio only {r:.2f}"
    assert sum(ratios) / len(ratios) > 1.5
