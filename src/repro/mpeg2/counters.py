"""Work counters: the decoder's self-instrumentation.

The paper measures where decode time goes with ``pixie`` (ideal
instruction counts) and ``prof`` (actual time).  Our analogue: every
decode entry point fills a :class:`WorkCounters` with exact operation
counts — bits parsed, blocks transformed, pixels predicted/written —
and the cost model in :mod:`repro.smp.costs` converts those to
simulated R4400 cycles.  Keeping the counters separate from the cost
model lets benchmarks re-cost a single decode under different machine
models (SMP vs DASH) without re-decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class WorkCounters:
    """Operation counts accumulated while decoding some unit of stream."""

    #: Bits consumed from the bitstream (VLC + fixed fields).
    bits: int = 0
    #: VLC symbols decoded (table lookups).
    vlc_symbols: int = 0
    #: Headers parsed (sequence + GOP + picture + slice).
    headers: int = 0
    #: Macroblocks processed (decoded or skipped).
    macroblocks: int = 0
    #: Macroblocks reconstructed via motion compensation.
    mc_macroblocks: int = 0
    #: Macroblocks using bidirectional prediction (two fetches).
    bidir_macroblocks: int = 0
    #: 8x8 blocks run through inverse quantization + IDCT.
    idct_blocks: int = 0
    #: Nonzero coefficients decoded (run/level pairs).
    coefficients: int = 0
    #: Pixels fetched by motion compensation (all planes).
    mc_pixels: int = 0
    #: Pixels written to the output frame (all planes).
    pixels: int = 0
    #: Slices dropped and concealed by the resilient decoder.
    concealed_slices: int = 0

    def add(self, other: "WorkCounters") -> "WorkCounters":
        """Accumulate ``other`` into self (returns self for chaining)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "WorkCounters":
        return WorkCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))
