"""Macroblock-level ablation: the serial-parser ceiling."""

from __future__ import annotations

import pytest

from repro.parallel import ParallelConfig, profile_stream
from repro.parallel.macroblock_level import (
    MacroblockLevelDecoder,
    parse_cycles,
    reconstruction_cycles,
)
from repro.parallel.profile import tile_profile
from repro.smp import DEFAULT_COST_MODEL, challenge


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return tile_profile(p, 4)


def cfg(workers):
    return ParallelConfig(workers=workers, machine=challenge(16))


class TestWorkSplit:
    def test_split_partitions_total(self, profile):
        c = profile.total_counters()
        total = DEFAULT_COST_MODEL.decode_cycles(c)
        assert (
            parse_cycles(DEFAULT_COST_MODEL, c)
            + reconstruction_cycles(DEFAULT_COST_MODEL, c)
            == total
        )

    def test_parse_share_substantial(self, profile):
        """The paper's premise: bitstream decode is a large share."""
        c = profile.total_counters()
        share = parse_cycles(DEFAULT_COST_MODEL, c) / DEFAULT_COST_MODEL.decode_cycles(c)
        assert 0.15 < share < 0.8


class TestCeiling:
    def test_all_pictures_display_in_order(self, profile):
        result = MacroblockLevelDecoder(profile).run(cfg(4))
        assert len(result.display_times) == profile.picture_count
        assert result.display_times == sorted(result.display_times)

    def test_speedup_saturates_at_amdahl_bound(self, profile):
        dec = MacroblockLevelDecoder(profile)
        bound = dec.amdahl_bound(DEFAULT_COST_MODEL)
        r1 = dec.run(cfg(1)).pictures_per_second
        r14 = dec.run(cfg(14)).pictures_per_second
        speedup = r14 / r1
        # The ceiling is amdahl_bound relative to a *pure serial*
        # decode; relative to the 1-worker run of the same
        # architecture it is lower still.  Must sit below the bound.
        assert speedup < bound
        r8 = dec.run(cfg(8)).pictures_per_second
        # Saturation: going 8 -> 14 workers buys almost nothing.
        assert r14 < r8 * 1.1

    def test_far_below_slice_level_at_scale(self, profile, medium_stream):
        from repro.parallel import SliceLevelDecoder, SliceMode

        mb = MacroblockLevelDecoder(profile).run(cfg(14)).pictures_per_second
        sl = SliceLevelDecoder(profile).run(
            cfg(14), SliceMode.IMPROVED
        ).pictures_per_second
        assert sl > 1.5 * mb

    def test_memory_no_leak(self, profile):
        result = MacroblockLevelDecoder(profile).run(cfg(3))
        assert result.memory.final_usage().get("frames", 0) == 0
