"""Macroblock and slice layer: syntax, predictors, reconstruction.

This module implements both directions of the slice payload syntax:

* :func:`encode_slice` serialises a row of macroblock *plans* (the
  encoder's mode decisions) into slice payload bits;
* :func:`decode_slice` parses a slice payload and reconstructs its
  macroblocks into the output frame.

Both share :class:`SliceState` — the DC predictors, motion-vector
predictors (PMVs) and quantiser scale that MPEG threads through a
slice.  All predictors reset at slice boundaries, which is the
property that makes slices independently decodable and thus usable as
parallel tasks (paper Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import mv_coding
from repro.mpeg2.blockcoding import decode_block, decode_blocks_fast, encode_block
from repro.mpeg2.constants import PictureType, quantiser_scale
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.dct import idct_rounded
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader, SliceHeader
from repro.mpeg2.motion import MotionVector
from repro.mpeg2.quant import dequantize_intra, dequantize_non_intra
from repro.mpeg2.reconstruct import (
    Prediction,
    copy_macroblock,
    form_prediction,
    write_macroblock,
)
from repro.mpeg2.scan import ALTERNATE, ZIGZAG, unscan_block
from repro.mpeg2.tables import (
    CODED_BLOCK_PATTERN,
    DC_SIZE_CHROMA,
    DC_SIZE_LUMA,
    MB_ADDRESS_INCREMENT,
    MB_TYPE_TABLES,
    MBA_ESCAPE,
    MBA_ESCAPE_VALUE,
    MbMode,
)

#: Initial/reset value of the intra DC predictors (level space).
DC_PREDICTOR_RESET = 128

#: ``_CBP_BLOCK_INDEX[cbp]`` is the array of coded block indices (0..5)
#: for a coded block pattern — precomputed so the hot loop never builds
#: per-macroblock boolean masks.
_CBP_BLOCK_INDEX: tuple[np.ndarray, ...] = tuple(
    np.array([i for i in range(6) if cbp & (32 >> i)], dtype=np.intp)
    for cbp in range(64)
)


class SliceDecodeError(Exception):
    """Raised on syntactically impossible slice payloads."""


@dataclass
class SliceState:
    """Predictor state threaded through one slice (both directions)."""

    qscale_code: int
    dc_pred: list[int] = field(
        default_factory=lambda: [DC_PREDICTOR_RESET] * 3
    )
    pmv_fwd: MotionVector = MotionVector.ZERO
    pmv_bwd: MotionVector = MotionVector.ZERO
    #: (mc_fwd, mc_bwd) of the previous macroblock — B skipped-MB rule.
    prev_motion: tuple[bool, bool] | None = None
    #: Absolute vectors of the previous macroblock (B skipped-MB rule).
    prev_mv_fwd: MotionVector = MotionVector.ZERO
    prev_mv_bwd: MotionVector = MotionVector.ZERO

    @property
    def qscale(self) -> int:
        return quantiser_scale(self.qscale_code)

    def reset_dc(self) -> None:
        self.dc_pred = [DC_PREDICTOR_RESET] * 3

    def reset_pmv(self) -> None:
        self.pmv_fwd = MotionVector.ZERO
        self.pmv_bwd = MotionVector.ZERO


@dataclass(frozen=True)
class MacroblockPlan:
    """One coded macroblock as decided by the encoder.

    ``levels`` is the (6, 64) scan-ordered quantized coefficient
    array; all-zero rows become uncoded blocks via the CBP.  Motion
    vectors are absolute, in half-pel luma units.
    """

    address: int
    intra: bool
    levels: np.ndarray
    mv_fwd: MotionVector | None = None
    mv_bwd: MotionVector | None = None

    def __post_init__(self) -> None:
        if self.levels.shape != (6, 64):
            raise ValueError(f"levels must be (6, 64), got {self.levels.shape}")
        if self.intra and (self.mv_fwd or self.mv_bwd):
            raise ValueError("intra macroblock with motion vectors")

    @property
    def cbp(self) -> int:
        """Coded block pattern: bit (32 >> i) set if block i has data."""
        pattern = 0
        for i in range(6):
            if np.any(self.levels[i]):
                pattern |= 32 >> i
        return pattern


def _dc_index(block: int) -> int:
    """DC predictor index for block 0..5: luma, Cb, Cr."""
    return 0 if block < 4 else block - 3


# ======================================================================
# encoding
# ======================================================================
def encode_slice(
    w: BitWriter,
    plans: list[MacroblockPlan],
    row: int,
    mb_width: int,
    qscale_code: int,
    pic: PictureHeader,
) -> None:
    """Serialise the coded macroblocks of one slice (one MB row).

    ``plans`` must be sorted by address, start with the row's first
    macroblock and end with its last (MPEG forbids skipping either).
    Gaps between consecutive plans become skipped macroblocks.
    """
    row_start = row * mb_width
    row_last = row_start + mb_width - 1
    if not plans:
        raise ValueError("a slice must contain at least one macroblock")
    if plans[0].address != row_start or plans[-1].address != row_last:
        raise ValueError(
            "first and last macroblock of a slice cannot be skipped "
            f"(got {plans[0].address}..{plans[-1].address} for row {row})"
        )

    SliceHeader(quantiser_scale_code=qscale_code).write(w)
    state = SliceState(qscale_code=qscale_code)
    prev_addr = row_start - 1
    for plan in plans:
        increment = plan.address - prev_addr
        if increment < 1:
            raise ValueError("macroblock addresses must be strictly increasing")
        # Skipped macroblocks update predictor state exactly as the
        # decoder will (see _apply_skip_state).
        for _ in range(increment - 1):
            _apply_skip_state(state, pic.picture_type)
        while increment > 33:
            MB_ADDRESS_INCREMENT.encode(w, MBA_ESCAPE)
            increment -= MBA_ESCAPE_VALUE
        MB_ADDRESS_INCREMENT.encode(w, increment)
        _encode_macroblock(w, plan, state, pic)
        prev_addr = plan.address


def _encode_macroblock(
    w: BitWriter, plan: MacroblockPlan, state: SliceState, pic: PictureHeader
) -> None:
    ptype = pic.picture_type
    cbp = plan.cbp
    mode = _plan_mode(plan, cbp, ptype)
    MB_TYPE_TABLES[ptype].encode(w, mode)

    if mode.quant:
        w.write_bits(state.qscale_code, 5)

    if mode.mc_fwd:
        assert plan.mv_fwd is not None
        mv_coding.encode_component(
            w, plan.mv_fwd.dx, state.pmv_fwd.dx, pic.forward_f_code
        )
        mv_coding.encode_component(
            w, plan.mv_fwd.dy, state.pmv_fwd.dy, pic.forward_f_code
        )
        state.pmv_fwd = plan.mv_fwd
    if mode.mc_bwd:
        assert plan.mv_bwd is not None
        mv_coding.encode_component(
            w, plan.mv_bwd.dx, state.pmv_bwd.dx, pic.backward_f_code
        )
        mv_coding.encode_component(
            w, plan.mv_bwd.dy, state.pmv_bwd.dy, pic.backward_f_code
        )
        state.pmv_bwd = plan.mv_bwd

    if mode.coded:
        CODED_BLOCK_PATTERN.encode(w, cbp)

    if mode.intra:
        for i in range(6):
            table = DC_SIZE_LUMA if i < 4 else DC_SIZE_CHROMA
            di = _dc_index(i)
            state.dc_pred[di] = encode_block(
                w,
                plan.levels[i],
                intra=True,
                dc_table=table,
                dc_predictor=state.dc_pred[di],
            )
    else:
        for i in range(6):
            if cbp & (32 >> i):
                encode_block(w, plan.levels[i], intra=False)

    _apply_coded_state(state, mode, plan.mv_fwd, plan.mv_bwd, ptype)


def _plan_mode(plan: MacroblockPlan, cbp: int, ptype: PictureType) -> MbMode:
    """Derive the macroblock_type flags for a plan (encoder side)."""
    if plan.intra:
        return MbMode(intra=True)
    if ptype is PictureType.P:
        if plan.mv_fwd is None:
            raise ValueError("P inter macroblock needs a forward vector")
        if cbp == 0:
            # No coefficients: must signal MC (there is no "nothing" MB).
            return MbMode(mc_fwd=True)
        if plan.mv_fwd == MotionVector.ZERO:
            # The no-MC shortcut: zero vector implied, PMV reset.
            return MbMode(coded=True)
        return MbMode(mc_fwd=True, coded=True)
    if ptype is PictureType.B:
        fwd = plan.mv_fwd is not None
        bwd = plan.mv_bwd is not None
        if not (fwd or bwd):
            raise ValueError("B inter macroblock needs at least one vector")
        return MbMode(mc_fwd=fwd, mc_bwd=bwd, coded=cbp != 0)
    raise ValueError("I-pictures contain only intra macroblocks")


# ======================================================================
# decoding
# ======================================================================
@dataclass
class PictureCodingContext:
    """Everything a slice needs to decode: headers, references, output.

    ``trace``, when set, is an access recorder (see
    :class:`repro.cache.trace.AccessRecorder`) that receives logical
    memory-access events as the slice decodes — the substrate of the
    paper's TangoLite locality study.  It is duck-typed here so the
    codec has no dependency on the cache package.
    """

    seq: SequenceHeader
    pic: PictureHeader
    out: Frame
    fwd: Frame | None = None
    bwd: Frame | None = None
    trace: object | None = None

    @property
    def mb_width(self) -> int:
        return self.out.mb_width

    def references_for(self) -> tuple[Frame | None, Frame | None]:
        return self.fwd, self.bwd


def decode_slice(
    payload: bytes,
    vertical_position: int,
    ctx: PictureCodingContext,
    counters: WorkCounters | None = None,
) -> WorkCounters:
    """Decode one slice payload into ``ctx.out``.

    ``vertical_position`` is the slice start-code value (1-based MB
    row).  Returns the work counters for this slice (also accumulated
    into ``counters`` when given).
    """
    local = WorkCounters()
    local.bits += len(payload) * 8
    local.headers += 1
    if ctx.trace is not None:
        ctx.trace.stream_read(len(payload))
    # Validate the start-code row before touching the header bits: the
    # batched engine rejects an out-of-range slice up front, and the
    # differential fuzz suite pins all engines to the same verdict when
    # a mutant corrupts both the position and the header.
    row = vertical_position - 1
    if not 0 <= row < ctx.out.mb_height:
        raise SliceDecodeError(f"slice vertical position {vertical_position} out of range")
    r = BitReader(payload)
    sh = SliceHeader.read(r)
    state = SliceState(qscale_code=sh.quantiser_scale_code)

    mbw = ctx.mb_width
    row_start = row * mbw
    row_last = row_start + mbw - 1
    prev_addr = row_start - 1
    # Trace emission is opt-in: resolved once per slice so the
    # per-macroblock hot loop carries no callback checks when no cache
    # simulation is attached.
    traced = ctx.trace is not None

    while prev_addr < row_last:
        increment = 0
        while True:
            sym = MB_ADDRESS_INCREMENT.decode(r)
            local.vlc_symbols += 1
            if sym == MBA_ESCAPE:
                increment += MBA_ESCAPE_VALUE
            else:
                increment += sym
                break
        address = prev_addr + increment
        if address > row_last:
            raise SliceDecodeError(
                f"macroblock address {address} beyond end of row {row}"
            )
        for skipped in range(prev_addr + 1, address):
            _decode_skipped(skipped, state, ctx, local, traced)
        _decode_macroblock(r, address, state, ctx, local, traced)
        prev_addr = address

    if counters is not None:
        counters.add(local)
    return local


def _decode_skipped(
    address: int,
    state: SliceState,
    ctx: PictureCodingContext,
    counters: WorkCounters,
    traced: bool = False,
) -> None:
    """Reconstruct a skipped macroblock (never first/last of a slice)."""
    mb_row, mb_col = divmod(address, ctx.mb_width)
    ptype = ctx.pic.picture_type
    counters.macroblocks += 1
    if traced:
        if ptype is PictureType.P:
            _trace_macroblock(ctx, mb_row, mb_col, MotionVector.ZERO, None, 0)
        elif state.prev_motion is not None:
            fwd_on, bwd_on = state.prev_motion
            _trace_macroblock(
                ctx,
                mb_row,
                mb_col,
                state.prev_mv_fwd if fwd_on else None,
                state.prev_mv_bwd if bwd_on else None,
                0,
            )
    if ptype is PictureType.P:
        if ctx.fwd is None:
            raise SliceDecodeError("P skipped macroblock without forward reference")
        copy_macroblock(ctx.out, ctx.fwd, mb_row, mb_col, counters)
        state.reset_pmv()
    elif ptype is PictureType.B:
        if state.prev_motion is None:
            raise SliceDecodeError("B skipped macroblock with no previous mode")
        fwd_on, bwd_on = state.prev_motion
        pred = form_prediction(
            mb_row,
            mb_col,
            state.prev_mv_fwd if fwd_on else None,
            state.prev_mv_bwd if bwd_on else None,
            ctx.fwd,
            ctx.bwd,
            counters,
        )
        counters.mc_macroblocks += 1
        if fwd_on and bwd_on:
            counters.bidir_macroblocks += 1
        zero = np.zeros((6, 8, 8), dtype=np.int32)
        write_macroblock(ctx.out, mb_row, mb_col, zero, pred, counters)
    else:
        raise SliceDecodeError("skipped macroblocks are illegal in I-pictures")
    state.reset_dc()


def parse_macroblock(
    r: BitReader,
    state: SliceState,
    pic: PictureHeader,
    counters: WorkCounters,
    fast: bool = False,
) -> tuple[MbMode, MotionVector | None, MotionVector | None, np.ndarray, int]:
    """Phase-1 bit work of one coded macroblock (no pixel operations).

    Decodes macroblock_type, quantiser update, motion vectors, the
    coded block pattern and all coefficient run/levels, updating the
    slice predictor state exactly as the sequential decoder does.
    Returns ``(mode, mv_fwd, mv_bwd, levels, cbp)`` where ``levels`` is
    the (6, 64) scan-ordered level array.  Shared verbatim by the
    scalar decode path and the batched two-phase fast path, which is
    what makes their parse stages bit-identical by construction —
    except that ``fast=True`` (the batched parser) decodes coefficient
    blocks through :func:`decode_blocks_fast`, the inlined-cursor
    variant with the same syntax, errors and counters (covered by the
    cross-engine parity suite).

    The caller is responsible for :func:`_apply_coded_state` after any
    reconstruction bookkeeping that needs the pre-update state.
    """
    ptype = pic.picture_type
    mode: MbMode = MB_TYPE_TABLES[ptype].decode(r)
    counters.vlc_symbols += 1
    counters.macroblocks += 1

    if mode.quant:
        code = r.read_bits(5)
        if code == 0:
            raise SliceDecodeError("macroblock quantiser_scale_code of 0")
        state.qscale_code = code

    mv_fwd: MotionVector | None = None
    mv_bwd: MotionVector | None = None
    if mode.mc_fwd:
        dx = mv_coding.decode_component(r, state.pmv_fwd.dx, pic.forward_f_code)
        dy = mv_coding.decode_component(r, state.pmv_fwd.dy, pic.forward_f_code)
        mv_fwd = MotionVector(dy=dy, dx=dx)
        state.pmv_fwd = mv_fwd
        counters.vlc_symbols += 2
    if mode.mc_bwd:
        dx = mv_coding.decode_component(r, state.pmv_bwd.dx, pic.backward_f_code)
        dy = mv_coding.decode_component(r, state.pmv_bwd.dy, pic.backward_f_code)
        mv_bwd = MotionVector(dy=dy, dx=dx)
        state.pmv_bwd = mv_bwd
        counters.vlc_symbols += 2

    if ptype is PictureType.P and not mode.intra and not mode.mc_fwd:
        # The P no-MC case: zero forward vector, PMV reset.
        mv_fwd = MotionVector.ZERO

    if mode.coded:
        cbp = CODED_BLOCK_PATTERN.decode(r)
        counters.vlc_symbols += 1
    elif mode.intra:
        cbp = 63
    else:
        cbp = 0

    if fast:
        levels = decode_blocks_fast(
            r,
            cbp,
            intra=mode.intra,
            dc_luma=DC_SIZE_LUMA,
            dc_chroma=DC_SIZE_CHROMA,
            dc_pred=state.dc_pred,
            counters=counters,
        )
        return mode, mv_fwd, mv_bwd, levels, cbp

    levels = np.zeros((6, 64), dtype=np.int64)
    for i in range(6):
        if cbp & (32 >> i):
            table = DC_SIZE_LUMA if i < 4 else DC_SIZE_CHROMA
            di = _dc_index(i)
            levels[i], new_pred = decode_block(
                r,
                intra=mode.intra,
                dc_table=table if mode.intra else None,
                dc_predictor=state.dc_pred[di],
                counters=counters,
            )
            if mode.intra:
                state.dc_pred[di] = new_pred

    return mode, mv_fwd, mv_bwd, levels, cbp


def _decode_macroblock(
    r: BitReader,
    address: int,
    state: SliceState,
    ctx: PictureCodingContext,
    counters: WorkCounters,
    traced: bool = False,
) -> None:
    symbols_before = counters.vlc_symbols
    mode, mv_fwd, mv_bwd, levels, cbp = parse_macroblock(
        r, state, ctx.pic, counters
    )
    if traced:
        ctx.trace.table_lookups(counters.vlc_symbols - symbols_before)
    _reconstruct(
        address, mode, mv_fwd, mv_bwd, levels, cbp, state, ctx, counters, traced
    )
    _apply_coded_state(state, mode, mv_fwd, mv_bwd, ctx.pic.picture_type)


def _reconstruct(
    address: int,
    mode: MbMode,
    mv_fwd: MotionVector | None,
    mv_bwd: MotionVector | None,
    levels: np.ndarray,
    cbp: int,
    state: SliceState,
    ctx: PictureCodingContext,
    counters: WorkCounters,
    traced: bool = False,
) -> None:
    mb_row, mb_col = divmod(address, ctx.mb_width)
    coded_index = _CBP_BLOCK_INDEX[cbp]
    if traced:
        _trace_macroblock(ctx, mb_row, mb_col, mv_fwd, mv_bwd, len(coded_index))
    blocks = np.zeros((6, 8, 8), dtype=np.int32)
    if len(coded_index):
        order = ALTERNATE if ctx.pic.alternate_scan else ZIGZAG
        raster = unscan_block(levels[coded_index], order)
        if mode.intra:
            coeffs = dequantize_intra(
                raster, ctx.seq.intra_quant_matrix, state.qscale
            )
        else:
            coeffs = dequantize_non_intra(
                raster, ctx.seq.non_intra_quant_matrix, state.qscale
            )
        blocks[coded_index] = idct_rounded(coeffs)
        counters.idct_blocks += len(coded_index)

    if mode.intra:
        write_macroblock(ctx.out, mb_row, mb_col, blocks, None, counters)
        return

    pred = form_prediction(
        mb_row, mb_col, mv_fwd, mv_bwd, ctx.fwd, ctx.bwd, counters
    )
    counters.mc_macroblocks += 1
    if mv_fwd is not None and mv_bwd is not None:
        counters.bidir_macroblocks += 1
    write_macroblock(ctx.out, mb_row, mb_col, blocks, pred, counters)


# ======================================================================
# shared predictor-state transitions
# ======================================================================
def _apply_coded_state(
    state: SliceState,
    mode: MbMode,
    mv_fwd: MotionVector | None,
    mv_bwd: MotionVector | None,
    ptype: PictureType,
) -> None:
    """Post-macroblock predictor updates (identical both directions)."""
    if mode.intra:
        state.reset_pmv()
        state.prev_motion = None
        return
    state.reset_dc()
    if ptype is PictureType.P and not mode.mc_fwd:
        # No-MC P macroblock: PMV resets along with the implied zero MV.
        state.pmv_fwd = MotionVector.ZERO
    state.prev_motion = (mode.mc_fwd or ptype is PictureType.P, mode.mc_bwd)
    state.prev_mv_fwd = mv_fwd if mv_fwd is not None else MotionVector.ZERO
    state.prev_mv_bwd = mv_bwd if mv_bwd is not None else MotionVector.ZERO


def _apply_skip_state(state: SliceState, ptype: PictureType) -> None:
    """Predictor updates for a skipped macroblock (encoder mirror)."""
    if ptype is PictureType.P:
        state.reset_pmv()
    state.reset_dc()


# ======================================================================
# memory-access tracing (locality study substrate)
# ======================================================================
def _trace_macroblock(
    ctx: PictureCodingContext,
    mb_row: int,
    mb_col: int,
    mv_fwd: MotionVector | None,
    mv_bwd: MotionVector | None,
    coded_blocks: int,
) -> None:
    """Emit the logical memory accesses of one macroblock reconstruction.

    Per plane: the half-pel-expanded reference rectangles read by
    motion compensation, the output rectangles written, and the
    coefficient-buffer traffic of the coded blocks.
    """
    trace = ctx.trace
    if coded_blocks:
        trace.coeff_blocks(coded_blocks)
    y0, x0 = mb_row * 16, mb_col * 16
    for which, mv in (("fwd", mv_fwd), ("bwd", mv_bwd)):
        if mv is None:
            continue
        iy, fy = divmod(mv.dy, 2)
        ix, fx = divmod(mv.dx, 2)
        trace.ref_read(which, "y", y0 + iy, x0 + ix, 16 + (1 if fy else 0),
                       16 + (1 if fx else 0))
        cmv = mv.chroma()
        ciy, cfy = divmod(cmv.dy, 2)
        cix, cfx = divmod(cmv.dx, 2)
        ch = 8 + (1 if cfy else 0)
        cw = 8 + (1 if cfx else 0)
        trace.ref_read(which, "cb", y0 // 2 + ciy, x0 // 2 + cix, ch, cw)
        trace.ref_read(which, "cr", y0 // 2 + ciy, x0 // 2 + cix, ch, cw)
    trace.out_write("y", y0, x0, 16, 16)
    trace.out_write("cb", y0 // 2, x0 // 2, 8, 8)
    trace.out_write("cr", y0 // 2, x0 // 2, 8, 8)
