"""Sequential reference decoder, with GOP- and slice-granular entry points.

:class:`SequenceDecoder` is the uniprocessor baseline of the paper.
Its decomposition into :meth:`decode_gop`, :meth:`decode_picture` and
the slice-level :func:`repro.mpeg2.macroblock.decode_slice` is exactly
the task granularity menu of Section 4 — the parallel decoders in
:mod:`repro.parallel` call these same entry points from worker
processes.

Reference management follows the standard: the two most recent I/P
pictures are held; a P predicts from the newer one; a B predicts
forward from the older and backward from the newer.  Decoded frames
carry their temporal reference; display order is obtained by sorting
within each (closed) GOP.
"""

from __future__ import annotations

from time import perf_counter

from repro.bitstream.emulation import unescape_payload
from repro.bitstream.reader import BitstreamError
from repro.mpeg2.batched import (
    SliceParse,
    assemble_picture,
    gop_dequant_idct,
    mc_scatter,
    parse_slice,
    reconstruct_slices,
)
from repro.mpeg2.blockcoding import BlockSyntaxError
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import (
    GopIndex,
    PictureIndex,
    StreamIndex,
    build_index,
)
from repro.mpeg2.macroblock import (
    PictureCodingContext,
    SliceDecodeError,
    decode_slice,
)
from repro.mpeg2.reconstruct import conceal_row, conceal_rows, missing_rows
from repro.mpeg2.vlc import VLCError
from repro.obs.metrics import metrics
from repro.obs.trace import trace_span

#: Decode engines: ``"scalar"`` is the per-macroblock oracle path,
#: ``"batched"`` the two-phase parse/reconstruct fast path (default;
#: bit-identical, asserted by the parity suite).
ENGINES = ("scalar", "batched")


class DecodeError(Exception):
    """Raised when reference pictures needed by the stream are missing."""


#: Exceptions a corrupt slice payload can legitimately raise; the
#: resilient decoder conceals the slice on any of these.
SLICE_CORRUPTION_ERRORS = (
    BitstreamError,
    BlockSyntaxError,
    SliceDecodeError,
    VLCError,
    ValueError,
)


def conceal_slice(ctx: PictureCodingContext, vertical_position: int) -> None:
    """Replace a lost slice's macroblock row.

    Classic concealment: copy the co-located row from the forward
    reference when one exists, else fill mid-grey.  Slice independence
    (predictors reset at every slice) is what confines the damage to
    one row — the same property the parallel decomposition uses.
    """
    conceal_row(ctx.out, ctx.fwd, vertical_position - 1)


class SequenceDecoder:
    """Decode a framed MPEG-2 stream produced by :mod:`repro.mpeg2.encoder`.

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (the parallel decoders share one
        index between the scan process and the workers).
    resilient:
        When true, a slice whose payload fails to parse is concealed
        (see :func:`conceal_slice`) instead of aborting the decode.
    engine:
        ``"batched"`` (default) decodes pictures through the two-phase
        parse/reconstruct fast path (:mod:`repro.mpeg2.batched`);
        ``"scalar"`` keeps the per-macroblock oracle path.  Both are
        bit-identical, counters included.
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        resilient: bool = False,
        engine: str = "batched",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.data = data
        self.index = index if index is not None else build_index(data)
        self.seq = self.index.sequence_header
        self.resilient = resilient
        self.engine = engine

    # ------------------------------------------------------------------
    # picture granularity
    # ------------------------------------------------------------------
    def decode_picture(
        self,
        pic: PictureIndex,
        fwd: Frame | None,
        bwd: Frame | None,
        counters: WorkCounters | None = None,
    ) -> Frame:
        """Decode one picture given its reference frames."""
        out, _slice_counters, local = self.decode_picture_with_slices(
            pic, fwd, bwd
        )
        if counters is not None:
            counters.add(local)
        return out

    def decode_picture_with_slices(
        self,
        pic: PictureIndex,
        fwd: Frame | None,
        bwd: Frame | None,
    ) -> tuple[Frame, list[tuple[int, WorkCounters]], WorkCounters]:
        """Decode one picture; also return per-slice work counters.

        Returns ``(frame, slice_counters, picture_counters)`` where
        ``slice_counters`` is ``(vertical_position, counters)`` per
        successfully decoded slice in bitstream order — the unit the
        stream profiler feeds to the parallel simulations.

        Observability: the whole picture is bracketed by a
        ``decode.picture`` trace span and feeds the
        ``decode.picture_ms`` histogram; neither perturbs the decode
        (work counters and output pixels are identical with tracing on
        or off, pinned by the overhead-guard test).
        """
        t0 = perf_counter()
        with trace_span(
            "decode.picture",
            type=pic.picture_type.letter,
            engine=self.engine,
            temporal_reference=pic.temporal_reference,
        ):
            result = self._decode_picture_inner(pic, fwd, bwd)
        metrics().histogram("decode.picture_ms").observe(
            (perf_counter() - t0) * 1e3
        )
        return result

    def _decode_picture_inner(
        self,
        pic: PictureIndex,
        fwd: Frame | None,
        bwd: Frame | None,
    ) -> tuple[Frame, list[tuple[int, WorkCounters]], WorkCounters]:
        local = WorkCounters()
        header = pic.header()
        local.headers += 1
        local.bits += (pic.header_payload_end - pic.header_payload_start + 4) * 8
        out = Frame.blank(self.seq.width, self.seq.height)
        out.temporal_reference = pic.temporal_reference
        if header.picture_type.letter != "I" and fwd is None:
            raise DecodeError(
                f"{header.picture_type.letter}-picture without forward reference"
            )
        if header.picture_type.letter == "B" and bwd is None:
            raise DecodeError("B-picture without backward reference")
        slice_counters: list[tuple[int, WorkCounters]] = []

        if self.engine == "scalar":
            ctx = PictureCodingContext(
                seq=self.seq, pic=header, out=out, fwd=fwd, bwd=bwd
            )
            # A row's *last* action wins (duplicate slices): decode
            # immediately, but defer concealment to one end-of-picture
            # sweep so spatial (row-above) concealment sees every
            # decoded neighbour — the same sweep the batched and
            # slice-parallel paths run, which is what keeps all of
            # them bit-identical on lossy streams.
            conceal_pending: set[int] = set()
            for sl in pic.slices:
                payload = unescape_payload(
                    self.data[sl.payload_start : sl.payload_end]
                )
                with trace_span("decode.slice", row=sl.vertical_position):
                    if self.resilient:
                        try:
                            c = decode_slice(
                                payload, sl.vertical_position, ctx, local
                            )
                        except SLICE_CORRUPTION_ERRORS:
                            conceal_pending.add(sl.vertical_position - 1)
                            local.concealed_slices += 1
                            continue
                        conceal_pending.discard(sl.vertical_position - 1)
                    else:
                        c = decode_slice(payload, sl.vertical_position, ctx, local)
                slice_counters.append((sl.vertical_position, c))
            if self.resilient:
                lost = missing_rows(
                    out.mb_height,
                    (sl.vertical_position - 1 for sl in pic.slices),
                )
                local.concealed_slices += len(lost)
                conceal_rows(out, fwd, conceal_pending.union(lost))
            return out, slice_counters, local

        # Batched engine: phase 1 parses every slice (bit work only),
        # phase 2 reconstructs the whole picture vectorized.  A row's
        # *last* action wins — a later duplicate slice or a concealment
        # fully overwrites the row, exactly as the sequential writes
        # would, because every slice covers its complete row.
        mbw, mbh = out.mb_width, out.mb_height
        final: dict[int, SliceParse | None] = {}
        with trace_span("decode.parse", slices=len(pic.slices)):
            for sl in pic.slices:
                payload = unescape_payload(
                    self.data[sl.payload_start : sl.payload_end]
                )
                try:
                    sp = parse_slice(
                        payload, sl.vertical_position, header, mbw, mbh,
                        fwd is not None,
                    )
                except SLICE_CORRUPTION_ERRORS:
                    if not self.resilient:
                        raise
                    local.concealed_slices += 1
                    final[sl.vertical_position - 1] = None
                    continue
                local.add(sp.counters)
                slice_counters.append((sl.vertical_position, sp.counters))
                final[sl.vertical_position - 1] = sp
        with trace_span("decode.reconstruct"):
            reconstruct_slices(
                [sp for sp in final.values() if sp is not None],
                self.seq, header, out, fwd, bwd,
            )
            if self.resilient:
                lost = missing_rows(
                    out.mb_height,
                    (sl.vertical_position - 1 for sl in pic.slices),
                )
                local.concealed_slices += len(lost)
                rows = {row for row, sp in final.items() if sp is None}
                conceal_rows(out, fwd, rows.union(lost))
        return out, slice_counters, local

    def slice_payload(self, sl) -> bytes:
        """Unescaped payload bytes of a slice (worker-process fetch)."""
        return unescape_payload(self.data[sl.payload_start : sl.payload_end])

    def make_context(
        self, pic: PictureIndex, fwd: Frame | None, bwd: Frame | None
    ) -> PictureCodingContext:
        """Build a decode context with a fresh output frame.

        Used by the slice-level parallel decoders, where many workers
        decode slices of the same picture into one shared frame.
        """
        out = Frame.blank(self.seq.width, self.seq.height)
        out.temporal_reference = pic.temporal_reference
        return PictureCodingContext(
            seq=self.seq, pic=pic.header(), out=out, fwd=fwd, bwd=bwd
        )

    # ------------------------------------------------------------------
    # GOP granularity
    # ------------------------------------------------------------------
    def decode_gop(
        self, gop: GopIndex, counters: WorkCounters | None = None
    ) -> list[Frame]:
        """Decode one closed GOP; returns frames in *display* order.

        This is exactly the unit of work of a GOP-level worker process
        (paper Section 5.1): the GOP is self-contained, so no state is
        shared with other tasks.
        """
        if not gop.closed_gop:
            raise DecodeError(
                "GOP-level decode requires closed GOPs (paper assumption)"
            )
        t0 = perf_counter()
        with trace_span("decode.gop", pictures=len(gop.pictures)):
            frames = self._decode_gop_inner(gop, counters)
        metrics().histogram("decode.gop_ms").observe(
            (perf_counter() - t0) * 1e3
        )
        return frames

    def _decode_gop_inner(
        self, gop: GopIndex, counters: WorkCounters | None = None
    ) -> list[Frame]:
        local = WorkCounters()
        local.headers += 1
        local.bits += (gop.header_payload_end - gop.header_payload_start + 4) * 8
        if self.engine == "batched":
            decoded = self._decode_gop_batched(gop, local)
        else:
            ref_old: Frame | None = None
            ref_new: Frame | None = None
            decoded = []
            for pic in gop.pictures:
                if pic.picture_type.is_reference:
                    frame = self.decode_picture(pic, ref_new, None, local)
                    ref_old, ref_new = ref_new, frame
                else:
                    frame = self.decode_picture(pic, ref_old, ref_new, local)
                decoded.append(frame)
        decoded.sort(key=lambda f: f.temporal_reference)
        if counters is not None:
            counters.add(local)
        return decoded

    def _decode_gop_batched(
        self, gop: GopIndex, local: WorkCounters
    ) -> list[Frame]:
        """GOP mega-batch: parse every picture, transform once, then MC.

        Phase 1 walks the pictures in coding order doing only bit work
        (and the same reference-availability checks, in the same
        order, as the per-picture path — a corrupt stream raises the
        identical exception class at the identical point).  Phase 2a
        runs **one** dequant + IDCT chain over every coded block of
        the GOP (:func:`repro.mpeg2.batched.gop_dequant_idct` — the
        transform never reads reference frames, so it batches across
        pictures).  Phase 2b motion-compensates and scatters each
        picture in coding order, managing references exactly as the
        sequential decoder does.  Pixels, work counters and error
        behaviour are identical to the per-picture path; only the
        batching grain changes.
        """
        mbw = (self.seq.width + 15) // 16
        mbh = (self.seq.height + 15) // 16
        # ---- phase 1: bit-only parse of every picture --------------
        parsed: list[
            tuple[PictureIndex, object, dict[int, SliceParse | None], WorkCounters]
        ] = []
        have_old = False  # ref availability mirrors phase-2 ref handoff
        have_new = False
        for pic in gop.pictures:
            header = pic.header()
            pcount = WorkCounters()
            pcount.headers += 1
            pcount.bits += (
                pic.header_payload_end - pic.header_payload_start + 4
            ) * 8
            letter = header.picture_type.letter
            if letter == "I":
                has_fwd = have_new
            elif letter == "P":
                if not have_new:
                    raise DecodeError("P-picture without forward reference")
                has_fwd = True
            else:
                if not have_old:
                    raise DecodeError("B-picture without forward reference")
                if not have_new:
                    raise DecodeError("B-picture without backward reference")
                has_fwd = True
            final: dict[int, SliceParse | None] = {}
            with trace_span(
                "decode.parse",
                slices=len(pic.slices),
                type=letter,
                temporal_reference=pic.temporal_reference,
            ):
                for sl in pic.slices:
                    payload = unescape_payload(
                        self.data[sl.payload_start : sl.payload_end]
                    )
                    try:
                        sp = parse_slice(
                            payload, sl.vertical_position, header, mbw, mbh,
                            has_fwd,
                        )
                    except SLICE_CORRUPTION_ERRORS:
                        if not self.resilient:
                            raise
                        pcount.concealed_slices += 1
                        final[sl.vertical_position - 1] = None
                        continue
                    pcount.add(sp.counters)
                    final[sl.vertical_position - 1] = sp
            parsed.append((pic, header, final, pcount))
            if header.picture_type.is_reference:
                have_old, have_new = have_new, True

        # ---- phase 2a: one dequant + IDCT over the whole GOP -------
        assemblies = [
            assemble_picture([sp for sp in final.values() if sp is not None])
            for _, _, final, _ in parsed
        ]
        blocks_per_pic = gop_dequant_idct(assemblies, self.seq)

        # ---- phase 2b: per-picture MC + scatter, in coding order ---
        ref_old: Frame | None = None
        ref_new: Frame | None = None
        decoded: list[Frame] = []
        for (pic, header, final, pcount), asm, blocks in zip(
            parsed, assemblies, blocks_per_pic
        ):
            t0 = perf_counter()
            with trace_span(
                "decode.picture",
                type=header.picture_type.letter,
                engine=self.engine,
                temporal_reference=pic.temporal_reference,
            ):
                out = Frame.blank(self.seq.width, self.seq.height)
                out.temporal_reference = pic.temporal_reference
                if header.picture_type.is_reference:
                    fwd, bwd = ref_new, None
                else:
                    fwd, bwd = ref_old, ref_new
                with trace_span("decode.reconstruct"):
                    mc_scatter(asm, blocks, out, fwd, bwd)
                    if self.resilient:
                        lost = missing_rows(
                            out.mb_height,
                            (
                                sl.vertical_position - 1
                                for sl in pic.slices
                            ),
                        )
                        local.concealed_slices += len(lost)
                        rows = {
                            row for row, sp in final.items() if sp is None
                        }
                        conceal_rows(out, fwd, rows.union(lost))
            metrics().histogram("decode.picture_ms").observe(
                (perf_counter() - t0) * 1e3
            )
            local.add(pcount)
            if header.picture_type.is_reference:
                ref_old, ref_new = ref_new, out
            decoded.append(out)
        return decoded

    # ------------------------------------------------------------------
    # whole stream
    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the entire sequence in display order."""
        frames: list[Frame] = []
        for gop in self.index.gops:
            frames.extend(self.decode_gop(gop, counters))
        return frames


def decode_sequence(data: bytes) -> list[Frame]:
    """Convenience: decode a stream to display-ordered frames."""
    return SequenceDecoder(data).decode_all()
