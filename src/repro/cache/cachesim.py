"""Set-associative cache simulation with coherence and miss classes.

The simulator replays a :class:`~repro.cache.trace.MemoryTrace`
through one LRU cache per processor with write-invalidate coherence
(the Challenge's Illinois-style protocol at this level of detail) and
classifies every miss:

* **cold** — the first time this cache ever touches the line;
* **coherence** — the line was here but another processor's write
  invalidated it (the paper's sharing misses; it found these small and
  false sharing negligible);
* **capacity/conflict** — everything else.  For fully-associative
  caches this class is pure capacity, which is exactly the quantity
  Fig. 15 reports against cold misses.

Consecutive references to the same line by the same processor cannot
miss after the first, so runs are collapsed before the Python replay
loop — a large constant-factor win that leaves every miss count exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.trace import MemoryTrace


@dataclass(frozen=True)
class CacheConfig:
    """One cache organisation to evaluate."""

    line_size: int = 64
    capacity: int = 1 << 20
    #: Ways per set; 0 means fully associative.
    associativity: int = 0

    def __post_init__(self) -> None:
        if self.line_size & (self.line_size - 1) or self.line_size < 4:
            raise ValueError(f"line_size must be a power of two >= 4")
        if self.capacity % self.line_size:
            raise ValueError("capacity must be a multiple of line_size")
        lines = self.capacity // self.line_size
        if self.associativity < 0 or self.associativity > lines:
            raise ValueError(f"bad associativity {self.associativity}")
        if self.associativity and lines % self.associativity:
            raise ValueError("lines must divide evenly into sets")

    @property
    def total_lines(self) -> int:
        return self.capacity // self.line_size

    @property
    def ways(self) -> int:
        return self.associativity or self.total_lines

    @property
    def n_sets(self) -> int:
        return self.total_lines // self.ways


@dataclass
class CacheStats:
    """Reference and miss counts (per processor or aggregated)."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    cold_misses: int = 0
    coherence_misses: int = 0
    capacity_conflict_misses: int = 0

    @property
    def refs(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def read_miss_rate(self) -> float:
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.refs if self.refs else 0.0

    @property
    def capacity_to_cold_ratio(self) -> float:
        """Fig. 15's measure (meaningful for fully-associative runs)."""
        return (
            self.capacity_conflict_misses / self.cold_misses
            if self.cold_misses
            else 0.0
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        for name in (
            "reads", "writes", "read_misses", "write_misses",
            "cold_misses", "coherence_misses", "capacity_conflict_misses",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self


class _Cache:
    """One processor's LRU set-associative cache."""

    __slots__ = ("sets", "ways", "n_sets", "seen", "invalidated")

    def __init__(self, config: CacheConfig) -> None:
        self.ways = config.ways
        self.n_sets = config.n_sets
        self.sets: list[dict[int, None]] = [dict() for _ in range(self.n_sets)]
        self.seen: set[int] = set()
        self.invalidated: set[int] = set()

    def lookup(self, line: int) -> tuple[bool, str]:
        """Access ``line``; returns (hit, miss_class)."""
        s = self.sets[line % self.n_sets]
        if line in s:
            del s[line]  # refresh LRU position
            s[line] = None
            return True, ""
        if line not in self.seen:
            self.seen.add(line)
            cls = "cold"
        elif line in self.invalidated:
            self.invalidated.discard(line)
            cls = "coherence"
        else:
            cls = "capacity"
        s[line] = None
        if len(s) > self.ways:
            evicted = next(iter(s))
            del s[evicted]
        return False, cls

    def invalidate(self, line: int) -> None:
        s = self.sets[line % self.n_sets]
        if line in s:
            del s[line]
            self.invalidated.add(line)


def simulate(
    trace: MemoryTrace, config: CacheConfig
) -> tuple[CacheStats, list[CacheStats]]:
    """Replay ``trace`` through per-processor caches.

    Returns ``(aggregate, per_processor)`` statistics.
    """
    n_procs = trace.processors
    caches = [_Cache(config) for _ in range(n_procs)]
    stats = [CacheStats() for _ in range(n_procs)]

    if len(trace) == 0:
        return CacheStats(), stats

    shift = int(config.line_size).bit_length() - 1
    lines = trace.addr >> shift
    procs = trace.proc.astype(np.int64)
    writes = trace.write

    # Collapse consecutive same-(proc, line) runs: only the first
    # reference of a run can miss; the rest are guaranteed hits.
    key = (procs << 44) | lines
    boundaries = np.empty(len(key), dtype=bool)
    boundaries[0] = True
    np.not_equal(key[1:], key[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    run_lines = lines[starts]
    run_procs = procs[starts]
    run_first_write = writes[starts]
    ends = np.append(starts[1:], len(key))
    run_lens = ends - starts
    run_writes = np.add.reduceat(writes.astype(np.int64), starts)
    run_any_write = run_writes > 0

    for i in range(len(starts)):
        p = int(run_procs[i])
        line = int(run_lines[i])
        st = stats[p]
        n = int(run_lens[i])
        w = int(run_writes[i])
        st.reads += n - w
        st.writes += w
        hit, cls = caches[p].lookup(line)
        if not hit:
            if run_first_write[i]:
                st.write_misses += 1
            else:
                st.read_misses += 1
            if cls == "cold":
                st.cold_misses += 1
            elif cls == "coherence":
                st.coherence_misses += 1
            else:
                st.capacity_conflict_misses += 1
        if run_any_write[i] and n_procs > 1:
            for q in range(n_procs):
                if q != p:
                    caches[q].invalidate(line)

    total = CacheStats()
    for st in stats:
        total.merge(st)
    return total, stats


def line_size_sweep(
    trace: MemoryTrace,
    line_sizes: list[int],
    capacity: int = 1 << 20,
) -> dict[int, float]:
    """Read miss rate per line size, fully associative (Fig. 13)."""
    out: dict[int, float] = {}
    for ls in line_sizes:
        total, _ = simulate(trace, CacheConfig(line_size=ls, capacity=capacity))
        out[ls] = total.read_miss_rate
    return out


def cache_size_sweep(
    trace: MemoryTrace,
    capacities: list[int],
    associativities: list[int],
    line_size: int = 64,
) -> dict[tuple[int, int], CacheStats]:
    """Aggregate stats per (capacity, associativity) (Figs. 14-15)."""
    out: dict[tuple[int, int], CacheStats] = {}
    for cap in capacities:
        for assoc in associativities:
            cfg = CacheConfig(line_size=line_size, capacity=cap, associativity=assoc)
            total, _ = simulate(trace, cfg)
            out[(cap, assoc)] = total
    return out
