"""Golden-vector conformance: committed streams, pinned frame digests.

Round-trip tests (encode → decode → compare) cannot catch a *paired*
drift — an encoder and decoder that change together still round-trip.
The committed corpus under ``tests/vectors/`` breaks that symmetry:
the coded bytes and the SHA-256 of every decoded frame are pinned, so
any silent change to bitstream syntax, VLC tables, quantization, IDCT
rounding or motion compensation fails here, on every decode path:

* sequential scalar oracle (``engine="scalar"``),
* two-phase batched fast path (``engine="batched"``),
* GOP-parallel mp decoder (in-process fallback and real workers).

Regenerate intentionally with ``tests/vectors/generate_vectors.py``.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder

VECTOR_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "vectors")
DIGEST_PATH = os.path.join(VECTOR_DIR, "digests.json")

with open(DIGEST_PATH) as _fh:
    _DOC = json.load(_fh)
CORPUS: dict[str, dict] = _DOC["streams"]

#: Malformed streams derived from a committed base vector (see
#: ``generate_vectors.py``): hand-crafted slice surgery plus mutants
#: promoted from the differential fuzz sweep.  Entries carry either
#: ``frame_digests`` (still decodable — every path must agree, pixels
#: and work counters) or ``error`` (rejected — every path must raise
#: exactly that exception class).
NEGATIVE: dict[str, dict] = _DOC["negative"]

VECTOR_NAMES = sorted(CORPUS)
NEGATIVE_NAMES = sorted(NEGATIVE)
DECODABLE_NEGATIVES = [n for n in NEGATIVE_NAMES if "frame_digests" in NEGATIVE[n]]
ERROR_NEGATIVES = [n for n in NEGATIVE_NAMES if "error" in NEGATIVE[n]]

#: name -> decode callable returning display-ordered frames.
DECODE_PATHS = {
    "scalar": lambda data: SequenceDecoder(data, engine="scalar").decode_all(),
    "batched": lambda data: SequenceDecoder(data, engine="batched").decode_all(),
    "mp-inprocess": lambda data: MPGopDecoder(data, workers=0).decode_all(),
    "mp-2workers": lambda data: MPGopDecoder(data, workers=2).decode_all(),
}

#: Real worker processes are exercised on one multi-GOP vector only;
#: the in-process fallback covers the full corpus (deterministic and
#: cheap on constrained CI).
MP_WORKER_VECTOR = "two_gop_48x32"


def load_vector(name: str) -> bytes:
    entry = CORPUS.get(name) or NEGATIVE[name]
    with open(os.path.join(VECTOR_DIR, entry["file"]), "rb") as fh:
        return fh.read()


class TestCorpusIntegrity:
    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_stream_bytes_match_committed_hash(self, name):
        data = load_vector(name)
        assert len(data) == CORPUS[name]["stream_bytes"]
        assert hashlib.sha256(data).hexdigest() == CORPUS[name]["stream_sha256"]

    def test_corpus_is_nontrivial(self):
        # The issue asks for 4-6 vectors; keep the floor pinned.
        assert 4 <= len(VECTOR_NAMES) <= 8
        assert any(CORPUS[n]["pictures"] >= 8 for n in VECTOR_NAMES)


class TestGoldenDigests:
    @pytest.mark.parametrize("name", VECTOR_NAMES)
    @pytest.mark.parametrize("path", ["scalar", "batched", "mp-inprocess"])
    def test_decode_reproduces_pinned_digests(self, golden, name, path):
        if path == "scalar":
            # The scalar oracle decode is shared session-wide (the
            # parity suites check against the same frames objects).
            frames, _ = golden.scalar(name)
        else:
            frames = DECODE_PATHS[path](load_vector(name))
        assert [f.digest() for f in frames] == CORPUS[name]["frame_digests"], (
            f"{path} decode of {name} drifted from the golden digests"
        )

    def test_mp_worker_processes_reproduce_digests(self):
        name = MP_WORKER_VECTOR
        frames = DECODE_PATHS["mp-2workers"](load_vector(name))
        assert [f.digest() for f in frames] == CORPUS[name]["frame_digests"]

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_display_geometry_pinned(self, golden, name):
        frames, _ = golden.scalar(name)
        assert len(frames) == CORPUS[name]["pictures"]
        assert frames[0].display_width == CORPUS[name]["width"]
        assert frames[0].display_height == CORPUS[name]["height"]


class TestNegativeCorpus:
    """Committed malformed streams: every decoder must agree on them.

    The negatives are *legal to index* but structurally hostile —
    slices of one picture in reverse wire order, and a slice repeated
    back to back.  The sequential oracle resolves both by decree
    (slices are self-contained; the bitstream-last slice of a row
    wins), and the parallel decoders must reproduce that decree bit
    for bit, counters included.  This is what pins the slice
    schedulers' static duplicate resolution and scan-order handling.
    """

    def _runs(self, data):
        for label, decode in (
            ("scalar", lambda: SequenceDecoder(data, engine="scalar")),
            ("batched", lambda: SequenceDecoder(data, engine="batched")),
            ("mp-slice-w0-simple",
             lambda: MPSliceDecoder(data, workers=0, mode="simple")),
            ("mp-slice-w0-improved",
             lambda: MPSliceDecoder(data, workers=0, mode="improved")),
            ("mp-slice-w2-improved",
             lambda: MPSliceDecoder(data, workers=2, mode="improved")),
        ):
            counters = WorkCounters()
            frames = decode().decode_all(counters)
            yield label, [f.digest() for f in frames], counters

    @pytest.mark.parametrize("name", NEGATIVE_NAMES)
    def test_stream_bytes_match_committed_hash(self, name):
        data = load_vector(name)
        assert len(data) == NEGATIVE[name]["stream_bytes"]
        assert (
            hashlib.sha256(data).hexdigest() == NEGATIVE[name]["stream_sha256"]
        )

    @pytest.mark.parametrize("name", DECODABLE_NEGATIVES)
    def test_all_paths_agree_on_pixels_and_counters(self, name):
        data = load_vector(name)
        golden = NEGATIVE[name]["frame_digests"]
        ref_counters = None
        for label, digests, counters in self._runs(data):
            assert digests == golden, (
                f"{label} decode of {name} diverged from the pinned digests"
            )
            if ref_counters is None:
                ref_counters = counters
            else:
                assert counters == ref_counters, (
                    f"{label} counters diverged on {name}"
                )

    @pytest.mark.parametrize("name", ERROR_NEGATIVES)
    def test_error_negatives_rejected_identically(self, name):
        # Promoted fuzz mutants of the "rejected" flavour: the pinned
        # exception class, from every path — a NameError/KeyError here
        # is exactly the bug family the fuzz sweep caught.
        data = load_vector(name)
        want = NEGATIVE[name]["error"]
        for label, decode in (
            ("scalar", lambda: SequenceDecoder(data, engine="scalar")),
            ("batched", lambda: SequenceDecoder(data, engine="batched")),
            ("mp-gop-w0", lambda: MPGopDecoder(data, workers=0)),
            ("mp-slice-w0-simple",
             lambda: MPSliceDecoder(data, workers=0, mode="simple")),
            ("mp-slice-w0-improved",
             lambda: MPSliceDecoder(data, workers=0, mode="improved")),
        ):
            try:
                decode().decode_all()
            except Exception as exc:
                assert type(exc).__name__ == want, (
                    f"{label} rejected {name} with {type(exc).__name__}, "
                    f"pinned class is {want}"
                )
            else:
                raise AssertionError(f"{label} decoded {name}, "
                                     f"pinned verdict is {want}")

    @pytest.mark.parametrize("name", NEGATIVE_NAMES)
    def test_negatives_actually_differ_from_base_bytes(self, name):
        # The surgery must have changed the wire bytes, or the
        # "negative" is just the base vector wearing a hat.
        base = load_vector(NEGATIVE[name]["base"])
        assert load_vector(name) != base

    def test_shuffled_slices_decode_order_independently(self):
        # Reordering self-contained slices must not change a single
        # pixel: the pinned digests equal the base vector's.
        entry = NEGATIVE["neg_shuffled_slices"]
        assert entry["frame_digests"] == CORPUS[entry["base"]]["frame_digests"]

    def test_duplicated_slice_is_counted_but_harmless(self):
        # Last-action-wins: the duplicate rewrites identical pixels,
        # but its parse work *is* real and must show up in counters.
        entry = NEGATIVE["neg_duplicated_slice"]
        assert entry["frame_digests"] == CORPUS[entry["base"]]["frame_digests"]
        base_counters = WorkCounters()
        SequenceDecoder(load_vector(entry["base"])).decode_all(base_counters)
        dup_counters = WorkCounters()
        SequenceDecoder(load_vector("neg_duplicated_slice")).decode_all(
            dup_counters
        )
        assert dup_counters != base_counters
        assert dup_counters.bits > base_counters.bits


class TestNegative:
    """The suite must actually *fail* on corruption — prove it."""

    def test_flipped_payload_byte_changes_digests(self):
        name = "ipb_64x48_gop13"
        data = bytearray(load_vector(name))
        # Flip one byte inside the last slice's payload (away from any
        # start code), found via the scan index so the stream still
        # parses structurally.
        from repro.mpeg2.index import build_index

        sl = build_index(bytes(data)).gops[-1].pictures[-1].slices[-1]
        mid = (sl.payload_start + sl.payload_end) // 2
        data[mid] ^= 0x40
        try:
            frames = SequenceDecoder(
                bytes(data), resilient=True
            ).decode_all()
        except Exception:
            return  # corruption detected structurally: also a failure mode
        digests = [f.digest() for f in frames]
        assert digests != CORPUS[name]["frame_digests"], (
            "flipping a coded byte left every frame digest unchanged — "
            "the conformance suite has no teeth"
        )

    def test_truncated_stream_fails(self):
        data = load_vector("two_gop_48x32")
        with pytest.raises(Exception):
            frames = SequenceDecoder(data[: len(data) // 2]).decode_all()
            # If truncation still "decodes", digests must differ.
            assert [f.digest() for f in frames] == CORPUS["two_gop_48x32"][
                "frame_digests"
            ]
