"""Real-hardware slice-level parallel decoding with OS processes.

:mod:`repro.parallel.mp` brings the paper's **GOP-level** decomposition
(Section 5.1) to real cores; this module does the same for the
**slice-level** decomposition (Section 5.2), the one the paper finds
superior on latency and memory.  Tasks are individual slices, organised
by the 2-D picture/slice queue; two synchronisation policies mirror the
simulated :class:`repro.parallel.slice_level.SliceLevelDecoder`:

* ``simple`` — a picture's slices become available only when **every**
  earlier picture (coding order) has completed: a barrier after each
  picture.
* ``improved`` — a picture's slices become available as soon as its
  **reference pictures** have been decoded and published: consecutive
  B-pictures interleave freely, so the barrier survives only after
  I/P pictures.

The paper's three roles map onto real primitives:

* **scan** — the parent flattens the :class:`repro.mpeg2.index.
  StreamIndex` into coding-order :class:`PicturePlan` records (byte
  ranges, reference links, display indices) without decoding
  (:func:`scan_slice_tasks`), and drives the pure-logic
  :class:`PictureSliceQueue` that embodies the availability rule.
* **workers** — persistent ``multiprocessing`` processes pulling
  ``(picture, slice-batch)`` tasks from a queue.  The coded stream is
  published once into shared memory
  (:class:`repro.parallel.mp.StreamArena`); workers attach by name and
  slice payload byte ranges straight out of the segment.  Each slice
  gets the phase-1 bit-only parse
  (:func:`repro.mpeg2.batched.parse_slice`) and then — for the
  statically-final slice of each row — in-place reconstruction on the
  shared-memory frame pool
  (:class:`repro.parallel.mp.SharedFramePool`), reading reference
  pictures through zero-copy views.  Dispatch is *batched*: each
  picture's claimable slices are split into at most ``workers``
  sub-batches, so a 15-slice picture on 4 workers costs 4 queue
  messages each way instead of 30, while intra-picture parallelism is
  fully preserved.  Only per-slice work counters and tiny status
  tuples cross the process boundary — pixels and bitstream never do.
* **display** — the parent completes pictures (concealment for corrupt
  rows, publish for dependents), then merges them into display order
  through :class:`DisplayMerger`.

Bit-exactness
-------------
A slice resets all predictors, so its parse depends on nothing but its
own payload; its reconstruction depends only on the published reference
frames, which the availability rule guarantees are final before any of
the picture's slices start.  Within a picture, slices cover disjoint
macroblock rows, so concurrent in-place writes never overlap.
Duplicate slices (same row twice) are resolved *statically*: the
parser runs for every slice (work counters are exact), but only the
bitstream-last slice of each row carries ``reconstruct=True`` — the
sequential decoder's last-write-wins outcome without a write race.
The result is bit-identical to ``SequenceDecoder.decode_all()``,
frames and counters, pinned by ``tests/parallel/test_mp_slice_parity``.

Stall attribution (paper Table 3 / Fig. 12)
-------------------------------------------
The scheduler timestamps every picture that sits *gated* in the queue
and splits the wait on release:

* time the picture spent waiting for its references to be published is
  :data:`~repro.obs.stalls.REASON_REF_PUBLISH` — a true data
  dependency, paid by both policies;
* the remainder (simple mode only: waiting for unrelated earlier
  pictures) is :data:`~repro.obs.stalls.REASON_BARRIER` — the
  policy-imposed cost the improved variant eliminates.  By
  construction the improved decoder reports **zero** barrier stall,
  which is exactly the paper's argument for it.

Worker idle time is ``queue.get``; display reordering is
``merge.reorder`` — the same canonical vocabulary as the GOP decoder
and the SMP simulator, so all three report through one
``stall_breakdown()``.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.bitstream.emulation import unescape_payload
from repro.mpeg2.batched import parse_slice, reconstruct_slices
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import (
    SLICE_CORRUPTION_ERRORS,
    DecodeError,
)
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader
from repro.mpeg2.index import StreamIndex, build_index
from repro.mpeg2.reconstruct import conceal_rows, missing_rows
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.stalls import (
    REASON_BARRIER,
    REASON_MERGE,
    REASON_QUEUE_GET,
    REASON_REF_PUBLISH,
    StallTable,
    record_concealment,
)
from repro.obs.trace import (
    enable_tracing,
    get_tracer,
    trace_complete,
    trace_span,
    tracing_enabled,
)
from repro.exec.backend import (
    WorkerTeam,
    collect_trace_shards,
    release_segments,
)
from repro.exec.shm import FrameLayout, SharedFramePool, StreamArena
from repro.parallel.slice_level import SliceMode


# ======================================================================
# scan: stream index -> coding-order picture/slice plans
# ======================================================================
@dataclass(frozen=True)
class SlicePlan:
    """One slice task: wire byte range + static reconstruction flag.

    ``reconstruct`` is ``True`` for exactly one slice per macroblock
    row — the bitstream-*last* one — realising the sequential
    decoder's last-write-wins semantics for duplicated slices without
    any concurrent-write hazard (every other duplicate is parse-only:
    its work counters still accrue, its pixels never land).
    """

    vertical_position: int
    payload_start: int
    payload_end: int
    reconstruct: bool


@dataclass(frozen=True)
class PicturePlan:
    """Scan product for one picture: everything a worker or the
    scheduler needs, no pixels, fully picklable."""

    #: Global coding-order number (also this picture's pool slot).
    order: int
    #: GOP number and coding position within it (diagnostics).
    gop: int
    #: Global display-order number across the stream.
    display_index: int
    header: PictureHeader
    #: Bits of the picture header incl. start code (counter parity).
    header_bits: int
    #: Coding-order numbers of the forward / backward reference
    #: pictures, or ``None`` (I has neither, P no backward).
    fwd: int | None
    bwd: int | None
    slices: tuple[SlicePlan, ...]

    @property
    def dependencies(self) -> tuple[int, ...]:
        return tuple(d for d in (self.fwd, self.bwd) if d is not None)

    @property
    def is_reference(self) -> bool:
        return self.header.picture_type.is_reference


def scan_slice_tasks(index: StreamIndex) -> list[PicturePlan]:
    """Flatten the scan index into coding-order picture plans.

    Validates upfront what the sequential decoder validates lazily —
    closed GOPs only, references present — raising
    :class:`~repro.mpeg2.decoder.DecodeError` with the sequential
    decoder's messages, so malformed streams are rejected identically.
    """
    plans: list[PicturePlan] = []
    base = 0
    display_base = 0
    for gi, gop in enumerate(index.gops):
        if not gop.closed_gop:
            raise DecodeError(
                "GOP-level decode requires closed GOPs (paper assumption)"
            )
        ranks = gop.display_ranks()
        ref_old: int | None = None
        ref_new: int | None = None
        for pos, pic in enumerate(gop.pictures):
            letter = pic.picture_type.letter
            if letter == "I":
                fwd = bwd = None
            elif letter == "P":
                fwd, bwd = ref_new, None
                if fwd is None:
                    raise DecodeError("P-picture without forward reference")
            else:
                fwd, bwd = ref_old, ref_new
                if fwd is None:
                    raise DecodeError("B-picture without forward reference")
                if bwd is None:
                    raise DecodeError("B-picture without backward reference")
            order = base + pos
            # Static duplicate resolution: the bitstream-last slice of
            # each row reconstructs; earlier duplicates are parse-only.
            last_for_row: dict[int, int] = {
                sl.vertical_position: si for si, sl in enumerate(pic.slices)
            }
            plans.append(
                PicturePlan(
                    order=order,
                    gop=gi,
                    display_index=display_base + ranks[pos],
                    header=pic.header(),
                    header_bits=(
                        pic.header_payload_end - pic.header_payload_start + 4
                    )
                    * 8,
                    fwd=base + fwd if fwd is not None else None,
                    bwd=base + bwd if bwd is not None else None,
                    slices=tuple(
                        SlicePlan(
                            vertical_position=sl.vertical_position,
                            payload_start=sl.payload_start,
                            payload_end=sl.payload_end,
                            reconstruct=last_for_row[sl.vertical_position]
                            == si,
                        )
                        for si, sl in enumerate(pic.slices)
                    ),
                )
            )
            if pic.picture_type.is_reference:
                ref_old, ref_new = ref_new, pos
        base += len(gop.pictures)
        display_base += len(gop.pictures)
    return plans


# ======================================================================
# the 2-D picture/slice queue (pure logic — shared by the mp parent,
# the workers=0 fallback, and the hypothesis property tests)
# ======================================================================
class PictureSliceQueue:
    """The 2-D task queue's availability logic, on real time.

    The real-silicon twin of the simulated
    :class:`repro.parallel.queues.SliceTaskQueue`: same availability
    rules, same earliest-available-first service order, no simulator.

    Parameters
    ----------
    slice_counts:
        Slices per picture, coding order.
    dependencies:
        Per picture, the coding-order numbers it references.  Every
        dependency must be *earlier* (MPEG-2 coding order guarantees
        this; the queue enforces it).
    mode:
        ``"simple"`` (every earlier picture must be complete) or
        ``"improved"`` (only the dependencies must be complete).
    on_gated / on_released:
        Optional callbacks the scheduler uses for stall attribution:
        ``on_gated(order)`` fires when a claim scan first finds a
        picture unavailable; ``on_released(order)`` when a previously
        gated picture is found available again.
    """

    def __init__(
        self,
        slice_counts: Sequence[int],
        dependencies: Sequence[Sequence[int]],
        mode: str | SliceMode,
        on_gated: Callable[[int], None] | None = None,
        on_released: Callable[[int], None] | None = None,
    ) -> None:
        mode = SliceMode(mode).value
        if len(slice_counts) != len(dependencies):
            raise ValueError("slice_counts and dependencies length mismatch")
        for order, deps in enumerate(dependencies):
            for d in deps:
                if not 0 <= d < order:
                    raise ValueError(
                        f"picture {order} depends on {d}: dependencies must "
                        "be earlier in coding order"
                    )
        self.mode = mode
        self._deps = [tuple(d) for d in dependencies]
        self._next_slice = [0] * len(slice_counts)
        self._counts = list(slice_counts)
        self._remaining = list(slice_counts)
        self._complete = [False] * len(slice_counts)
        self._complete_count = 0
        self._head = 0
        self._gated: set[int] = set()
        self._on_gated = on_gated
        self._on_released = on_released
        # Zero-slice pictures that are available from the start settle
        # immediately (nothing to decode, nothing to wait for).
        self._settle_zero_slice(0)

    # -- availability --------------------------------------------------
    def _available(self, order: int) -> bool:
        if self.mode == "simple":
            # Every earlier picture (coding order) must be complete.
            return self._complete_count >= order
        # improved: only the references must be complete.
        return all(self._complete[d] for d in self._deps[order])

    def _settle_zero_slice(self, start: int) -> None:
        """Auto-complete available pictures that have no slices."""
        for order in range(start, len(self._counts)):
            if (
                self._counts[order] == 0
                and not self._complete[order]
                and self._available(order)
            ):
                self._complete[order] = True
                self._complete_count += 1

    # -- worker side ---------------------------------------------------
    def claim(self) -> tuple[int, int] | None:
        """Claim the next available ``(picture, slice)``; ``None`` if
        nothing is claimable right now.

        Serves slices from the earliest available picture — the
        paper's in-order queue, which keeps the frame-memory window
        small.  In simple mode nothing after the first unavailable
        picture can be available, so the scan stops there.
        """
        while (
            self._head < len(self._counts)
            and self._next_slice[self._head] >= self._counts[self._head]
        ):
            self._head += 1
        for order in range(self._head, len(self._counts)):
            if self._next_slice[order] >= self._counts[order]:
                continue
            if not self._available(order):
                if order not in self._gated:
                    self._gated.add(order)
                    if self._on_gated is not None:
                        self._on_gated(order)
                if self.mode == "simple":
                    # In-order rule: nothing later can be available.
                    return None
                continue
            if order in self._gated:
                self._gated.discard(order)
                if self._on_released is not None:
                    self._on_released(order)
            sidx = self._next_slice[order]
            self._next_slice[order] += 1
            return order, sidx
        return None

    def claim_all(self) -> list[tuple[int, int]]:
        """Drain every currently claimable task (eager scheduler)."""
        out: list[tuple[int, int]] = []
        while True:
            c = self.claim()
            if c is None:
                return out
            out.append(c)

    def complete_slice(self, order: int) -> bool:
        """Report one finished slice of ``order``; ``True`` if that
        completed the picture (caller should then publish it)."""
        if self._remaining[order] <= 0:
            raise ValueError(f"picture {order} has no outstanding slices")
        self._remaining[order] -= 1
        if self._remaining[order] == 0:
            self._complete[order] = True
            self._complete_count += 1
            self._settle_zero_slice(order + 1)
            return True
        return False

    # -- diagnostics -----------------------------------------------------
    @property
    def done(self) -> bool:
        return self._complete_count == len(self._counts)

    @property
    def pictures_complete(self) -> int:
        return self._complete_count

    def is_complete(self, order: int) -> bool:
        return self._complete[order]


class DisplayMerger:
    """Reorder completed pictures into display order (pure logic).

    The display process's reorder buffer: completed pictures arrive in
    load-dependent order; :meth:`push` banks one and returns the run of
    items that are now emittable in display order.  The paper's display
    process plays exactly this role with its picture reorder queue.
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError(f"negative picture count: {total}")
        self.total = total
        self._pending: dict[int, object] = {}
        self._next = 0
        #: High-water mark of the reorder buffer (memory diagnostics).
        self.max_depth = 0

    def push(self, display_index: int, item) -> list:
        if not 0 <= display_index < self.total:
            raise ValueError(
                f"display index {display_index} out of range 0..{self.total - 1}"
            )
        if display_index < self._next or display_index in self._pending:
            raise ValueError(f"display index {display_index} pushed twice")
        self._pending[display_index] = item
        self.max_depth = max(self.max_depth, len(self._pending))
        out = []
        while self._next in self._pending:
            out.append(self._pending.pop(self._next))
            self._next += 1
        return out

    @property
    def emitted(self) -> int:
        return self._next

    @property
    def held(self) -> int:
        return len(self._pending)

    @property
    def done(self) -> bool:
        return self._next == self.total


# ======================================================================
# picture-level decode (shared with the multi-stream serve layer)
# ======================================================================
def decode_picture_into_pool(
    data: bytes | memoryview,
    plan: PicturePlan,
    seq: SequenceHeader,
    mb_width: int,
    mb_height: int,
    pool,
    resilient: bool,
    counters: WorkCounters | None = None,
) -> int:
    """Decode one picture of ``data`` in place on a frame pool.

    The picture-granularity composition of the slice machinery: parse
    **every** slice of ``plan`` (duplicates included, so work counters
    match the sequential oracle exactly), reconstruct the
    statically-final slice of each row into ``pool`` slot
    ``plan.order`` (references read through zero-copy views — the
    availability rule must already hold), then run one concealment
    sweep over rows whose final slice was corrupt **or** that no slice
    covered at all (lost on the wire).  ``pool`` is any
    :class:`repro.parallel.mp.FramePoolBase` (shared memory in serve
    workers, process-local in the ``workers=0`` path).

    Returns the number of concealed slices (0 unless ``resilient``);
    raises the slice-corruption error when ``resilient`` is off —
    exactly the sequential decoder's contract.
    """
    parses = []
    corrupt_rows: list[int] = []
    concealed = 0
    for sl in plan.slices:
        # bytes() materialises shared-memory views (serve workers read
        # the stream from an arena); for a bytes slice it is a no-op.
        payload = unescape_payload(bytes(data[sl.payload_start : sl.payload_end]))
        try:
            with trace_span(
                "mp.slice.parse", cat="mp",
                order=plan.order, row=sl.vertical_position,
            ):
                sp = parse_slice(
                    payload,
                    sl.vertical_position,
                    plan.header,
                    mb_width,
                    mb_height,
                    plan.fwd is not None,
                )
        except SLICE_CORRUPTION_ERRORS:
            if not resilient:
                raise
            concealed += 1
            if sl.reconstruct:
                corrupt_rows.append(sl.vertical_position - 1)
            continue
        if counters is not None:
            counters.add(sp.counters)
        if sl.reconstruct:
            parses.append(sp)
    out = pool.view_frame(plan.order, plan.header.temporal_reference)
    fwd = pool.view_frame(plan.fwd) if plan.fwd is not None else None
    bwd = pool.view_frame(plan.bwd) if plan.bwd is not None else None
    try:
        if parses:
            with trace_span(
                "mp.picture.reconstruct", cat="mp",
                order=plan.order, slices=len(parses),
            ):
                reconstruct_slices(parses, seq, plan.header, out, fwd, bwd)
        if resilient:
            lost = missing_rows(
                mb_height,
                (sl.vertical_position - 1 for sl in plan.slices),
            )
            concealed += len(lost)
            conceal_rows(out, fwd, set(corrupt_rows).union(lost))
    finally:
        del out, fwd, bwd
    if counters is not None:
        counters.concealed_slices += concealed
    return concealed


# ======================================================================
# worker side
# ======================================================================
def _slice_worker_main(
    wid: int,
    arena_name: str,
    arena_size: int,
    plans: list[PicturePlan],
    seq: SequenceHeader,
    layout: FrameLayout,
    pool_name: str,
    mb_width: int,
    mb_height: int,
    resilient: bool,
    task_q,
    result_q,
    trace_dir: str | None,
    crash_task: tuple[int, int] | None,
) -> None:
    """Worker body: loop ``(picture, slice-batch)`` tasks to sentinel.

    The coded stream is read in place from the shared
    :class:`~repro.parallel.mp.StreamArena` — only each slice's few-KB
    payload is ever materialised as ``bytes``.  Per slice: phase-1
    parse (bit work only, exact counters), then — for the
    statically-final slice of each row — phase-2 reconstruction
    written *in place* on the shared frame pool, with reference
    pictures read through zero-copy views.  One
    ``("batch", order, ((slice, kind, payload), ...))`` message
    publishes the whole batch's results; a final ``("obs", ...)``
    message ships the worker's metrics and stall snapshots.
    """
    name = f"slice-worker-{wid}"
    pid = os.getpid()
    shard = (
        os.path.join(trace_dir, f"shard-{pid}.jsonl")
        if trace_dir is not None
        else None
    )
    if trace_dir is not None:
        enable_tracing(process_name=name)
        tracer = get_tracer()
        if tracer is not None:
            tracer.instant("mp.slice.worker.start", cat="mp")
            tracer.write_shard(shard)
    reset_metrics()
    stalls = StallTable()
    pool = SharedFramePool(layout, slots=0, name=pool_name)
    arena = StreamArena(name=arena_name, size=arena_size)
    data = arena.view
    last_end = time.monotonic_ns()
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            order, sidxs = task
            now = time.monotonic_ns()
            idle_ns = now - last_end
            if idle_ns > 0:
                trace_complete(
                    "mp.worker.idle", "stall", last_end, idle_ns,
                    reason=REASON_QUEUE_GET,
                )
                metrics().histogram("mp.worker.idle_ms").observe(idle_ns / 1e6)
                stalls.record(name, REASON_QUEUE_GET, idle_ns / 1e9)
            plan = plans[order]
            entries: list[tuple[int, str, object]] = []
            for sidx in sidxs:
                if crash_task == (order, sidx):
                    # Fault-injection hook (tests only): die mid-picture
                    # exactly the way an OOM kill / segfault would.
                    os._exit(23)
                sl = plan.slices[sidx]
                try:
                    payload = unescape_payload(
                        bytes(data[sl.payload_start : sl.payload_end])
                    )
                    try:
                        with trace_span(
                            "mp.slice.parse", cat="mp",
                            order=order, row=sl.vertical_position,
                        ):
                            sp = parse_slice(
                                payload,
                                sl.vertical_position,
                                plan.header,
                                mb_width,
                                mb_height,
                                plan.fwd is not None,
                            )
                    except SLICE_CORRUPTION_ERRORS as exc:
                        if resilient:
                            entries.append((sidx, "corrupt", None))
                        else:
                            entries.append((sidx, "error", exc))
                        continue
                    if sl.reconstruct:
                        out = pool.view_frame(
                            plan.order, plan.header.temporal_reference
                        )
                        fwd = (
                            pool.view_frame(plan.fwd)
                            if plan.fwd is not None
                            else None
                        )
                        bwd = (
                            pool.view_frame(plan.bwd)
                            if plan.bwd is not None
                            else None
                        )
                        try:
                            with trace_span(
                                "mp.slice.reconstruct", cat="mp",
                                order=order, row=sl.vertical_position,
                            ):
                                reconstruct_slices(
                                    [sp], seq, plan.header, out, fwd, bwd
                                )
                        finally:
                            del out, fwd, bwd
                    entries.append((sidx, "ok", sp.counters))
                except Exception as exc:  # pragma: no cover - defensive
                    entries.append((sidx, "error", exc))
            result_q.put(("batch", order, tuple(entries)))
            tracer = get_tracer()
            if tracer is not None and shard is not None:
                tracer.write_shard(shard)
            last_end = time.monotonic_ns()
        result_q.put(("obs", wid, metrics().snapshot(), stalls.snapshot()))
        tracer = get_tracer()
        if tracer is not None and shard is not None:
            tracer.instant("mp.slice.worker.stop", cat="mp")
            tracer.write_shard(shard)
    finally:
        try:
            pool.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            arena.close()
        except BufferError:  # pragma: no cover - defensive
            pass


# ======================================================================
# the decoder
# ======================================================================
class MPSliceDecoder:
    """Slice-level parallel decoder on real cores (paper Section 5.2).

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index (shared between the scan step and
        the workers, as in the paper).
    workers:
        ``0`` runs the identical queue/claim/complete pipeline
        in-process (deterministic CI path, no processes); ``>= 1``
        spawns that many persistent OS worker processes.  ``None``
        uses the available CPU count.
    mode:
        ``"simple"`` barriers after every picture; ``"improved"``
        (default) barriers only after reference pictures, letting
        consecutive B-pictures interleave.
    resilient:
        Conceal corrupt slices instead of failing (identical
        last-action-wins semantics to the sequential decoder).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"fork"`` on Linux keeps the coded bytes copy-on-write).
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        workers: int | None = None,
        mode: str | SliceMode = SliceMode.IMPROVED,
        resilient: bool = False,
        start_method: str | None = None,
        _crash_task: tuple[int, int] | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.data = data
        if index is not None:
            self.index = index
        else:
            t0 = time.perf_counter()
            with trace_span("mp.scan", cat="mp", bytes=len(data)):
                self.index = build_index(data)
            metrics().counter("mp.scan_ms").inc(
                (time.perf_counter() - t0) * 1e3
            )
        self.workers = workers
        self.mode = SliceMode(mode)
        self.resilient = resilient
        self.start_method = start_method
        #: Test-only fault injection: the worker that picks up this
        #: ``(picture_order, slice_index)`` dies with ``os._exit``.
        self._crash_task = _crash_task
        self.seq = self.index.sequence_header
        self.layout = FrameLayout.for_display(self.seq.width, self.seq.height)
        self.plans = scan_slice_tasks(self.index)
        #: Shared-pool bytes the last parallel run allocated; 0 for the
        #: in-process path.
        self.last_pool_bytes = 0
        #: Stall attribution for the last run (wall seconds, canonical
        #: :mod:`repro.obs.stalls` reasons; workers + scheduler).
        self.last_stalls = StallTable()
        #: Wall seconds of the last decode.
        self.last_wall_seconds = 0.0

    # ------------------------------------------------------------------
    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason.

        Denominator: ``wall seconds x (worker processes + scheduler)``
        — directly comparable with ``MPGopDecoder.stall_breakdown()``
        and the simulator's ``finish_cycles x processes``.
        """
        procs = self.workers + 1 if self.workers else 1
        return self.last_stalls.breakdown(self.last_wall_seconds * procs)

    def _base_counters(self) -> WorkCounters:
        """GOP + picture header contributions (the parent's share).

        The sequential decoder charges one header + its wire bits per
        GOP and per picture; slice headers/bits are charged inside
        :func:`parse_slice` by whichever process parses the slice.
        """
        c = WorkCounters()
        for gop in self.index.gops:
            c.headers += 1
            c.bits += (gop.header_payload_end - gop.header_payload_start + 4) * 8
        for plan in self.plans:
            c.headers += 1
            c.bits += plan.header_bits
        return c

    def _queue(
        self,
        on_gated: Callable[[int], None] | None = None,
        on_released: Callable[[int], None] | None = None,
    ) -> PictureSliceQueue:
        return PictureSliceQueue(
            [len(p.slices) for p in self.plans],
            [p.dependencies for p in self.plans],
            self.mode,
            on_gated=on_gated,
            on_released=on_released,
        )

    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the whole stream to display-ordered frames.

        Bit-identical to ``SequenceDecoder(data).decode_all()`` —
        frames *and* aggregate work counters.
        """
        return list(self.iter_frames(counters))

    def iter_frames(
        self, counters: WorkCounters | None = None
    ) -> Iterator[Frame]:
        """Yield decoded frames in display order."""
        if counters is not None:
            counters.add(self._base_counters())
        if self.workers == 0:
            yield from self._iter_frames_inprocess(counters)
        else:
            yield from self._iter_frames_mp(counters)

    # ------------------------------------------------------------------
    # workers=0: same queue discipline, no processes
    # ------------------------------------------------------------------
    def _iter_frames_inprocess(
        self, counters: WorkCounters | None
    ) -> Iterator[Frame]:
        self.last_pool_bytes = 0
        self.last_stalls = StallTable()
        t_run = time.perf_counter()
        q = self._queue()
        merger = DisplayMerger(len(self.plans))
        frames: dict[int, Frame] = {}
        corrupt_final: dict[int, list[int]] = {}
        published = [False] * len(self.plans)
        mbw, mbh = self.index.mb_width, self.index.mb_height

        def frame_of(order: int) -> Frame:
            if order not in frames:
                f = Frame.blank(self.seq.width, self.seq.height)
                f.temporal_reference = self.plans[
                    order
                ].header.temporal_reference
                frames[order] = f
            return frames[order]

        def sweep() -> Iterator[Frame]:
            """Publish every newly complete picture; emit display runs.

            Driven after each slice completion *and* upfront, so
            pictures the queue auto-settles (zero slices) are emitted
            too.
            """
            for order, plan in enumerate(self.plans):
                if published[order] or not q.is_complete(order):
                    continue
                published[order] = True
                fwd = frames.get(plan.fwd) if plan.fwd is not None else None
                rows = set(corrupt_final.pop(order, []))
                if self.resilient:
                    lost = missing_rows(
                        mbh,
                        (sl.vertical_position - 1 for sl in plan.slices),
                    )
                    if counters is not None:
                        counters.concealed_slices += len(lost)
                    rows.update(lost)
                if rows:
                    t0 = time.perf_counter()
                    n_t, n_s = conceal_rows(frame_of(order), fwd, rows)
                    record_concealment(
                        self.last_stalls, "scheduler", n_t, n_s,
                        time.perf_counter() - t0,
                    )
                for done in merger.push(plan.display_index, order):
                    # frame_of(): a zero-slice picture (possible in a
                    # truncated-but-indexable stream) auto-settles
                    # complete without any slice ever materialising
                    # its frame — emit it blank, like the scalar path.
                    f = frame_of(done)
                    if not self.plans[done].is_reference:
                        frames.pop(done)
                    yield f

        try:
            yield from sweep()
            while not q.done:
                claim = q.claim()
                if claim is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        "picture/slice queue stuck with incomplete pictures"
                    )
                order, sidx = claim
                plan = self.plans[order]
                sl = plan.slices[sidx]
                frame_of(order)
                payload = unescape_payload(
                    self.data[sl.payload_start : sl.payload_end]
                )
                try:
                    with trace_span(
                        "mp.slice.parse", cat="mp",
                        order=order, row=sl.vertical_position,
                    ):
                        sp = parse_slice(
                            payload, sl.vertical_position, plan.header,
                            mbw, mbh, plan.fwd is not None,
                        )
                except SLICE_CORRUPTION_ERRORS:
                    if not self.resilient:
                        raise
                    if counters is not None:
                        counters.concealed_slices += 1
                    if sl.reconstruct:
                        corrupt_final.setdefault(order, []).append(
                            sl.vertical_position - 1
                        )
                else:
                    if counters is not None:
                        counters.add(sp.counters)
                    if sl.reconstruct:
                        with trace_span(
                            "mp.slice.reconstruct", cat="mp",
                            order=order, row=sl.vertical_position,
                        ):
                            reconstruct_slices(
                                [sp],
                                self.seq,
                                plan.header,
                                frames[order],
                                frames[plan.fwd]
                                if plan.fwd is not None
                                else None,
                                frames[plan.bwd]
                                if plan.bwd is not None
                                else None,
                            )
                if q.complete_slice(order):
                    yield from sweep()
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run

    # ------------------------------------------------------------------
    # workers>=1: persistent process pool on shared memory
    # ------------------------------------------------------------------
    def _iter_frames_mp(
        self, counters: WorkCounters | None
    ) -> Iterator[Frame]:
        ctx = multiprocessing.get_context(self.start_method)
        pool = SharedFramePool(self.layout, slots=len(self.plans))
        arena = StreamArena(self.data)
        self.last_pool_bytes = pool.nbytes
        self.last_stalls = StallTable()
        stalls = self.last_stalls
        reg = metrics()
        depth_gauge = reg.gauge("queue.depth")
        dispatch_msgs = reg.counter("mp.dispatch.messages")
        trace_dir = (
            tempfile.mkdtemp(prefix="repro-trace-")
            if tracing_enabled()
            else None
        )
        # The spawn / liveness-wait / sentinel / reap lifecycle is the
        # backend's WorkerTeam; this planner keeps only the slice
        # scheduling itself (claim/complete queue, publish, merge).
        team = WorkerTeam(ctx, role="slice", unit="picture", loss="slice")
        task_q = team.task_q

        # -- scheduler-side stall attribution --------------------------
        gated_since: dict[int, int] = {}
        publish_ns: dict[int, int] = {}

        def on_gated(order: int) -> None:
            gated_since[order] = time.monotonic_ns()

        def on_released(order: int) -> None:
            t0 = gated_since.pop(order, None)
            if t0 is None:  # pragma: no cover - defensive
                return
            now = time.monotonic_ns()
            total_s = (now - t0) / 1e9
            plan = self.plans[order]
            if self.mode is SliceMode.IMPROVED:
                # The improved rule gates only on unpublished
                # references: the whole wait is a true data dependency.
                ref_s, barrier_s = total_s, 0.0
            else:
                # Simple rule: split the wait into the part covered by
                # reference publication (true dependency) and the
                # remainder — the policy-imposed per-picture barrier
                # the improved variant removes.
                dep_ns = max(
                    (publish_ns.get(d, t0) for d in plan.dependencies),
                    default=t0,
                )
                ref_s = max(0.0, (min(dep_ns, now) - t0) / 1e9)
                barrier_s = max(0.0, total_s - ref_s)
            if ref_s > 0.0:
                stalls.record("scheduler", REASON_REF_PUBLISH, ref_s)
            if barrier_s > 0.0:
                stalls.record("scheduler", REASON_BARRIER, barrier_s)
            trace_complete(
                "mp.slice.gate", "stall", t0, now - t0,
                order=order,
                reason=REASON_BARRIER
                if barrier_s > 0.0
                else REASON_REF_PUBLISH,
            )

        q = self._queue(on_gated=on_gated, on_released=on_released)
        merger = DisplayMerger(len(self.plans))
        held_since: dict[int, int] = {}
        status: dict[int, dict[int, str]] = {}
        t_run = time.perf_counter()

        def dispatch() -> None:
            # Batched dispatch: group the claimable slices by picture,
            # then split each picture's run into at most ``workers``
            # sub-batches — every worker can still grab a share of the
            # same picture (full intra-picture parallelism), but a
            # 15-slice picture on 4 workers costs 4 messages, not 15.
            claims = q.claim_all()
            if not claims:
                return
            by_order: dict[int, list[int]] = {}
            for order, sidx in claims:
                by_order.setdefault(order, []).append(sidx)
            for order, sidxs in by_order.items():
                batches = min(len(sidxs), max(self.workers, 1))
                per = -(-len(sidxs) // batches)  # ceil
                for i in range(0, len(sidxs), per):
                    task_q.put((order, tuple(sidxs[i : i + per])))
                    depth_gauge.inc()
                    dispatch_msgs.inc()

        def conceal_picture(order: int) -> None:
            """Parent-side concealment sweep: rows whose *final* slice
            was corrupt, plus — in resilient mode — rows no slice
            covered at all, get the sequential decoder's end-of-picture
            :func:`conceal_rows` sweep."""
            plan = self.plans[order]
            rows = {
                sl.vertical_position - 1
                for sidx, sl in enumerate(plan.slices)
                if sl.reconstruct
                and status.get(order, {}).get(sidx) == "corrupt"
            }
            if self.resilient:
                lost = missing_rows(
                    self.index.mb_height,
                    (sl.vertical_position - 1 for sl in plan.slices),
                )
                if counters is not None:
                    counters.concealed_slices += len(lost)
                rows.update(lost)
            if not rows:
                return
            out = pool.view_frame(order, plan.header.temporal_reference)
            fwd = (
                pool.view_frame(plan.fwd) if plan.fwd is not None else None
            )
            try:
                t0 = time.perf_counter()
                n_t, n_s = conceal_rows(out, fwd, rows)
                record_concealment(
                    stalls, "scheduler", n_t, n_s,
                    time.perf_counter() - t0,
                )
            finally:
                del out, fwd

        published = [False] * len(self.plans)

        def publish_new() -> list[int]:
            """Publish every newly complete picture (conceal + record
            publish time + bank in the display merger); return the
            display-ready run.  Runs *before* :func:`dispatch` so the
            stall split sees fresh publish times; the caller emits the
            returned frames after dispatching, keeping workers fed.
            Covers both worker-completed pictures and pictures the
            queue auto-settled (zero slices)."""
            ready: list[int] = []
            for order, plan in enumerate(self.plans):
                if published[order] or not q.is_complete(order):
                    continue
                published[order] = True
                conceal_picture(order)
                publish_ns[order] = time.monotonic_ns()
                emitted = merger.push(plan.display_index, order)
                if not emitted:
                    held_since[plan.display_index] = time.monotonic_ns()
                ready.extend(emitted)
            return ready

        def emit(ready: list[int]) -> Iterator[Frame]:
            for done in ready:
                t0 = held_since.pop(self.plans[done].display_index, None)
                if t0 is not None:
                    hold = time.monotonic_ns() - t0
                    stalls.record("merge", REASON_MERGE, hold / 1e9)
                    trace_complete(
                        "mp.merge.hold", "stall", t0, hold,
                        order=done, reason=REASON_MERGE,
                    )
                with trace_span("mp.shm.read", cat="mp", order=done):
                    frame = pool.read_frame(
                        done, self.plans[done].header.temporal_reference
                    )
                yield frame

        try:
            for wid in range(self.workers):
                team.spawn(
                    _slice_worker_main,
                    (
                        wid,
                        arena.name,
                        arena.size,
                        self.plans,
                        self.seq,
                        self.layout,
                        pool.name,
                        self.index.mb_width,
                        self.index.mb_height,
                        self.resilient,
                        team.task_q,
                        team.result_q,
                        trace_dir,
                        self._crash_task,
                    ),
                )

            ready = publish_new()
            dispatch()
            yield from emit(ready)
            outstanding = sum(len(p.slices) for p in self.plans)
            while outstanding > 0:
                msg = team.get_result(stalls)
                if msg[0] == "obs":  # pragma: no cover - defensive
                    continue
                _, order, entries = msg
                depth_gauge.dec()
                for sidx, kind, payload in entries:
                    if kind == "error":
                        raise payload
                    outstanding -= 1
                    status.setdefault(order, {})[sidx] = kind
                    if kind == "corrupt":
                        if counters is not None:
                            counters.concealed_slices += 1
                    elif counters is not None:
                        counters.add(payload)
                    if q.complete_slice(order):
                        ready = publish_new()
                        dispatch()
                        yield from emit(ready)

            # Graceful shutdown: sentinel per worker, then collect the
            # final observability message from each.
            team.send_sentinels()
            obs_left = len(team.procs)
            while obs_left > 0:
                msg = team.get_result(stalls)
                if msg[0] != "obs":  # pragma: no cover - defensive
                    continue
                _, wid, metrics_snap, stalls_snap = msg
                if metrics_snap is not None:
                    reg.merge_snapshot(metrics_snap)
                if stalls_snap is not None:
                    stalls.merge(stalls_snap)
                obs_left -= 1
            team.join_all(10.0)
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run
            team.teardown(5.0)
            release_segments(pool, arena)
            if trace_dir is not None:
                collect_trace_shards(trace_dir)


def decode_slice_parallel(
    data: bytes,
    workers: int | None = None,
    mode: str | SliceMode = SliceMode.IMPROVED,
    resilient: bool = False,
    start_method: str | None = None,
) -> list[Frame]:
    """Convenience: slice-parallel decode to display-ordered frames."""
    return MPSliceDecoder(
        data,
        workers=workers,
        mode=mode,
        resilient=resilient,
        start_method=start_method,
    ).decode_all()
