"""Bit-exact parity of the real-process mp decoder vs the sequential one.

Mirrors ``tests/mpeg2/test_batched_parity.py``: the GOP-parallel
decoder (:mod:`repro.parallel.mp`) must be indistinguishable from
``SequenceDecoder.decode_all`` in every observable — decoded pixels,
display order, aggregate work counters, and ``resilient=True``
concealment — across worker counts, the Table 1 resolutions, and
hypothesis-random encodes.  Frames cross a process boundary through
the shared-memory frame pool, so these tests also pin the pool's
layout round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.encoder import EncoderConfig, encode_sequence
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import build_index, gop_byte_ranges, gop_substream
from repro.parallel.mp import (
    FrameLayout,
    GopResult,
    MPGopDecoder,
    SharedFramePool,
    _merge_in_order,
    decode_parallel,
    scan_gop_tasks,
)
from repro.video.streams import build_stream, paper_stream_matrix
from repro.video.synthetic import SyntheticVideo

from tests.mpeg2.test_batched_parity import assert_frames_identical
from tests.mpeg2.test_resilience import corrupt_slice

#: Worker counts exercised on every stream: the in-process fallback and
#: a real 2-process pool (real pools of any size behave identically on
#: correctness; size only matters for wall-clock, measured under perf).
WORKER_COUNTS = (0, 2)


def _sequential(data: bytes, resilient: bool = False):
    counters = WorkCounters()
    frames = SequenceDecoder(data, resilient=resilient).decode_all(counters)
    return frames, counters


def _parallel(data: bytes, workers: int, resilient: bool = False):
    counters = WorkCounters()
    frames = MPGopDecoder(data, workers=workers, resilient=resilient).decode_all(
        counters
    )
    return frames, counters


def assert_mp_parity(data: bytes, workers: int, resilient: bool = False):
    frames_s, counters_s = _sequential(data, resilient)
    frames_p, counters_p = _parallel(data, workers, resilient)
    assert_frames_identical(frames_s, frames_p)
    assert [f.temporal_reference for f in frames_s] == [
        f.temporal_reference for f in frames_p
    ]
    assert counters_s == counters_p


class TestScanStep:
    """The scan products: GOP byte ranges and substreams."""

    def test_gop_ranges_are_contiguous_and_ordered(self, two_gop_stream):
        index = build_index(two_gop_stream)
        ranges = gop_byte_ranges(index)
        assert len(ranges) == 2
        for (s0, e0), (s1, e1) in zip(ranges, ranges[1:]):
            assert s0 < e0 <= s1 < e1
        # Last GOP ends at the stream tail bar the sequence end code.
        assert ranges[-1][1] <= len(two_gop_stream)

    def test_substream_decodes_standalone(self, two_gop_stream):
        index = build_index(two_gop_stream)
        whole = SequenceDecoder(two_gop_stream).decode_all()
        for gi, gop in enumerate(index.gops):
            sub = gop_substream(two_gop_stream, index, gi)
            frames = SequenceDecoder(sub).decode_all()
            assert len(frames) == len(gop.pictures)
            offset = sum(len(g.pictures) for g in index.gops[:gi])
            assert_frames_identical(whole[offset : offset + len(frames)], frames)

    def test_tasks_cover_every_picture_once(self, medium_stream):
        index = build_index(medium_stream)
        tasks = scan_gop_tasks(index)
        slots = []
        for t in tasks:
            slots.extend(range(t.slot_base, t.slot_base + t.picture_count))
        assert slots == list(range(index.picture_count))


class TestSharedFramePool:
    def test_frame_roundtrip_through_shared_memory(self):
        layout = FrameLayout.for_display(40, 24)
        pool = SharedFramePool(layout, slots=3)
        try:
            rng = np.random.default_rng(0)
            frames = []
            for slot in range(3):
                f = Frame.blank(40, 24)
                f.y[:, :] = rng.integers(0, 256, f.y.shape, dtype=np.uint8)
                f.cb[:, :] = rng.integers(0, 256, f.cb.shape, dtype=np.uint8)
                f.cr[:, :] = rng.integers(0, 256, f.cr.shape, dtype=np.uint8)
                f.temporal_reference = slot
                pool.write_frame(slot, f)
                frames.append(f)
            for slot, f in enumerate(frames):
                got = pool.read_frame(slot, f.temporal_reference)
                assert got.temporal_reference == slot
                assert np.array_equal(got.y, f.y)
                assert np.array_equal(got.cb, f.cb)
                assert np.array_equal(got.cr, f.cr)
                assert (got.display_width, got.display_height) == (40, 24)
        finally:
            pool.close()
            pool.unlink()

    def test_slot_bytes_is_420(self):
        # 1.5 bytes/coded pixel — the frames(x) unit of the paper's
        # memory model, now allocated for real in shared memory.
        layout = FrameLayout.for_display(64, 48)
        assert layout.slot_bytes == 64 * 48 * 3 // 2
        layout = FrameLayout.for_display(40, 24)  # pads to 48x32 coded
        assert layout.slot_bytes == 48 * 32 * 3 // 2


class TestDisplayMerge:
    def test_out_of_order_completions_are_reordered(self):
        results = [GopResult(gop=g, slot_base=0) for g in (2, 0, 3, 1)]
        merged = list(_merge_in_order(iter(results), 4))
        assert [r.gop for r in merged] == [0, 1, 2, 3]

    def test_lost_gop_raises(self):
        results = [GopResult(gop=g, slot_base=0) for g in (0, 2)]
        with pytest.raises(RuntimeError, match=r"\[1\]"):
            list(_merge_in_order(iter(results), 3))


class TestBasicParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_small_stream(self, small_stream, workers):
        assert_mp_parity(small_stream, workers)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_two_gop_stream(self, two_gop_stream, workers):
        assert_mp_parity(two_gop_stream, workers)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_medium_stream(self, medium_stream, workers):
        assert_mp_parity(medium_stream, workers)

    def test_more_workers_than_gops(self, two_gop_stream):
        # Worker count is capped at the GOP count; output unchanged.
        assert_mp_parity(two_gop_stream, workers=8)

    def test_scalar_engine_workers(self, two_gop_stream):
        ref, _ = _sequential(two_gop_stream)
        got = decode_parallel(two_gop_stream, workers=2, engine="scalar")
        assert_frames_identical(ref, got)

    def test_invalid_arguments(self, small_stream):
        with pytest.raises(ValueError, match="engine"):
            MPGopDecoder(small_stream, engine="bogus")
        with pytest.raises(ValueError, match="workers"):
            MPGopDecoder(small_stream, workers=-1)


class TestResolutionMatrix:
    """All four Table 1 resolutions, two GOPs each (scaled 1/4)."""

    @pytest.mark.parametrize(
        "spec",
        paper_stream_matrix(pictures=8, resolution_divisor=4, gop_sizes=(4,)),
        ids=lambda s: s.name,
    )
    def test_table1_resolution_parity(self, spec):
        data = build_stream(spec)
        assert_mp_parity(data, workers=0)
        assert_mp_parity(data, workers=2)


class TestResilientParity:
    """Concealment inside a worker == concealment in-sequence."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_corrupt_p_slice(self, small_stream, workers):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        frames_s, counters_s = _sequential(data, resilient=True)
        assert counters_s.concealed_slices >= 1
        assert_mp_parity(data, workers, resilient=True)

    def test_corrupt_slice_in_second_gop(self, medium_stream):
        data = corrupt_slice(medium_stream, gop=1, pic=2, sl=1)
        assert_mp_parity(data, workers=2, resilient=True)

    def test_strict_mode_raises_across_processes(self, small_stream):
        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        with pytest.raises(Exception):
            decode_parallel(data, workers=2)


class TestPropertyParity:
    """Parity over randomly-seeded multi-GOP encodes."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        qscale=st.integers(min_value=2, max_value=16),
    )
    def test_random_streams(self, seed: int, qscale: int):
        frames = SyntheticVideo(width=32, height=32, seed=seed).frames(8)
        data = encode_sequence(
            frames, EncoderConfig(gop_size=4, ip_distance=3, qscale_code=qscale)
        )
        assert_mp_parity(data, workers=0)

    def test_one_random_stream_through_real_workers(self):
        frames = SyntheticVideo(width=32, height=32, seed=424242).frames(12)
        data = encode_sequence(
            frames, EncoderConfig(gop_size=4, ip_distance=3, qscale_code=5)
        )
        assert_mp_parity(data, workers=3)
