"""Figure 11 — slice-version speedups: knees and the improved fix.

Paper: the simple version (barrier every picture) shows *knees*
whenever ceil(slices / P) drops — 352x240 has 15 slices so nothing
improves past 8 workers; the improved version (barrier only at I/P
pictures) exposes the slices of consecutive B-pictures and restores
good speedups at every resolution.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode
from repro.parallel.stats import speedup_curve

from benchmarks.conftest import PAPER_CASES

SWEEP = [1, 2, 4, 6, 8, 10, 12, 14]
PICTURES = 130  # ten gop-13 GOPs: steady state for a slice-level run


def test_fig11_slice_speedups(benchmark, env, record):
    def run():
        curves = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=PICTURES)
            for mode in (SliceMode.SIMPLE, SliceMode.IMPROVED):
                curves[(res, mode.value)] = speedup_curve(
                    lambda p: env.run_slice(profile, p, mode), SWEEP
                )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case"] + [f"P={p}" for p in SWEEP],
        title="Figure 11: slice-version speedup vs workers",
    )
    for (res, mode), curve in curves.items():
        table.add_row(f"{res}/{mode}", *[round(curve[p], 2) for p in SWEEP])
    record(table.render())

    for res in PAPER_CASES:
        simple = curves[(res, "simple")]
        improved = curves[(res, "improved")]
        slices = env.profile(res, 13, pictures=13).slices_per_picture
        # Simple version saturates once P exceeds slices/picture.
        if slices < 14:
            assert simple[14] < slices + 1, (
                f"{res}: simple speedup {simple[14]:.1f} above {slices}-slice cap"
            )
            # Improved version breaks through the cap.
            assert improved[14] > simple[14] * 1.2, res
        # Improved is never worse anywhere on the sweep.
        for p in SWEEP:
            assert improved[p] >= simple[p] * 0.95, (res, p)


def test_fig11_simple_knee_positions(benchmark, env, record):
    """The knee structure: speedup improves only when ceil(slices/P)
    drops (paper: 'there is an improvement ... only when the load is
    divided equally')."""
    res = next(iter(PAPER_CASES))
    profile = env.profile(res, 13, pictures=PICTURES)
    slices = profile.slices_per_picture

    def run():
        return {
            p: env.run_slice(profile, p, SliceMode.SIMPLE).pictures_per_second
            for p in range(1, 15)
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p in range(2, 15):
        gain = rates[p] / rates[p - 1]
        bound_dropped = -(-slices // p) < -(-slices // (p - 1))
        rows.append((p, -(-slices // p), round(gain, 3), bound_dropped))
    table = TextTable(
        ["P", "ceil(slices/P)", "rate gain", "bound dropped?"],
        title=f"Figure 11 knees: {res}, {slices} slices/picture (simple version)",
    )
    for row in rows:
        table.add_row(*row)
    record(table.render())

    # Knee structure: adding a worker helps much more when the
    # ceil(slices/P) bound drops than when it does not (slice costs
    # vary, so between-knee gains are small but nonzero — as in the
    # paper's own curves).
    drop_gains = [g for _, _, g, d in rows if d]
    flat_gains = [g for _, _, g, d in rows if not d]
    assert max(flat_gains) < 1.2, f"non-knee gain too large: {max(flat_gains)}"
    assert sum(drop_gains) / len(drop_gains) > sum(flat_gains) / len(flat_gains) + 0.1
