"""Shared fixtures for the executor suites.

Reuses the fault-injection helpers from
``tests/parallel/test_mp_fault_injection.py`` so the unified backend
is held to the exact same "no leaks, no hangs, no zombies"
postconditions as the decoders it replaced.
"""

from __future__ import annotations

import signal
import time

import pytest

from tests.parallel.test_mp_fault_injection import (
    FAIL_DEADLINE_S,
    shm_snapshot,
)


@pytest.fixture
def no_shm_leak():
    """Assert the test leaves no new /dev/shm entries behind."""
    before = shm_snapshot()
    yield
    for _ in range(20):
        leaked = shm_snapshot() - before
        if not leaked:
            return
        time.sleep(0.1)
    raise AssertionError(f"leaked shared-memory segments: {sorted(leaked)}")


@pytest.fixture
def deadline():
    """SIGALRM watchdog: a fault must surface, not hang the suite."""

    def on_alarm(signum, frame):  # pragma: no cover - only on bug
        raise TimeoutError(
            f"executor fault did not surface within {FAIL_DEADLINE_S}s — "
            "the unified backend's liveness poll is broken"
        )

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(FAIL_DEADLINE_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)
