"""Figure 14 — read miss rate vs cache size (working sets).

Paper (64-byte lines): the read miss rate drops dramatically once the
per-processor cache exceeds 16-32 KB *provided it has some
associativity*; direct-mapped caches may need more than 64 KB.  Left
panel: GOP version, 1 processor; right panel: simple slice version, 8
processors.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.cache import CacheConfig, generate_decode_trace, simulate

from benchmarks.conftest import PAPER_CASES

CAPACITIES = [4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10]
ASSOCS = [1, 2, 0]  # direct-mapped, 2-way, fully associative
TRACE_PICTURES = 7


def test_fig14_cache_size_sweep(benchmark, env, record):
    res = next(iter(PAPER_CASES))
    data = env.stream(res, 13)

    def run():
        out = {}
        for procs in (1, 8):
            trace = generate_decode_trace(
                data, processors=procs, max_pictures=TRACE_PICTURES
            )
            for cap in CAPACITIES:
                for assoc in ASSOCS:
                    total, _ = simulate(
                        trace,
                        CacheConfig(line_size=64, capacity=cap, associativity=assoc),
                    )
                    out[(procs, cap, assoc)] = total.read_miss_rate
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for procs, label in ((1, "GOP version, 1 processor"),
                         (8, "simple slice version, 8 processors")):
        table = TextTable(
            ["cache size", "direct-mapped %", "2-way %", "fully-assoc %"],
            title=f"Figure 14 ({label}), 64B lines, {res}",
        )
        for cap in CAPACITIES:
            table.add_row(
                f"{cap >> 10}KB",
                *[round(rates[(procs, cap, a)] * 100, 3) for a in ASSOCS],
            )
        blocks.append(table.render())
    record("\n\n".join(blocks))

    from repro.analysis import working_set_knee

    def knee(procs: int, assoc: int) -> int:
        sweep = {cap: rates[(procs, cap, assoc)] for cap in CAPACITIES}
        found = working_set_knee(sweep, threshold=0.35)
        return found if found is not None else CAPACITIES[-1] * 2

    for procs in (1, 8):
        # With full associativity the working set fits by 16-32KB...
        assert knee(procs, 0) <= 32 << 10, f"{procs}p FA knee at {knee(procs, 0)}"
        # ...while direct-mapped caches need substantially more (the
        # paper: 'may need to be larger than 64K bytes').
        assert knee(procs, 1) >= 2 * knee(procs, 0), (
            f"{procs}p: DM knee {knee(procs, 1)} vs FA knee {knee(procs, 0)}"
        )
