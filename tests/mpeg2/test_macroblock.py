"""Slice/macroblock layer: encode->decode identity at slice granularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.dct import fdct, idct_rounded
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader, SliceHeader
from repro.mpeg2.macroblock import (
    MacroblockPlan,
    PictureCodingContext,
    SliceDecodeError,
    decode_slice,
    encode_slice,
)
from repro.mpeg2.motion import MotionVector
from repro.mpeg2.quant import dequantize_intra, quantize_intra
from repro.mpeg2.reconstruct import extract_macroblock
from repro.mpeg2.scan import scan_block

W, H = 64, 32  # 4 x 2 macroblocks
MBW = 4


def _seq():
    return SequenceHeader(width=W, height=H)


def _pic(ptype, f=1):
    return PictureHeader(
        temporal_reference=0, picture_type=ptype,
        forward_f_code=f, backward_f_code=f,
    )


def _intra_plan(address, pixels=None, seed=0, qscale=4):
    """A valid intra plan for an arbitrary 16x16x(6 blocks) content."""
    if pixels is None:
        rng = np.random.default_rng(seed)
        pixels = rng.integers(0, 256, size=(6, 8, 8))
    seq = _seq()
    levels = quantize_intra(fdct(pixels), seq.intra_quant_matrix, qscale)
    return MacroblockPlan(address=address, intra=True, levels=scan_block(levels))


def _decode(payload, row, ctx):
    counters = WorkCounters()
    decode_slice(payload, row + 1, ctx, counters)
    return counters


def _encode_row(plans, ptype=PictureType.I, qscale_code=2, f=1):
    w = BitWriter()
    encode_slice(w, plans, 0, MBW, qscale_code, _pic(ptype, f))
    w.align()
    return w.getvalue()


class TestIntraSlice:
    def test_roundtrip_reconstruction(self):
        plans = [_intra_plan(a, seed=a) for a in range(MBW)]
        payload = _encode_row(plans, PictureType.I)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(seq=_seq(), pic=_pic(PictureType.I), out=out)
        counters = _decode(payload, 0, ctx)
        assert counters.macroblocks == MBW
        assert counters.idct_blocks == MBW * 6

        # Expected reconstruction: dequant + IDCT of each plan.
        seq = _seq()
        from repro.mpeg2.scan import unscan_block

        for a, plan in enumerate(plans):
            raster = unscan_block(plan.levels)
            recon = np.clip(
                idct_rounded(dequantize_intra(raster, seq.intra_quant_matrix, 4)),
                0, 255,
            )
            got = extract_macroblock(out, 0, a)
            assert np.array_equal(got, recon), f"macroblock {a}"

    def test_skipped_mb_illegal_in_I(self):
        # Plans for MBs 0, 2, 3 (gap at 1) — decoder must reject in I.
        plans = [_intra_plan(a, seed=a) for a in (0, 2, 3)]
        payload = _encode_row(plans, PictureType.I)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.I), out=Frame.blank(W, H)
        )
        with pytest.raises(SliceDecodeError):
            _decode(payload, 0, ctx)

    def test_slice_must_cover_first_and_last(self):
        with pytest.raises(ValueError):
            _encode_row([_intra_plan(1), _intra_plan(3)])
        with pytest.raises(ValueError):
            _encode_row([_intra_plan(0), _intra_plan(2)])


class TestPSlice:
    def _ref(self, seed=1):
        rng = np.random.default_rng(seed)
        ref = Frame.blank(W, H)
        ref.y[:] = rng.integers(0, 256, size=ref.y.shape)
        ref.cb[:] = rng.integers(0, 256, size=ref.cb.shape)
        ref.cr[:] = rng.integers(0, 256, size=ref.cr.shape)
        return ref

    def test_skipped_mb_copies_colocated(self):
        ref = self._ref()
        zero = np.zeros((6, 64), dtype=np.int64)
        plans = [
            MacroblockPlan(address=0, intra=False, levels=zero,
                           mv_fwd=MotionVector.ZERO),
            MacroblockPlan(address=3, intra=False, levels=zero,
                           mv_fwd=MotionVector.ZERO),
        ]
        payload = _encode_row(plans, PictureType.P)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.P), out=out, fwd=ref
        )
        counters = _decode(payload, 0, ctx)
        assert counters.macroblocks == MBW
        # Entire row must equal the reference (zero MV, zero residual
        # everywhere, skipped or coded).
        assert np.array_equal(out.y[:16], ref.y[:16])
        assert np.array_equal(out.cb[:8], ref.cb[:8])

    def test_motion_vector_applies(self):
        ref = self._ref(seed=2)
        zero = np.zeros((6, 64), dtype=np.int64)
        mv = MotionVector(dy=4, dx=6)  # 2 down, 3 right in full pels
        plans = [
            MacroblockPlan(address=a, intra=False, levels=zero, mv_fwd=mv)
            for a in range(MBW - 1)
        ] + [MacroblockPlan(address=MBW - 1, intra=False, levels=zero,
                            mv_fwd=MotionVector.ZERO)]
        payload = _encode_row(plans, PictureType.P)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.P), out=out, fwd=ref
        )
        _decode(payload, 0, ctx)
        # Luma of MB 1 must equal ref shifted by (+2, +3).
        assert np.array_equal(
            out.y[0:16, 16:32], ref.y[2:18, 19:35]
        )

    def test_p_no_mc_mode_resets_pmv(self):
        """A coded-only MB (zero MV) between two moving MBs must not
        inherit the earlier motion vector."""
        ref = self._ref(seed=3)
        zero = np.zeros((6, 64), dtype=np.int64)
        mv = MotionVector(dy=2, dx=2)
        # residual for the middle MB: make one coefficient nonzero so
        # the "coded, no MC" type is selected.
        coded = np.zeros((6, 64), dtype=np.int64)
        coded[0, 1] = 3
        plans = [
            MacroblockPlan(address=0, intra=False, levels=zero, mv_fwd=mv),
            MacroblockPlan(address=1, intra=False, levels=coded,
                           mv_fwd=MotionVector.ZERO),
            MacroblockPlan(address=2, intra=False, levels=zero, mv_fwd=mv),
            MacroblockPlan(address=3, intra=False, levels=zero,
                           mv_fwd=MotionVector.ZERO),
        ]
        payload = _encode_row(plans, PictureType.P)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.P), out=out, fwd=ref
        )
        _decode(payload, 0, ctx)
        assert np.array_equal(out.y[0:16, 0:16], ref.y[1:17, 1:17])
        assert np.array_equal(out.y[0:16, 32:48], ref.y[1:17, 33:49])


class TestBSlice:
    def test_bidirectional_average(self):
        fwd = Frame.blank(W, H)
        bwd = Frame.blank(W, H)
        fwd.y[:] = 100
        bwd.y[:] = 103
        fwd.cb[:] = fwd.cr[:] = 50
        bwd.cb[:] = bwd.cr[:] = 53
        zero = np.zeros((6, 64), dtype=np.int64)
        plans = [
            MacroblockPlan(
                address=a, intra=False, levels=zero,
                mv_fwd=MotionVector.ZERO, mv_bwd=MotionVector.ZERO,
            )
            for a in range(MBW)
        ]
        payload = _encode_row(plans, PictureType.B)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.B), out=out, fwd=fwd, bwd=bwd
        )
        counters = _decode(payload, 0, ctx)
        assert counters.bidir_macroblocks == MBW
        assert np.all(out.y[:16] == 102)  # (100+103+1)>>1
        assert np.all(out.cb[:8] == 52)

    def test_b_skip_repeats_previous_mode(self):
        fwd = Frame.blank(W, H)
        bwd = Frame.blank(W, H)
        rng = np.random.default_rng(9)
        fwd.y[:] = rng.integers(0, 256, size=fwd.y.shape)
        bwd.y[:] = rng.integers(0, 256, size=bwd.y.shape)
        zero = np.zeros((6, 64), dtype=np.int64)
        mv = MotionVector(dy=2, dx=0)
        # Coded at 0 and 3 (backward-only, mv); 1 and 2 skipped ->
        # decoder must repeat backward-only prediction with mv.
        plans = [
            MacroblockPlan(address=0, intra=False, levels=zero, mv_bwd=mv),
            MacroblockPlan(address=3, intra=False, levels=zero, mv_bwd=mv),
        ]
        payload = _encode_row(plans, PictureType.B)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(
            seq=_seq(), pic=_pic(PictureType.B), out=out, fwd=fwd, bwd=bwd
        )
        _decode(payload, 0, ctx)
        assert np.array_equal(out.y[0:16, 16:32], bwd.y[1:17, 16:32])
        assert np.array_equal(out.y[0:16, 32:48], bwd.y[1:17, 32:48])


class TestSliceIndependence:
    def test_dc_and_pmv_reset_between_slices(self):
        """Decoding the same slice payload twice (as two different rows)
        must give identical pixels — no state leaks across slices."""
        plans = [_intra_plan(a, seed=a + 40) for a in range(MBW)]
        payload0 = _encode_row(plans, PictureType.I)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(seq=_seq(), pic=_pic(PictureType.I), out=out)
        _decode(payload0, 0, ctx)

        # Same macroblock content, planned for row 1.
        plans_row1 = [
            MacroblockPlan(address=MBW + i, intra=True, levels=p.levels)
            for i, p in enumerate(plans)
        ]
        w = BitWriter()
        encode_slice(w, plans_row1, 1, MBW, 2, _pic(PictureType.I))
        w.align()
        decode_slice(w.getvalue(), 2, ctx, WorkCounters())
        assert np.array_equal(out.y[0:16], out.y[16:32])

    def test_address_overflow_detected(self):
        plans = [_intra_plan(a) for a in range(MBW)]
        payload = _encode_row(plans)
        out = Frame.blank(W, H)
        ctx = PictureCodingContext(seq=_seq(), pic=_pic(PictureType.I), out=out)
        # Feed a row-0 payload claiming to be the last row: fine.
        decode_slice(payload, 2, ctx, WorkCounters())
        # But an out-of-range vertical position must fail.
        with pytest.raises(SliceDecodeError):
            decode_slice(payload, 3, ctx, WorkCounters())
