"""Metrics registry unit tests: primitives, snapshots, merging."""

from __future__ import annotations

import json

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge()
        g.set(3)
        g.inc(2)
        g.dec(4)
        assert g.value == 1
        assert g.max == 5
        assert g.snapshot() == {"value": 1, "max": 5}

    def test_histogram_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.snapshot()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert s["p50"] == 3.0

    def test_histogram_reservoir_bounded_but_aggregates_exact(self):
        h = Histogram()
        n = HISTOGRAM_SAMPLE_CAP + 100
        for i in range(n):
            h.observe(float(i))
        assert len(h.samples) == HISTOGRAM_SAMPLE_CAP
        s = h.snapshot()
        assert s["count"] == n
        assert s["max"] == float(n - 1)  # exact despite reservoir cap

    def test_empty_histogram_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}


class TestRegistry:
    def test_lazy_creation_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"]["max"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_snapshot_folds_worker_into_parent(self):
        worker = MetricsRegistry()
        worker.counter("pics").inc(13)
        worker.gauge("occ").set(5)
        for v in (1.0, 2.0):
            worker.histogram("ms").observe(v)

        parent = MetricsRegistry()
        parent.counter("pics").inc(2)
        parent.histogram("ms").observe(10.0)
        parent.merge_snapshot(worker.snapshot())

        assert parent.counter("pics").value == 15
        assert parent.gauge("occ").max == 5
        h = parent.histogram("ms")
        assert h.count == 3
        assert h.sum == 13.0
        assert h.min == 1.0
        assert h.max == 10.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_render_table_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("decode.pics").inc(4)
        reg.gauge("queue.depth").set(2)
        reg.histogram("decode.picture_ms").observe(3.0)
        text = reg.render_table()
        for name in ("decode.pics", "queue.depth", "decode.picture_ms"):
            assert name in text

    def test_render_table_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()


class TestGlobalRegistry:
    def test_global_registry_resets(self):
        metrics().counter("tmp").inc()
        assert metrics().counter("tmp").value == 1
        reset_metrics()
        assert metrics().counter("tmp").value == 0
