"""Sequence, GOP, picture and slice header syntax.

Each header (de)serialises itself to a :class:`BitWriter` /
:class:`BitReader` positioned just *after* its start code.  Layout
follows ISO 11172-2 / 13818-2; the fields we hold constant in this
reproduction (aspect ratio, constrained flag, custom matrices) are
still coded on the wire so header sizes are realistic for the scan-rate
and memory models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.scan import ZIGZAG
from repro.mpeg2.tables import (
    DEFAULT_INTRA_QUANT_MATRIX,
    DEFAULT_NON_INTRA_QUANT_MATRIX,
)

#: frame_rate_code -> frames/second (ISO 13818-2 Table 6-4, subset).
FRAME_RATES = {
    1: 23.976,
    2: 24.0,
    3: 25.0,
    4: 29.97,
    5: 30.0,
    6: 50.0,
    7: 59.94,
    8: 60.0,
}


def frame_rate_code_for(fps: float) -> int:
    """The frame_rate_code whose rate is nearest ``fps``."""
    return min(FRAME_RATES, key=lambda c: abs(FRAME_RATES[c] - fps))


@dataclass
class SequenceHeader:
    """sequence_header(): picture dimensions, rate, quant matrices."""

    width: int
    height: int
    frame_rate_code: int = 5  # 30 fps, the paper's display rate
    bit_rate: int = 5_000_000  # bits/second (paper: 5 or 7 Mb/s)
    vbv_buffer_size: int = 112
    aspect_ratio_code: int = 1
    intra_quant_matrix: np.ndarray = field(
        default_factory=lambda: DEFAULT_INTRA_QUANT_MATRIX.copy()
    )
    non_intra_quant_matrix: np.ndarray = field(
        default_factory=lambda: DEFAULT_NON_INTRA_QUANT_MATRIX.copy()
    )

    @property
    def frame_rate(self) -> float:
        return FRAME_RATES[self.frame_rate_code]

    def write(self, w: BitWriter) -> None:
        if not (0 < self.width < 4096 and 0 < self.height < 4096):
            raise ValueError(f"dimensions out of 12-bit range: {self.width}x{self.height}")
        w.write_bits(self.width, 12)
        w.write_bits(self.height, 12)
        w.write_bits(self.aspect_ratio_code, 4)
        w.write_bits(self.frame_rate_code, 4)
        # bit_rate is coded in units of 400 bits/s, rounded up.
        w.write_bits(min((self.bit_rate + 399) // 400, (1 << 18) - 1), 18)
        w.write_bit(1)  # marker
        w.write_bits(self.vbv_buffer_size, 10)
        w.write_bit(0)  # constrained_parameters_flag
        custom_intra = not np.array_equal(
            self.intra_quant_matrix, DEFAULT_INTRA_QUANT_MATRIX
        )
        w.write_bit(int(custom_intra))
        if custom_intra:
            _write_matrix(w, self.intra_quant_matrix)
        custom_non_intra = not np.array_equal(
            self.non_intra_quant_matrix, DEFAULT_NON_INTRA_QUANT_MATRIX
        )
        w.write_bit(int(custom_non_intra))
        if custom_non_intra:
            _write_matrix(w, self.non_intra_quant_matrix)
        w.align()

    @classmethod
    def read(cls, r: BitReader) -> "SequenceHeader":
        width = r.read_bits(12)
        height = r.read_bits(12)
        aspect = r.read_bits(4)
        frc = r.read_bits(4)
        bit_rate = r.read_bits(18) * 400
        if r.read_bit() != 1:
            raise ValueError("sequence header: missing marker bit")
        vbv = r.read_bits(10)
        r.read_bit()  # constrained_parameters_flag
        intra = (
            _read_matrix(r) if r.read_bit() else DEFAULT_INTRA_QUANT_MATRIX.copy()
        )
        non_intra = (
            _read_matrix(r) if r.read_bit() else DEFAULT_NON_INTRA_QUANT_MATRIX.copy()
        )
        return cls(
            width=width,
            height=height,
            frame_rate_code=frc,
            bit_rate=bit_rate,
            vbv_buffer_size=vbv,
            aspect_ratio_code=aspect,
            intra_quant_matrix=intra,
            non_intra_quant_matrix=non_intra,
        )


def _write_matrix(w: BitWriter, matrix: np.ndarray) -> None:
    """Emit a quant matrix in zig-zag order, 8 bits per entry."""
    flat = matrix.reshape(64)[ZIGZAG]
    for v in flat:
        w.write_bits(int(v), 8)


def _read_matrix(r: BitReader) -> np.ndarray:
    out = np.empty(64, dtype=np.int64)
    scanned = [r.read_bits(8) for _ in range(64)]
    out[ZIGZAG] = scanned
    return out.reshape(8, 8)


@dataclass
class GopHeader:
    """group_of_pictures() header: time code + closed/broken flags."""

    time_code_pictures: int = 0  # picture counter encoded into time_code
    closed_gop: bool = True
    broken_link: bool = False
    frame_rate: float = 30.0

    def write(self, w: BitWriter) -> None:
        fps = max(int(round(self.frame_rate)), 1)
        total_seconds, pictures = divmod(self.time_code_pictures, fps)
        minutes_total, seconds = divmod(total_seconds, 60)
        hours, minutes = divmod(minutes_total, 60)
        w.write_bit(0)  # drop_frame_flag
        w.write_bits(hours % 24, 5)
        w.write_bits(minutes, 6)
        w.write_bit(1)  # marker
        w.write_bits(seconds, 6)
        w.write_bits(pictures % 64, 6)
        w.write_bit(int(self.closed_gop))
        w.write_bit(int(self.broken_link))
        w.align()

    @classmethod
    def read(cls, r: BitReader, frame_rate: float = 30.0) -> "GopHeader":
        r.read_bit()  # drop_frame_flag
        hours = r.read_bits(5)
        minutes = r.read_bits(6)
        if r.read_bit() != 1:
            raise ValueError("GOP header: missing marker bit")
        seconds = r.read_bits(6)
        pictures = r.read_bits(6)
        closed = bool(r.read_bit())
        broken = bool(r.read_bit())
        fps = max(int(round(frame_rate)), 1)
        count = ((hours * 60 + minutes) * 60 + seconds) * fps + pictures
        return cls(
            time_code_pictures=count,
            closed_gop=closed,
            broken_link=broken,
            frame_rate=frame_rate,
        )


#: extra_information_picture byte flag: coefficient scan selection.
#: (MPEG-2 proper signals alternate_scan in the picture coding
#: extension; we carry it in the MPEG-1-style header's extensible
#: extra-information mechanism, which compliant decoders skip.)
_EXTRA_ALTERNATE_SCAN = 0x01


@dataclass
class PictureHeader:
    """picture_header(): temporal reference, type, f_codes, scan.

    ``alternate_scan`` selects the MPEG-2 alternate coefficient scan
    (ISO 13818-2 Fig. 7-3) for every block of the picture — the scan
    designed for interlaced material, which the paper lists as the
    next step (Section 7.3).
    """

    temporal_reference: int
    picture_type: PictureType
    forward_f_code: int = 1
    backward_f_code: int = 1
    vbv_delay: int = 0xFFFF
    alternate_scan: bool = False

    def write(self, w: BitWriter) -> None:
        w.write_bits(self.temporal_reference % 1024, 10)
        w.write_bits(int(self.picture_type), 3)
        w.write_bits(self.vbv_delay, 16)
        if self.picture_type in (PictureType.P, PictureType.B):
            w.write_bit(0)  # full_pel_forward_vector (always half-pel)
            w.write_bits(self.forward_f_code, 3)
        if self.picture_type is PictureType.B:
            w.write_bit(0)  # full_pel_backward_vector
            w.write_bits(self.backward_f_code, 3)
        if self.alternate_scan:
            w.write_bit(1)  # extra_bit_picture
            w.write_bits(_EXTRA_ALTERNATE_SCAN, 8)
        w.write_bit(0)  # extra_bit_picture: end
        w.align()

    @classmethod
    def read(cls, r: BitReader) -> "PictureHeader":
        tref = r.read_bits(10)
        ptype = PictureType(r.read_bits(3))
        vbv_delay = r.read_bits(16)
        fwd = bwd = 1
        if ptype in (PictureType.P, PictureType.B):
            r.read_bit()
            fwd = r.read_bits(3)
            if not 1 <= fwd <= 7:
                raise ValueError(f"bad forward_f_code {fwd}")
        if ptype is PictureType.B:
            r.read_bit()
            bwd = r.read_bits(3)
            if not 1 <= bwd <= 7:
                raise ValueError(f"bad backward_f_code {bwd}")
        alternate = False
        while r.read_bit() == 1:
            extra = r.read_bits(8)
            if extra & _EXTRA_ALTERNATE_SCAN:
                alternate = True
        return cls(
            temporal_reference=tref,
            picture_type=ptype,
            forward_f_code=fwd,
            backward_f_code=bwd,
            vbv_delay=vbv_delay,
            alternate_scan=alternate,
        )


@dataclass
class SliceHeader:
    """slice() header fields following the slice start code.

    The macroblock row is carried by the start-code *value*
    (``slice_vertical_position``, 1-based), not by header fields.
    """

    quantiser_scale_code: int

    def write(self, w: BitWriter) -> None:
        if not 1 <= self.quantiser_scale_code <= 31:
            raise ValueError(f"bad quantiser_scale_code {self.quantiser_scale_code}")
        w.write_bits(self.quantiser_scale_code, 5)
        w.write_bit(0)  # extra_bit_slice

    @classmethod
    def read(cls, r: BitReader) -> "SliceHeader":
        code = r.read_bits(5)
        if code == 0:
            raise ValueError("quantiser_scale_code must be nonzero")
        if r.read_bit() != 0:
            raise ValueError("unexpected extra_information_slice")
        return cls(quantiser_scale_code=code)
