"""Marker hygiene: every pytest marker in use must be declared.

An undeclared marker is silently ignored by marker expressions — a
``perf`` test whose marker was never registered would *run inside
tier-1* (wall-clock assertions in CI) or, worse, a typo in the marker
name ("pref") would quietly drop a test from the perf gate.
CI runs this as its ``markers`` sanity job; it greps every test and
benchmark file for ``pytest.mark.<name>`` and checks the name against
``[tool.pytest.ini_options].markers`` in ``pyproject.toml``.
"""

from __future__ import annotations

import os
import re
import tomllib

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markers pytest itself provides — always legal, never declared by us.
BUILTIN_MARKERS = {
    "parametrize",
    "skip",
    "skipif",
    "xfail",
    "usefixtures",
    "filterwarnings",
}

_MARK_RE = re.compile(r"pytest\.mark\.([A-Za-z_][A-Za-z0-9_]*)")


def declared_markers() -> set[str]:
    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as fh:
        config = tomllib.load(fh)
    lines = config["tool"]["pytest"]["ini_options"].get("markers", [])
    return {line.split(":", 1)[0].strip() for line in lines}


def markers_in_use() -> dict[str, set[str]]:
    """marker name -> set of files using it, across tests + benchmarks."""
    uses: dict[str, set[str]] = {}
    for sub in ("tests", "benchmarks"):
        for dirpath, _dirs, files in os.walk(os.path.join(REPO_ROOT, sub)):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
                for m in _MARK_RE.finditer(text):
                    uses.setdefault(m.group(1), set()).add(
                        os.path.relpath(path, REPO_ROOT)
                    )
    return uses


def test_every_used_marker_is_declared():
    declared = declared_markers()
    undeclared = {
        name: sorted(files)
        for name, files in markers_in_use().items()
        if name not in BUILTIN_MARKERS and name not in declared
    }
    assert not undeclared, (
        "markers used but not declared in pyproject.toml "
        f"[tool.pytest.ini_options].markers: {undeclared}"
    )


def test_perf_marker_is_declared_and_used():
    # The perf gate's whole mechanism rests on this marker existing.
    assert "perf" in declared_markers()
    assert "perf" in markers_in_use()


def test_declared_markers_have_descriptions():
    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as fh:
        config = tomllib.load(fh)
    for line in config["tool"]["pytest"]["ini_options"].get("markers", []):
        assert ":" in line and line.split(":", 1)[1].strip(), (
            f"marker {line!r} lacks a description"
        )
