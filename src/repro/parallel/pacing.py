"""Real-time display pacing: the 30 pictures/second deadline schedule.

The paper's goal is *real-time* decoding: 30 pictures/second reaching
the display.  The throughput experiments decode as fast as possible;
this module adds the real-time view: the display process emits picture
``k`` no earlier than ``t0 + k * period`` (where ``t0`` is when the
first picture is ready — the startup latency), and any picture not
decoded by its deadline is counted *late* with its lateness measured.

Pacing also changes memory behaviour: when decode runs faster than the
display rate, the GOP decoder's decoded-picture backlog grows against
the paced drain — the flip side of the Fig. 8/9 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smp.machine import MachineConfig


@dataclass
class DisplayPacer:
    """Deadline bookkeeping for a paced display process.

    With ``rate_hz`` of ``None`` the pacer is inert (decode-rate
    display, the default the throughput benchmarks use).
    """

    machine: MachineConfig
    rate_hz: float | None = None
    #: Pictures of startup buffer: deadlines start this many periods
    #: after the first picture is ready (a player's preroll).
    preroll_pictures: int = 0
    t0: int | None = field(default=None, init=False)
    late_pictures: int = field(default=0, init=False)
    max_lateness: int = field(default=0, init=False)
    total_lateness: int = field(default=0, init=False)

    @property
    def period(self) -> int:
        if self.rate_hz is None:
            raise ValueError("pacer has no display rate")
        return self.machine.cycles(1.0 / self.rate_hz)

    @property
    def enabled(self) -> bool:
        return self.rate_hz is not None

    def deadline(self, index: int) -> int:
        assert self.t0 is not None, "deadline before first picture"
        return self.t0 + (index + self.preroll_pictures) * self.period

    def on_ready(self, index: int, now: int) -> int | None:
        """Record picture ``index`` becoming displayable at ``now``.

        Returns the virtual time to sleep until before emitting it, or
        ``None`` to emit immediately (pacing off, first picture, or
        already past the deadline — a *late* picture).
        """
        if not self.enabled:
            return None
        if self.t0 is None:
            self.t0 = now
            return None
        deadline = self.deadline(index)
        if now > deadline:
            lateness = now - deadline
            self.late_pictures += 1
            self.total_lateness += lateness
            self.max_lateness = max(self.max_lateness, lateness)
            return None
        return deadline

    # ------------------------------------------------------------------
    @property
    def startup_cycles(self) -> int:
        return self.t0 or 0

    def summary(self) -> dict[str, float]:
        return {
            "late_pictures": self.late_pictures,
            "max_lateness_s": self.machine.seconds(self.max_lateness),
            "startup_s": self.machine.seconds(self.startup_cycles),
        }
