"""Ablation — task granularity (the paper's Section 4 argument).

The paper rejects macroblock/block-level parallelism: macroblocks have
no start codes, so a single process would have to decode the stream to
find them, serialising all VLC work.  This ablation runs all four
decompositions side by side and shows the macroblock-level variant
saturating at its Amdahl ceiling while GOP- and slice-level scale on.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel import SliceMode
from repro.parallel.macroblock_level import MacroblockLevelDecoder
from repro.smp import DEFAULT_COST_MODEL, challenge
from repro.parallel import ParallelConfig

from benchmarks.conftest import PAPER_CASES

SWEEP = [1, 2, 4, 8, 14]
PICTURES = 130


def test_ablation_task_granularity(benchmark, env, record):
    res = "352x240" if "352x240" in PAPER_CASES else next(iter(PAPER_CASES))
    profile = env.profile(res, 13, pictures=PICTURES)
    mb_dec = MacroblockLevelDecoder(profile)

    def run():
        out = {}
        for p in SWEEP:
            out[("GOP", p)] = env.run_gop(profile, p).pictures_per_second
            out[("slice improved", p)] = env.run_slice(
                profile, p, SliceMode.IMPROVED
            ).pictures_per_second
            out[("macroblock", p)] = mb_dec.run(
                ParallelConfig(workers=p, machine=challenge(16))
            ).pictures_per_second
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    bound = mb_dec.amdahl_bound(DEFAULT_COST_MODEL)
    table = TextTable(
        ["decomposition"] + [f"P={p}" for p in SWEEP],
        title=(
            f"Ablation: pictures/sec by task granularity, {res} "
            f"(macroblock-level Amdahl ceiling: {bound:.2f}x serial)"
        ),
    )
    for version in ("GOP", "slice improved", "macroblock"):
        table.add_row(version, *[round(rates[(version, p)], 1) for p in SWEEP])
    record(table.render())

    # The macroblock-level variant saturates early...
    mb14, mb4 = rates[("macroblock", 14)], rates[("macroblock", 4)]
    assert mb14 < mb4 * 1.25
    # ...and is soundly beaten by both paper decompositions at scale.
    assert rates[("GOP", 14)] > 1.5 * mb14
    assert rates[("slice improved", 14)] > 1.5 * mb14
    # At one worker all variants are comparable (within 2x).
    assert rates[("macroblock", 1)] > 0.5 * rates[("GOP", 1)]