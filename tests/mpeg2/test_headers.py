"""Header (de)serialisation roundtrips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.headers import (
    FRAME_RATES,
    GopHeader,
    PictureHeader,
    SequenceHeader,
    SliceHeader,
    frame_rate_code_for,
)
from repro.mpeg2.tables import DEFAULT_INTRA_QUANT_MATRIX


def roundtrip(header, reader_fn):
    w = BitWriter()
    header.write(w)
    w.align()
    return reader_fn(BitReader(w.getvalue()))


class TestSequenceHeader:
    def test_roundtrip_defaults(self):
        h = SequenceHeader(width=704, height=480)
        out = roundtrip(h, SequenceHeader.read)
        assert (out.width, out.height) == (704, 480)
        assert out.frame_rate == 30.0
        assert np.array_equal(out.intra_quant_matrix, DEFAULT_INTRA_QUANT_MATRIX)

    def test_roundtrip_custom_matrices(self):
        m = DEFAULT_INTRA_QUANT_MATRIX.copy()
        m[3, 3] = 99
        h = SequenceHeader(width=176, height=120, intra_quant_matrix=m)
        out = roundtrip(h, SequenceHeader.read)
        assert out.intra_quant_matrix[3, 3] == 99

    def test_bit_rate_units_of_400(self):
        h = SequenceHeader(width=352, height=240, bit_rate=5_000_000)
        out = roundtrip(h, SequenceHeader.read)
        assert out.bit_rate == 5_000_000  # multiple of 400: exact

    def test_dimension_range_checked(self):
        with pytest.raises(ValueError):
            roundtrip(SequenceHeader(width=5000, height=480), SequenceHeader.read)

    def test_frame_rate_code_for(self):
        assert FRAME_RATES[frame_rate_code_for(30.0)] == 30.0
        assert FRAME_RATES[frame_rate_code_for(24.5)] in (24.0, 25.0)


class TestGopHeader:
    def test_roundtrip_time_code(self):
        h = GopHeader(time_code_pictures=12345, closed_gop=True, broken_link=False)
        out = roundtrip(h, GopHeader.read)
        assert out.time_code_pictures == 12345
        assert out.closed_gop and not out.broken_link

    def test_flags(self):
        h = GopHeader(time_code_pictures=0, closed_gop=False, broken_link=True)
        out = roundtrip(h, GopHeader.read)
        assert not out.closed_gop and out.broken_link


class TestPictureHeader:
    def test_i_picture_has_no_f_codes_on_wire(self):
        i_hdr = PictureHeader(temporal_reference=0, picture_type=PictureType.I)
        p_hdr = PictureHeader(temporal_reference=0, picture_type=PictureType.P)
        wi, wp = BitWriter(), BitWriter()
        i_hdr.write(wi)
        p_hdr.write(wp)
        assert wi.bit_position < wp.bit_position

    @pytest.mark.parametrize("ptype", list(PictureType))
    def test_roundtrip(self, ptype):
        h = PictureHeader(
            temporal_reference=517,
            picture_type=ptype,
            forward_f_code=3,
            backward_f_code=2,
        )
        out = roundtrip(h, PictureHeader.read)
        assert out.temporal_reference == 517
        assert out.picture_type == ptype
        if ptype != PictureType.I:
            assert out.forward_f_code == 3
        if ptype == PictureType.B:
            assert out.backward_f_code == 2


class TestSliceHeader:
    def test_roundtrip(self):
        out = roundtrip(SliceHeader(quantiser_scale_code=17), SliceHeader.read)
        assert out.quantiser_scale_code == 17

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            SliceHeader(quantiser_scale_code=0).write(BitWriter())
