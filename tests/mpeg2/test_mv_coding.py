"""Motion-vector differential coding: range windows and roundtrips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.mv_coding import (
    MotionRangeError,
    decode_component,
    encode_component,
    f_range,
    required_f_code,
    wrap_component,
)


class TestFRange:
    def test_f_code_1_window(self):
        assert f_range(1) == (-16, 15)

    def test_f_code_4_window(self):
        assert f_range(4) == (-128, 127)

    def test_invalid_f_code(self):
        with pytest.raises(ValueError):
            f_range(0)
        with pytest.raises(ValueError):
            f_range(8)


class TestRequiredFCode:
    def test_small_vectors_fit_f1(self):
        assert required_f_code(0) == 1
        assert required_f_code(15) == 1

    def test_boundary_promotes(self):
        # +16 doesn't fit [-16, 15], needs f_code 2.
        assert required_f_code(16) == 2
        assert required_f_code(31) == 2
        assert required_f_code(32) == 3

    def test_too_large(self):
        with pytest.raises(MotionRangeError):
            required_f_code(10_000)


class TestWrap:
    def test_identity_inside_window(self):
        assert wrap_component(7, 1) == 7

    def test_wraps_above(self):
        assert wrap_component(16, 1) == -16

    def test_wraps_below(self):
        assert wrap_component(-17, 1) == 15


class TestRoundtrip:
    @pytest.mark.parametrize("f_code", range(1, 8))
    def test_extremes_roundtrip(self, f_code):
        low, high = f_range(f_code)
        for value, predictor in [(low, 0), (high, 0), (0, low), (high, low)]:
            w = BitWriter()
            encode_component(w, value, predictor, f_code)
            w.align()
            assert decode_component(BitReader(w.getvalue()), predictor, f_code) == value

    def test_out_of_window_rejected(self):
        with pytest.raises(MotionRangeError):
            encode_component(BitWriter(), 16, 0, 1)

    @given(
        f_code=st.integers(1, 7),
        data=st.data(),
    )
    @settings(max_examples=200)
    def test_any_value_any_predictor_roundtrips(self, f_code, data):
        low, high = f_range(f_code)
        value = data.draw(st.integers(low, high))
        predictor = data.draw(st.integers(low, high))
        w = BitWriter()
        encode_component(w, value, predictor, f_code)
        w.align()
        decoded = decode_component(BitReader(w.getvalue()), predictor, f_code)
        assert decoded == value

    def test_sequence_of_components_shares_predictor_chain(self):
        """Components coded against a running predictor, as in a slice."""
        values = [0, 5, -12, 15, -16, 3]
        f_code = 1
        w = BitWriter()
        pred = 0
        for v in values:
            pred = encode_component(w, v, pred, f_code)
        w.align()
        r = BitReader(w.getvalue())
        pred = 0
        for v in values:
            pred = decode_component(r, pred, f_code)
            assert pred == v
