"""NUMA-aware GOP decoding: placement + task stealing (Section 7.2).

The paper proposes, for distributed-shared-memory machines, replacing
the single GOP task queue with "a task queue per processor, having a
processor be assigned the tasks corresponding to GOPs that are loaded
into its local memory (GOPs may be loaded in round-robin order among
memories), and then have them steal tasks from other queues for load
balancing".  It conjectures (from the low communication miss rate and
small working sets) that this should work well on moderate-scale
machines.

This module implements that design: per-*cluster* task queues,
round-robin GOP placement into cluster memories, and work stealing.
A locally-placed task touches mostly local memory (small remote
fraction); a stolen task streams its input and writes its output
across the interconnect (large remote fraction).  The ablation
benchmark compares it against the no-placement baseline the paper
measured on DASH.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.parallel.gop_level import DecodeRunResult, ParallelConfig, _DisplayItem
from repro.parallel.pacing import DisplayPacer
from repro.parallel.profile import StreamProfile
from repro.smp.engine import (
    Compute,
    Halt,
    Process,
    SignalCondition,
    Simulator,
    SleepUntil,
    Stall,
    WaitCondition,
)
from repro.smp.memtrack import MemoryTracker
from repro.smp.sync import Condition


@dataclass
class PlacementPolicy:
    """Remote-traffic fractions for placed vs stolen GOP tasks.

    A local task still sees some remote traffic (the shared display
    queue, reference pictures of GOPs placed elsewhere never matter —
    GOPs are closed); a stolen task's stream bytes and frame stores
    live in the victim cluster's memory.
    """

    local_remote_fraction: float = 0.10
    stolen_remote_fraction: float = 0.85


@dataclass
class _ClusterQueues:
    """Per-cluster GOP task queues with a shared wakeup condition."""

    clusters: int
    op_cycles: int
    queues: list[deque] = field(init=False)
    closed: bool = False
    cond: Condition = field(init=False)
    #: (gop_index -> cluster) placement map, for diagnostics.
    placement: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.queues = [deque() for _ in range(self.clusters)]
        self.cond = Condition("cluster-queues")

    # -- scan side -------------------------------------------------------
    def put(self, cluster: int, gop_index: int):
        self.queues[cluster].append(gop_index)
        self.placement[gop_index] = cluster
        yield Compute(self.op_cycles)
        yield SignalCondition(self.cond)

    def close(self):
        self.closed = True
        yield SignalCondition(self.cond)

    # -- worker side ------------------------------------------------------
    def get(self, home: int):
        """Take from the home queue, else steal from the fullest queue.

        Returns ``(gop_index, stolen)`` or ``None`` at end of stream.
        """
        while True:
            if self.queues[home]:
                gop_index = self.queues[home].popleft()
                yield Compute(self.op_cycles)
                return gop_index, False
            victim = max(
                (c for c in range(self.clusters) if c != home),
                key=lambda c: len(self.queues[c]),
                default=None,
            )
            if victim is not None and self.queues[victim]:
                gop_index = self.queues[victim].popleft()
                # Stealing costs an extra remote queue transaction.
                yield Compute(2 * self.op_cycles)
                return gop_index, True
            if self.closed:
                return None
            yield WaitCondition(self.cond)


class PlacedGopDecoder:
    """GOP-level decoder with round-robin placement and task stealing."""

    def __init__(
        self, profile: StreamProfile, policy: PlacementPolicy | None = None
    ) -> None:
        self.profile = profile
        self.policy = policy or PlacementPolicy()

    def run(self, config: ParallelConfig) -> DecodeRunResult:
        machine = config.machine
        if not machine.is_numa:
            raise ValueError("PlacedGopDecoder needs a NUMA machine config")
        profile = self.profile
        cost = config.cost
        clusters = max(machine.processors // machine.cluster_size, 1)
        sim = Simulator()
        memory = MemoryTracker()
        result = DecodeRunResult(
            config=config, picture_count=profile.picture_count, memory=memory
        )
        queues = _ClusterQueues(clusters=clusters, op_cycles=cost.queue_op_cycles)
        from repro.parallel.queues import SimQueue

        display_queue = SimQueue("display", cost.queue_op_cycles)
        fbytes = profile.frame_bytes
        pixels = profile.picture_pixels
        stolen_count = 0

        def scan_body(proc: Process):
            for gop in profile.gops:
                yield Compute(cost.scan_cycles(gop.wire_bytes))
                memory.allocate(sim.now, gop.wire_bytes, "stream")
                yield from queues.put(gop.index % clusters, gop.index)
            yield from queues.close()

        def make_worker(wid: int):
            home = machine.cluster_of(wid)

            def worker_body(proc: Process):
                nonlocal stolen_count
                while True:
                    task = yield from queues.get(home)
                    if task is None:
                        break
                    gop_index, stolen = task
                    if stolen:
                        stolen_count += 1
                    remote = (
                        self.policy.stolen_remote_fraction
                        if stolen
                        else self.policy.local_remote_fraction
                    )
                    gop = profile.gops[gop_index]
                    for pic in gop.pictures:
                        memory.allocate(sim.now, fbytes, "frames")
                        busy = cost.decode_cycles(pic.total_counters())
                        yield Compute(busy)
                        yield Stall(
                            cost.stall_cycles(busy, machine, pixels, remote)
                        )
                        yield from display_queue.put(
                            _DisplayItem(display_index=pic.display_index)
                        )
                    memory.free(sim.now, gop.wire_bytes, "stream")

            return worker_body

        pacer = DisplayPacer(
            machine, config.display_rate_hz, config.display_preroll_pictures
        )

        def display_body(proc: Process):
            import heapq

            pending: list[int] = []
            next_index = 0
            total = profile.picture_count
            while next_index < total:
                item = yield from display_queue.get()
                assert item is not None, "display queue closed early"
                heapq.heappush(pending, item.display_index)
                while pending and pending[0] == next_index:
                    heapq.heappop(pending)
                    target = pacer.on_ready(next_index, sim.now)
                    if target is not None:
                        yield SleepUntil(target)
                    yield Compute(cost.display_cycles())
                    memory.free(sim.now, fbytes, "frames")
                    result.display_times.append(sim.now)
                    next_index += 1
            yield Halt()

        sim.add_process("scan", scan_body)
        workers = [
            sim.add_process(f"worker-{i}", make_worker(i))
            for i in range(config.workers)
        ]
        sim.add_process("display", display_body)
        sim.run()

        result.finish_cycles = result.display_times[-1]
        result.worker_busy = [w.stats.busy for w in workers]
        result.worker_stall = [w.stats.stall for w in workers]
        result.worker_sync = [w.stats.sync_wait for w in workers]
        result.late_pictures = pacer.late_pictures
        result.max_lateness_cycles = pacer.max_lateness
        result.startup_cycles = pacer.startup_cycles or (
            result.display_times[0] if result.display_times else 0
        )
        # Stash the stealing diagnostics on the result object.
        result.stolen_tasks = stolen_count  # type: ignore[attr-defined]
        result.placement = dict(queues.placement)  # type: ignore[attr-defined]
        return result
