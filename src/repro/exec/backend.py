"""The persistent worker-pool backend every parallel decode runs on.

This module is the single home of the machinery that used to be
duplicated across the three schedulers (``repro.parallel.mp``,
``repro.parallel.mp_slice``, ``repro.serve.service``):

* the liveness-poll constant (:data:`LIVENESS_POLL_S`) and the
  chunked, liveness-checked result wait (:func:`timed_queue_get`);
* dead-worker detection and the canonical ``DecodeError`` it raises
  (:func:`worker_death_error`);
* the process-wide **persistent pool registry**
  (:func:`get_persistent_pool` and friends) — pre-forked once per
  ``(workers, start_method)``, shared by every GOP-grain decode in
  the process;
* the GOP-chunk worker body (:func:`_decode_gop_chunk`) and its
  stream-agnostic attachment caches — the execution engine behind
  both ``MPGopDecoder`` and the executor's GOP grain;
* canonical teardown ordering (:func:`reap_processes`,
  :func:`close_queues`, :func:`release_segments`) and trace-shard
  collection (:func:`collect_trace_shards`);
* :class:`WorkerTeam` — the spawn / liveness-wait / sentinel / reap
  lifecycle for explicitly-managed worker process sets (the slice
  decoder's shape).

The planners above stay thin: they decide *what* to decode (byte
ranges, dependency edges, availability rules) and this backend decides
*how* it runs and dies.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_mod
import shutil
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from glob import glob
from typing import Callable, Iterator

from repro.exec.shm import FrameLayout, SharedFramePool, StreamArena
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import DecodeError, SequenceDecoder
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import StreamIndex
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.stalls import REASON_QUEUE_GET, StallTable
from repro.obs.trace import (
    Tracer,
    enable_tracing,
    get_tracer,
    trace_complete,
    trace_span,
)

#: Seconds between liveness polls while a parent blocks on results.
#: A dead worker (crash, OOM kill, SIGKILL) is detected within one
#: poll instead of hanging the merge loop forever on a lost task.
#: One constant for every scheduler — the per-module copies drifted
#: once and are gone.
LIVENESS_POLL_S = 0.2


def worker_death_error(role: str, unit: str, loss: str, codes) -> DecodeError:
    """The canonical dead-worker failure, shared by every scheduler.

    ``role``/``unit``/``loss`` parameterize the historical messages
    exactly ("GOP … mid-stream … its task", "slice … mid-picture …
    its slice"), so tests pinning them keep passing while the raising
    code lives in one place.
    """
    return DecodeError(
        f"{role} worker process died mid-{unit} "
        f"(exit codes {codes}); its {loss} is lost — "
        "aborting the parallel decode"
    )


def timed_queue_get(
    q,
    on_timeout: Callable[[], bool | None],
    stalls: StallTable | None = None,
    who: str = "merge",
    span: str = "mp.result.wait",
):
    """Liveness-polled result wait: the one blocking-get all parents use.

    Blocks on ``q`` in :data:`LIVENESS_POLL_S` chunks.  Every empty
    poll runs ``on_timeout()``, which may

    * raise (fatal: a dead worker whose task is unrecoverable),
    * return truthy to abandon the wait (a *handled* loss — the serve
      layer requeues and respawns; ``None`` is returned), or
    * return falsy to keep polling.

    A successful get records the elapsed wait as the parent's
    ``queue.get`` stall under ``span`` — identical attribution across
    all schedulers.
    """
    t0 = time.monotonic_ns()
    while True:
        try:
            result = q.get(timeout=LIVENESS_POLL_S)
            break
        except queue_mod.Empty:
            if on_timeout():
                return None
    waited = time.monotonic_ns() - t0
    trace_complete(span, "stall", t0, waited, reason=REASON_QUEUE_GET)
    if stalls is not None:
        stalls.record(who, REASON_QUEUE_GET, waited / 1e9)
    return result


# ----------------------------------------------------------------------
# canonical teardown ordering
# ----------------------------------------------------------------------
def reap_processes(procs, grace: float = 5.0) -> None:
    """Terminate-then-join every still-alive worker (escalating)."""
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=grace)
            if p.is_alive():  # pragma: no cover - defensive
                p.kill()
                p.join(timeout=grace)


def close_queues(*queues) -> None:
    """Close mp queues without blocking on their feeder threads."""
    for q in queues:
        q.close()
        q.cancel_join_thread()


def release_segments(*segs) -> None:
    """Owner-side shared-memory teardown: close, then unlink."""
    for seg in segs:
        seg.close()
        seg.unlink()


class WorkerTeam:
    """Spawn / liveness-wait / sentinel / reap for explicit worker sets.

    The lifecycle shape of the slice decoder (and any planner that
    manages its own ``ctx.Process`` list with shared task/result
    queues), with the liveness and teardown ordering owned here:

    1. :meth:`spawn` each worker (daemonized, started immediately);
    2. :meth:`get_result` in the merge loop — liveness-polled, raising
       the canonical dead-worker :class:`DecodeError` via
       ``role``/``unit``/``loss``;
    3. :meth:`send_sentinels` + drain the final observability
       messages, then :meth:`join_all`;
    4. :meth:`teardown` in the ``finally``: escalating reap, queue
       close (the caller releases its own shared segments and trace
       shards — those belong to the decode, not the team).
    """

    def __init__(
        self,
        ctx,
        role: str = "slice",
        unit: str = "picture",
        loss: str = "slice",
        span: str = "mp.result.wait",
        who: str = "merge",
    ) -> None:
        self.ctx = ctx
        self.role = role
        self.unit = unit
        self.loss = loss
        self.span = span
        self.who = who
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.procs: list = []

    def spawn(self, target, args) -> object:
        p = self.ctx.Process(target=target, args=args, daemon=True)
        p.start()
        self.procs.append(p)
        return p

    def check_dead(self) -> None:
        """Raise the canonical DecodeError if any worker died unclean."""
        dead = [p for p in self.procs if p.exitcode not in (None, 0)]
        if dead:
            codes = sorted(
                p.exitcode for p in dead if p.exitcode is not None
            )
            raise worker_death_error(self.role, self.unit, self.loss, codes)

    def get_result(self, stalls: StallTable | None = None):
        return timed_queue_get(
            self.result_q,
            on_timeout=self.check_dead,
            stalls=stalls,
            who=self.who,
            span=self.span,
        )

    def send_sentinels(self) -> None:
        for _ in self.procs:
            self.task_q.put(None)

    def join_all(self, grace: float = 10.0) -> None:
        for p in self.procs:
            p.join(timeout=grace)

    def teardown(self, grace: float = 5.0) -> None:
        reap_processes(self.procs, grace)
        close_queues(self.task_q, self.result_q)


# ----------------------------------------------------------------------
# GOP-grain tasks and the chunked worker body
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GopTask:
    """One unit of worker work: a GOP's byte range + its frame slots."""

    gop: int
    byte_start: int
    byte_end: int
    picture_count: int
    slot_base: int


@dataclass
class GopResult:
    """What a worker sends back: metadata only, never pixels."""

    gop: int
    slot_base: int
    temporal_references: list[int] = field(default_factory=list)
    counters: WorkCounters = field(default_factory=WorkCounters)
    #: Observability payloads: the worker's per-task metrics snapshot
    #: (``repro.obs.metrics`` shape, merged into the parent registry)
    #: and its stall-table snapshot (idle-between-tasks attribution).
    #: Tiny dicts — pixel data still never crosses the boundary.
    metrics_snap: dict | None = None
    stalls_snap: dict | None = None


def scan_gop_tasks(index: StreamIndex) -> list[GopTask]:
    """The scan step: split the index into per-GOP tasks.

    Slot bases are assigned cumulatively so every decoded picture in
    the stream has a reserved slot in the shared pool — the mp
    equivalent of the paper's decoded-frame memory that Fig. 8 charts.
    """
    tasks: list[GopTask] = []
    slot = 0
    for gi, gop in enumerate(index.gops):
        tasks.append(
            GopTask(
                gop=gi,
                byte_start=gop.start_offset,
                byte_end=gop.end_offset,
                picture_count=len(gop.pictures),
                slot_base=slot,
            )
        )
        slot += len(gop.pictures)
    return tasks


#: Worker-process attachment caches: shared segments this worker has
#: already mapped, keyed by segment name.  Persistent workers outlive
#: any single stream, so attachments are cached across tasks (attach
#: once per stream per worker, not per task) and evicted LRU so a
#: long-lived pool serving many streams holds at most
#: ``_ATTACH_CACHE_SLOTS`` stale mappings.
_ARENA_CACHE: "OrderedDict[str, StreamArena]" = OrderedDict()
_POOL_CACHE: "OrderedDict[str, SharedFramePool]" = OrderedDict()
_ATTACH_CACHE_SLOTS = 4

#: Worker idle-attribution baseline (`queue.get` stall between tasks).
_LAST_END_NS = 0

#: Whether this worker process has enabled its process-local tracer.
_TRACING_ON = False


def _evict_lru(cache: OrderedDict) -> None:
    while len(cache) > _ATTACH_CACHE_SLOTS:
        _name, seg = cache.popitem(last=False)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass


def _attached_arena(name: str, size: int) -> memoryview:
    arena = _ARENA_CACHE.get(name)
    if arena is None:
        arena = StreamArena(name=name, size=size)
        _ARENA_CACHE[name] = arena
        _evict_lru(_ARENA_CACHE)
    else:
        _ARENA_CACHE.move_to_end(name)
    return arena.view


def _attached_pool(name: str, layout: FrameLayout) -> SharedFramePool:
    pool = _POOL_CACHE.get(name)
    if pool is None:
        pool = SharedFramePool(layout, slots=0, name=name)
        _POOL_CACHE[name] = pool
        _evict_lru(_POOL_CACHE)
    else:
        _POOL_CACHE.move_to_end(name)
    return pool


def _ensure_worker_tracing(trace_dir: str | None) -> str | None:
    """Lazily enable this worker's tracer; return its shard path.

    Persistent workers don't know at fork time whether any given run
    will trace, so tracing is enabled on the first traced task and the
    shard directory rides in on every task.
    """
    global _TRACING_ON
    if trace_dir is None:
        return None
    pid = os.getpid()
    if not _TRACING_ON:
        enable_tracing(process_name=f"worker-{pid}")
        _TRACING_ON = True
        tracer = get_tracer()
        if tracer is not None:
            tracer.instant("mp.worker.start", cat="mp")
    return os.path.join(trace_dir, f"shard-{pid}.jsonl")


def _init_persistent_worker() -> None:
    """Pool initializer: stream-agnostic — per-stream state attaches
    lazily from the segment names each task carries."""
    global _LAST_END_NS
    reset_metrics()
    _LAST_END_NS = time.monotonic_ns()


def _decode_substream(
    substream: bytes, engine: str, resilient: bool
) -> tuple[list[Frame], WorkCounters]:
    """Decode a single-GOP substream to display-ordered frames."""
    counters = WorkCounters()
    frames = SequenceDecoder(
        substream, engine=engine, resilient=resilient
    ).decode_all(counters)
    return frames, counters


@dataclass(frozen=True)
class GopChunk:
    """One dispatch unit: consecutive GOP tasks + the decode context.

    Everything a stream-agnostic persistent worker needs: the shared
    segment names (bitstream arena + frame pool), the tiny
    sequence-header prefix, and the member tasks.  One queue message
    dispatches the whole chunk; one message publishes all its results.
    """

    arena_name: str
    arena_size: int
    prefix: bytes
    pool_name: str
    layout: FrameLayout
    engine: str
    resilient: bool
    trace_dir: str | None
    crash_gop: int | None
    tasks: tuple[GopTask, ...]
    #: Parent's dispatch timestamp (``time.monotonic_ns()``).  Persistent
    #: workers clamp idle attribution to this: time spent between *runs*
    #: (the pool sat warm while no decode was active) is not a
    #: ``queue.get`` stall of the run that happens to come next.
    epoch_ns: int = 0


@dataclass
class ChunkResult:
    """All of one chunk's GOP results in a single queue message."""

    results: list[GopResult]
    metrics_snap: dict | None = None
    stalls_snap: dict | None = None


def coalesce_gop_tasks(
    tasks: list[GopTask], workers: int
) -> list[tuple[GopTask, ...]]:
    """Group consecutive GOP tasks into coarse dispatch chunks.

    When a stream has many more GOPs than the pool has workers, per-GOP
    messages are pure overhead: the pool still load-balances with two
    waves of chunks per worker, so tasks are grouped to at most
    ``2 * workers`` chunks.  Short streams (or big pools) degenerate to
    one GOP per chunk — coalescing never *reduces* available
    parallelism.  Consecutive grouping keeps completions roughly in
    stream order, which keeps the display reorder buffer shallow.
    """
    if workers <= 0 or not tasks:
        return [(t,) for t in tasks]
    per = -(-len(tasks) // (2 * workers))  # ceil
    return [tuple(tasks[i : i + per]) for i in range(0, len(tasks), per)]


def _decode_gop_chunk(chunk: GopChunk) -> ChunkResult:
    """Worker body: decode a chunk of GOPs, park frames in shared memory.

    The bitstream is parsed in place from the arena segment — only the
    chunk's own GOP byte ranges are ever materialised as ``bytes``.
    """
    global _LAST_END_NS
    shard = _ensure_worker_tracing(chunk.trace_dir)
    # Idle attribution: the gap since the previous task ended is time
    # this worker spent waiting on the task queue (queue.get stall).
    # Clamped to the chunk's dispatch epoch so a warm persistent worker
    # does not book the dead time between two unrelated runs as a
    # stall of the later one.
    now_ns = time.monotonic_ns()
    baseline_ns = max(_LAST_END_NS, chunk.epoch_ns)
    idle_ns = now_ns - baseline_ns if baseline_ns else 0
    stalls = StallTable()
    if idle_ns > 0:
        trace_complete(
            "mp.worker.idle", "stall", now_ns - idle_ns, idle_ns,
            reason=REASON_QUEUE_GET,
        )
        metrics().histogram("mp.worker.idle_ms").observe(idle_ns / 1e6)
        stalls.record(f"worker-{os.getpid()}", REASON_QUEUE_GET, idle_ns / 1e9)

    data = _attached_arena(chunk.arena_name, chunk.arena_size)
    pool = _attached_pool(chunk.pool_name, chunk.layout)
    results: list[GopResult] = []
    for task in chunk.tasks:
        if chunk.crash_gop == task.gop:
            # Fault-injection hook (tests only): die mid-stream exactly
            # the way an OOM kill / segfault would — no cleanup, no
            # result.
            os._exit(23)
        substream = chunk.prefix + bytes(
            data[task.byte_start : task.byte_end]
        )
        with trace_span(
            "mp.worker.decode_gop", cat="mp",
            gop=task.gop, pictures=task.picture_count,
        ):
            frames, counters = _decode_substream(
                substream, chunk.engine, chunk.resilient
            )
        refs: list[int] = []
        with trace_span("mp.shm.write", cat="mp", frames=len(frames)):
            for j, frame in enumerate(frames):
                pool.write_frame(task.slot_base + j, frame)
                refs.append(frame.temporal_reference)
        results.append(
            GopResult(
                gop=task.gop,
                slot_base=task.slot_base,
                temporal_references=refs,
                counters=counters,
            )
        )
    _LAST_END_NS = time.monotonic_ns()

    # Ship the observability payloads once per *chunk*: metrics
    # accumulated during it (then reset, so chunks never double-count)
    # and the stall records; flush trace events to this worker's shard.
    snap = metrics().snapshot()
    reset_metrics()
    tracer = get_tracer()
    if tracer is not None and shard is not None:
        tracer.write_shard(shard)
    return ChunkResult(
        results=results,
        metrics_snap=snap,
        stalls_snap=stalls.snapshot() if stalls else None,
    )


# ----------------------------------------------------------------------
# persistent pools: pre-forked once, shared across every decode
# ----------------------------------------------------------------------
_PERSISTENT_POOLS: dict[tuple[int, str | None], object] = {}


def get_persistent_pool(workers: int, start_method: str | None = None):
    """The process-wide pre-forked pool for ``(workers, start_method)``.

    Created on first use and reused by every subsequent parallel
    decode (and the serve layer's repeated requests), so fork +
    interpreter warm-up is paid once per process instead of once per
    run.  Workers are stream-agnostic (:func:`_init_persistent_worker`)
    — per-stream context rides in on each :class:`GopChunk`.
    """
    key = (workers, start_method)
    pool = _PERSISTENT_POOLS.get(key)
    if pool is None:
        ctx = multiprocessing.get_context(start_method)
        pool = ctx.Pool(
            processes=workers, initializer=_init_persistent_worker
        )
        _PERSISTENT_POOLS[key] = pool
    return pool


def invalidate_persistent_pool(
    workers: int, start_method: str | None = None
) -> None:
    """Tear down one cached pool (after a worker death poisoned it)."""
    pool = _PERSISTENT_POOLS.pop((workers, start_method), None)
    if pool is not None:
        pool.terminate()
        pool.join()


def shutdown_persistent_pools() -> None:
    """Terminate every cached pool (atexit + test isolation hook)."""
    for pool in list(_PERSISTENT_POOLS.values()):
        pool.terminate()
        pool.join()
    _PERSISTENT_POOLS.clear()


def persistent_worker_pids() -> set[int]:
    """PIDs of live persistent-pool workers.

    These processes outlive individual decodes *by design*; test
    helpers that assert "no stray children after a crash" use this to
    tell an intentional long-lived pool worker from a leaked one.
    """
    pids: set[int] = set()
    for pool in _PERSISTENT_POOLS.values():
        for proc in getattr(pool, "_pool", []):
            if proc.pid is not None and proc.is_alive():
                pids.add(proc.pid)
    return pids


atexit.register(shutdown_persistent_pools)


def iter_chunk_results(
    completions,
    pool,
    workers: int,
    start_method: str | None,
    stalls: StallTable,
    reg,
    occupancy,
) -> Iterator[GopResult]:
    """Drain a persistent pool's chunk completions with liveness checks.

    The parent-side wait loop of every GOP-grain decode: times each
    blocking wait on the completion iterator (the ``queue.get`` stall
    + its trace span), chunks waits into :data:`LIVENESS_POLL_S` polls
    so a worker that died mid-chunk (its tasks are lost — the pool
    never resubmits) surfaces as a clean :class:`DecodeError` instead
    of an infinite hang, folds each chunk's shipped observability
    payloads into ``reg``/``stalls``, and yields the member
    :class:`GopResult` records.  Death is detected both by a non-zero
    exitcode *and* by the worker pid set drifting from its baseline
    (the pool auto-respawns replacements); the poisoned pool is then
    discarded so the next run pre-forks a clean one.
    """
    baseline = {p.pid for p in getattr(pool, "_pool", [])}
    while True:
        t0 = time.monotonic_ns()
        while True:
            try:
                chunk_result = completions.next(timeout=LIVENESS_POLL_S)
                break
            except multiprocessing.TimeoutError:
                procs = list(getattr(pool, "_pool", []))
                dead = [p for p in procs if p.exitcode not in (None, 0)]
                if dead or (
                    baseline and {p.pid for p in procs} != baseline
                ):
                    codes = sorted(
                        p.exitcode for p in dead if p.exitcode is not None
                    )
                    invalidate_persistent_pool(workers, start_method)
                    raise worker_death_error(
                        "GOP", "stream", "task", codes or "unknown"
                    )
            except StopIteration:
                return
        waited = time.monotonic_ns() - t0
        trace_complete(
            "mp.result.wait", "stall", t0, waited,
            reason=REASON_QUEUE_GET,
        )
        stalls.record("merge", REASON_QUEUE_GET, waited / 1e9)
        # Fold the chunk's shipped observability payloads in (one
        # message per chunk, not per GOP).
        if chunk_result.metrics_snap is not None:
            reg.merge_snapshot(chunk_result.metrics_snap)
        if chunk_result.stalls_snap is not None:
            stalls.merge(chunk_result.stalls_snap)
        for result in chunk_result.results:
            occupancy.inc(len(result.temporal_references))
            yield result


def collect_trace_shards(trace_dir: str) -> None:
    """Merge worker trace shards into the parent tracer, clean up.

    Shared by every scheduler: each worker process appends raw events
    to ``shard-<pid>.jsonl`` under ``trace_dir``; the parent folds
    every shard into its own tracer so ``--trace`` produces one merged
    timeline, then removes the directory.
    """
    tracer = get_tracer()
    try:
        if tracer is not None:
            for path in sorted(glob(os.path.join(trace_dir, "shard-*.jsonl"))):
                tracer.extend(Tracer.read_shard(path))
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)
