"""Two-phase decode fast path: batch parse -> NumPy reconstruction.

The paper's Section 4 observes that MPEG-2 decoding splits into a
*serial* part — walking the variable-length-coded bitstream — and a
*parallelizable* part — inverse quantization, IDCT, motion
compensation and pixel writes.  :mod:`repro.parallel.macroblock_level`
models that split for the cycle simulation; this module exploits it
for the decoder's own wall-clock speed:

Phase 1 (:func:`parse_slice`) performs **only bit work**: VLC decode,
run/level expansion, DC and motion-vector prediction.  The whole
slice — header, macroblock addressing, macroblock type, quantiser
updates, motion vectors, coded block patterns and every coefficient —
is decoded by one function holding a single small bit accumulator in
locals, refilled eight bytes at a time, against flattened versions of
every VLC table (plain ``int`` length/symbol arrays; the run/level
table additionally folds the sign bit into one extra window bit, so a
coefficient costs one table walk instead of a codeword walk plus a
sign-bit read).  There are no per-symbol method calls and no
per-macroblock array allocations; the output is a :class:`SliceParse`
of flat Python lists, with coefficients stored as a sparse marked
stream of small packed ints — one negative block marker, then
``(scan_position << 24) | (value + bias)`` per coefficient — whose
positions stay in **scan** space (phase 2 forward-fills the markers
and applies the scan permutation to the whole stream in a few
vectorized passes, so no block is ever un-scanned individually and
the parser spends nothing on it).

Phase 2 reconstructs pixels with a handful of vectorized operations
over a whole *picture or GOP* at a time: slices are concatenated into
one :class:`PictureAssembly` per picture
(:func:`assemble_picture`), every coded block of every picture in the
batch goes through **one** inverse quantization + **one**
:func:`~repro.mpeg2.dct.idct_rounded` call
(:func:`gop_dequant_idct` — dequant and IDCT depend only on levels
and quantiser scales, never on reference frames, so they batch across
pictures), and each picture is finished by :func:`mc_scatter` —
motion compensation grouped by (reference, half-pel phase) and one
fancy-indexed scatter per plane.  MC must stay per picture in coding
order because P and B pictures fetch from previously reconstructed
references.

Bit-exactness
-------------
The fast path is bit-identical to the scalar path by construction:

* phase 1 performs the same syntax walk and predictor-state
  transitions as ``decode_slice``, raising the same exception classes
  at the same stream positions on corrupt input (pinned by the
  cross-engine parity and negative-vector suites);
* ``scipy.fft``'s IDCT is batch-size invariant (tested), so one call
  per GOP equals one call per macroblock;
* half-pel averaging uses the same ``(a+b+1)>>1`` integer arithmetic
  as :func:`repro.mpeg2.motion.predict_block`, applied per phase
  group;
* motion vectors are bounds-checked **at parse time** against the
  reference-plane geometry (the same predicate ``predict_block``
  applies), so a corrupt slice raises the same exception class at the
  same slice, and resilient concealment proceeds identically.

Work counters are derived during parse (each macroblock's
reconstruction cost is a deterministic function of its mode), so the
per-slice counters feeding the paper's cycle-cost model are exactly
those of the scalar decoder — all paper experiments are unchanged.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.bitstream.reader import BitstreamError
from repro.mpeg2.blockcoding import (
    _AC_EOB_RUN,
    _AC_MAGS,
    _AC_RUNS,
    BlockSyntaxError,
)
from repro.mpeg2.constants import PictureType, quantiser_scale
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.dct import idct_rounded
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader
from repro.mpeg2.macroblock import SliceDecodeError
from repro.mpeg2.quant import dequantize_intra_f64, dequantize_non_intra_f64
from repro.mpeg2.scan import scan_to_raster_flat
from repro.mpeg2.tables import (
    AC_RUN_LEVEL,
    CODED_BLOCK_PATTERN,
    DC_SIZE_CHROMA,
    DC_SIZE_LUMA,
    ESCAPE_LEVEL_BITS,
    ESCAPE_RUN_BITS,
    MB_ADDRESS_INCREMENT,
    MB_TYPE_TABLES,
    MBA_ESCAPE,
    MBA_ESCAPE_VALUE,
    MOTION_CODE,
)
from repro.mpeg2.reconstruct import write_macroblocks
from repro.mpeg2.vlc import VLCError
from repro.obs.trace import trace_span

#: Pixels of one 4:2:0 macroblock (256 luma + 2 * 64 chroma).
_MB_PIXELS = 256 + 64 + 64

#: Coefficient capacity of one macroblock record (6 blocks x 64).
_MB_COEFFS = 6 * 64


# ----------------------------------------------------------------------
# Flattened VLC tables for the inlined phase-1 parser.  Each table
# becomes parallel flat arrays over every max_len-bit window: a
# ``bytes`` length table (0 = invalid prefix) and a plain-int symbol
# list — two indexed loads per symbol against local variables, no
# attribute walks, no tuple unpacking, no ``np.int64`` boxing.
# ----------------------------------------------------------------------

#: ``_MASKS[b] == (1 << b) - 1``.  The accumulator is only trimmed at
#: refill time (every window peek masks what it extracts), and a
#: refill only fires when the valid-bit count is below the symbol's
#: max length (< 32), so the index into this table stays < 32 even
#: though the accumulator itself can hold up to ~90 stale+valid bits
#: after an eight-byte refill.
_MASKS: tuple[int, ...] = tuple((1 << i) - 1 for i in range(64))

#: MBA windows: increment 1..33, with the escape mapped to 0 (valid
#: increments are never 0, so the sentinel is free).
_MBA_LENS = MB_ADDRESS_INCREMENT._dec_lens
_MBA_MAXLEN = MB_ADDRESS_INCREMENT.max_len
_MBA_INC: list[int] = [
    0 if s is None or s == MBA_ESCAPE else s
    for s in MB_ADDRESS_INCREMENT._dec_syms
]

#: Macroblock-type windows, one table per picture type.  Mode flags
#: are packed into one int: quant|mc_fwd<<1|mc_bwd<<2|coded<<3|intra<<4.
_MT_QUANT, _MT_FWD, _MT_BWD, _MT_CODED, _MT_INTRA = 1, 2, 4, 8, 16


def _pack_mode_flags(table) -> list[int]:
    flags = [0] * (1 << table.max_len)
    for w, sym in enumerate(table._dec_syms):
        if sym is None:
            continue
        flags[w] = (
            (_MT_QUANT if sym.quant else 0)
            | (_MT_FWD if sym.mc_fwd else 0)
            | (_MT_BWD if sym.mc_bwd else 0)
            | (_MT_CODED if sym.coded else 0)
            | (_MT_INTRA if sym.intra else 0)
        )
    return flags


_MT_TABLES: dict[PictureType, tuple[bytes, list[int], int, str]] = {
    ptype: (t._dec_lens, _pack_mode_flags(t), t.max_len, t.name)
    for ptype, t in MB_TYPE_TABLES.items()
}

_MC_LENS = MOTION_CODE._dec_lens
_MC_MAXLEN = MOTION_CODE.max_len
_MC_SYMS: list[int] = [
    0 if s is None else s for s in MOTION_CODE._dec_syms
]

_CBP_LENS = CODED_BLOCK_PATTERN._dec_lens
_CBP_MAXLEN = CODED_BLOCK_PATTERN.max_len
_CBP_SYMS: list[int] = [
    0 if s is None else s for s in CODED_BLOCK_PATTERN._dec_syms
]

_DCL_LENS = DC_SIZE_LUMA._dec_lens
_DCL_SYMS = DC_SIZE_LUMA._dec_syms
_DCL_MAXLEN = DC_SIZE_LUMA.max_len
_DCC_LENS = DC_SIZE_CHROMA._dec_lens
_DCC_SYMS = DC_SIZE_CHROMA._dec_syms
_DCC_MAXLEN = DC_SIZE_CHROMA.max_len

_ESC_BITS = ESCAPE_RUN_BITS + ESCAPE_LEVEL_BITS
_ESC_MASK = (1 << _ESC_BITS) - 1
_ESC_LEVEL_SIGN = 1 << (ESCAPE_LEVEL_BITS - 1)
_ESC_LEVEL_SPAN = 1 << ESCAPE_LEVEL_BITS


def _build_signed_ac() -> tuple[bytes, list[int], list[int]]:
    """Fold the sign bit of every run/level codeword into the table.

    The decoder's hottest symbol is the AC run/level pair, whose
    codeword is followed by one sign bit.  Widening the decode window
    by that bit lets a single lookup yield length (codeword + sign),
    run and *signed* level — the per-coefficient sign-bit read, with
    its own bounds check and refill, disappears from the hot loop.
    EOB and the escape prefix carry no sign bit and keep their true
    length; invalid prefixes stay length 0.
    """
    maxlen = AC_RUN_LEVEL.max_len
    lens = bytearray(1 << (maxlen + 1))
    runs = [0] * (1 << (maxlen + 1))
    lvls = [0] * (1 << (maxlen + 1))
    base_lens = AC_RUN_LEVEL._dec_lens
    for w in range(1 << maxlen):
        length = base_lens[w]
        if length == 0:
            continue
        run = _AC_RUNS[w]
        w0 = w << 1
        if run < 0:  # EOB or escape prefix: no sign bit follows
            lens[w0] = lens[w0 | 1] = length
            runs[w0] = runs[w0 | 1] = run
        else:
            mag = _AC_MAGS[w]
            for b in (0, 1):
                w1 = w0 | b
                sign = (w1 >> (maxlen - length)) & 1
                lens[w1] = length + 1
                runs[w1] = run
                lvls[w1] = -mag if sign else mag
    return bytes(lens), runs, lvls


_AC2_LENS, _AC2_RUNS, _AC2_LVLS = _build_signed_ac()
_AC2_MAXLEN = AC_RUN_LEVEL.max_len + 1

#: Sparse coefficients travel as a marked stream of *compact* ints
#: (CPython stores ints below 2**30 inline in the object; keeping every
#: entry under that bound makes the hot-loop shift/or/append and the
#: phase-2 ``np.asarray`` conversion measurably cheaper than 33+-bit
#: packed values).  Each coded block contributes one negative *marker*
#: entry, ``-1 - block_base`` (``block_base = record * 384 + block *
#: 64``), followed by one ``(scan_position << _COEF_SHIFT) | (value +
#: _COEF_BIAS)`` entry per coefficient.  The 24-bit biased value field
#: is ample: levels are bounded by the 12-bit escape range and DC
#: predictor drift (at most ``128 + 2047 * 4 * mb_width`` on a
#: corrupt-but-parseable slice — under 2**22 for the 12-bit picture
#: widths the sequence header admits).
_COEF_SHIFT = 24
_COEF_BIAS = 1 << 23
_COEF_VMASK = (1 << 24) - 1

#: Hot-loop companion to ``_AC2_LVLS``: each signed level pre-biased
#: into the packed value field, so the per-coefficient append is one
#: shift and one or — no add.  Only ``run >= 0`` windows are ever
#: read through this table.
_AC2_BIASED: list[int] = [lvl + _COEF_BIAS for lvl in _AC2_LVLS]

#: Fused multi-symbol AC decode: one ``_FUSE_BITS``-bit window maps to
#: every *complete* run/level symbol it contains (average AC symbols
#: run ~5 bits including the folded sign, so a window usually carries
#: two).  ``_AC_FUSED[w] == (consumed_bits, eob, ((run, biased_level),
#: ...))``: the walk stops — leaving ``consumed_bits`` at the last
#: clean symbol boundary — before escape codes, invalid prefixes and
#: codewords that straddle the window, all of which the single-symbol
#: path then handles at the exact same bit position the scalar decoder
#: would report.  An EOB inside the window is consumed and flagged
#: instead of emitted.  Built lazily on first use (16K windows) so
#: importing the module stays cheap for short-lived processes.
_FUSE_BITS = 14
_FUSE_MASK = (1 << _FUSE_BITS) - 1
_AC_FUSED: list[tuple[int, int, tuple]] | None = None


def _build_fused_ac() -> list[tuple[int, int, tuple]]:
    global _AC_FUSED
    if _AC_FUSED is not None:
        return _AC_FUSED
    lens = _AC2_LENS
    runs = _AC2_RUNS
    biased = _AC2_BIASED
    maxlen = _AC2_MAXLEN
    fb = _FUSE_BITS
    table: list[tuple[int, int, tuple]] = []
    for w in range(1 << fb):
        pos = 0
        eob = 0
        pairs: list[tuple[int, int]] = []
        while True:
            rem = fb - pos
            if rem <= 0:
                break
            sub = w & ((1 << rem) - 1)
            # The next symbol's decode window, left-aligned; zero
            # padding is safe because a decode is only accepted when
            # the codeword fits entirely in the ``rem`` real bits.
            if rem < maxlen:
                wnd = sub << (maxlen - rem)
            else:
                wnd = sub >> (rem - maxlen)
            length = lens[wnd]
            if length == 0 or length > rem:
                break
            run = runs[wnd]
            if run >= 0:
                pairs.append((run, biased[wnd]))
                pos += length
                continue
            if run == _AC_EOB_RUN:
                pos += length
                eob = 1
            break
        table.append((pos, eob, tuple(pairs)))
    _AC_FUSED = table
    return table

#: ``_POPCNT6[cbp]`` = coded blocks in a 6-bit coded block pattern.
_POPCNT6: list[int] = [bin(c).count("1") for c in range(64)]

#: Initial/reset value of the intra DC predictors (level space).
_DC_RESET = 128


# ======================================================================
# phase 1: parse
# ======================================================================
class SliceParse:
    """Phase-1 output for one slice: flat records + exact work counters.

    Records are parallel Python lists over the slice's reconstructed
    macroblocks (coded *and* skipped, in address order).  Motion
    vectors are stored struct-of-arrays: a presence flag plus absolute
    luma half-pel ``dy``/``dx`` components per direction.  Coefficients
    are a sparse marked stream of compact packed ints: each coded
    block opens with ``-1 - (record * 384 + block * 64)`` and is
    followed by ``(scan_position << 24) | (level + 2**23)`` per
    coefficient — positions stay in scan space during parse
    (``alternate_scan`` records which permutation applies); phase 2
    forward-fills the markers, permutes to raster and scatters the
    whole stream with a handful of vector ops.
    """

    __slots__ = (
        "vertical_position",
        "alternate_scan",
        "counters",
        "addresses",
        "intra",
        "qscale",
        "cbp",
        "f_on",
        "f_dy",
        "f_dx",
        "b_on",
        "b_dy",
        "b_dx",
        "coef_packed",
    )

    def __init__(self, vertical_position: int, counters: WorkCounters) -> None:
        self.vertical_position = vertical_position
        self.alternate_scan = False
        self.counters = counters
        self.addresses: list[int] = []
        self.intra: list[bool] = []
        self.qscale: list[int] = []
        self.cbp: list[int] = []
        self.f_on: list[bool] = []
        self.f_dy: list[int] = []
        self.f_dx: list[int] = []
        self.b_on: list[bool] = []
        self.b_dy: list[int] = []
        self.b_dx: list[int] = []
        self.coef_packed: list[int] = []

    def __len__(self) -> int:
        return len(self.addresses)


def _validate_mv(
    dy: int, dx: int, mb_row: int, mb_col: int, luma_h: int, luma_w: int
) -> None:
    """Parse-time replica of ``predict_block``'s bounds predicate.

    Checks the luma 16x16 fetch and the (truncated-halved) chroma 8x8
    fetches, including the +1 sample required by half-pel phases.
    Raising :class:`ValueError` here is what keeps corrupt-stream
    behaviour identical to the scalar path, which raises the same
    class from ``predict_block`` during reconstruction.
    """
    top = mb_row * 16 + (dy >> 1)
    left = mb_col * 16 + (dx >> 1)
    if (
        top < 0
        or left < 0
        or top + 16 + (dy & 1) > luma_h
        or left + 16 + (dx & 1) > luma_w
    ):
        raise ValueError(
            f"motion vector (dy={dy}, dx={dx}) displaces macroblock "
            f"({mb_row},{mb_col}) outside reference plane ({luma_h}, {luma_w})"
        )
    # Chroma vector truncates toward zero (``MotionVector.chroma``).
    cdy = dy // 2 if dy >= 0 else -((-dy) // 2)
    cdx = dx // 2 if dx >= 0 else -((-dx) // 2)
    ctop = mb_row * 8 + (cdy >> 1)
    cleft = mb_col * 8 + (cdx >> 1)
    if (
        ctop < 0
        or cleft < 0
        or ctop + 8 + (cdy & 1) > luma_h // 2
        or cleft + 8 + (cdx & 1) > luma_w // 2
    ):
        raise ValueError(
            f"motion vector (dy={dy}, dx={dx}) displaces chroma of macroblock "
            f"({mb_row},{mb_col}) outside reference plane"
        )


def parse_slice(
    payload: bytes,
    vertical_position: int,
    pic: PictureHeader,
    mb_width: int,
    mb_height: int,
    has_fwd: bool,
) -> SliceParse:
    """Phase 1: parse one slice payload into a :class:`SliceParse`.

    Performs exactly the bit work of
    :func:`repro.mpeg2.macroblock.decode_slice` — same syntax walk,
    same predictor-state transitions, same exception classes on
    corrupt input — but touches no pixels and makes no per-symbol
    method calls: the entire slice is decoded against one local bit
    accumulator (MSB-aligned, refilled eight bytes at a time) and the
    flattened module-level VLC tables.  The accumulator's bits above
    the valid count are *stale*, not zero — every peek masks exactly
    the window it extracts, and refills trim before shifting in new
    bytes — which removes a mask-and-store from every symbol.  The
    absolute bit position is implicit (``bytepos * 8 - abits``) and
    only materialized in error messages.  ``has_fwd`` tells the
    P-picture skipped-macroblock check whether a forward reference
    exists (mirrors the scalar error).
    """
    local = WorkCounters()
    n = len(payload) * 8
    local.bits = n
    local.headers = 1

    row = vertical_position - 1
    if not 0 <= row < mb_height:
        raise SliceDecodeError(
            f"slice vertical position {vertical_position} out of range"
        )
    row_start = row * mb_width
    row_last = row_start + mb_width - 1
    prev_addr = row_start - 1
    luma_h = mb_height * 16
    luma_w = mb_width * 16

    ptype = pic.picture_type
    is_p = ptype is PictureType.P
    is_b = ptype is PictureType.B
    mt_lens, mt_flags, mt_maxlen, mt_name = _MT_TABLES[ptype]
    mt_mask = _MASKS[mt_maxlen]

    # Per-direction motion parameters (constant over the slice).
    ff = 1 << (pic.forward_f_code - 1)
    f_rbits = pic.forward_f_code - 1
    f_low = -16 * ff
    f_high = 16 * ff - 1
    f_span = 32 * ff
    bf = 1 << (pic.backward_f_code - 1)
    b_rbits = pic.backward_f_code - 1
    b_low = -16 * bf
    b_high = 16 * bf - 1
    b_span = 32 * bf

    # ---- bit cursor: low ``abits`` bits of ``acc`` are valid (higher
    # bits stale); next refill byte ``bytepos``; absolute position is
    # ``bytepos * 8 - abits``.
    data = payload
    masks = _MASKS
    ifb = int.from_bytes

    # ---- slice header: 5-bit quantiser_scale_code + extra bit ------
    if n < 6:
        # Payloads are whole bytes, so this is the empty slice; same
        # class/message family as BitReader.read_bits.
        raise BitstreamError(
            f"read past end of stream (want 5 bits at 0, have {n})"
        )
    chunk = data[:8]
    bytepos = len(chunk)
    abits = bytepos << 3
    acc = ifb(chunk, "big")
    qscale_code = (acc >> (abits - 5)) & 31
    abits -= 5
    if qscale_code == 0:
        raise ValueError("quantiser_scale_code must be nonzero")
    if (acc >> (abits - 1)) & 1:
        raise ValueError("unexpected extra_information_slice")
    abits -= 1
    qscale = quantiser_scale(qscale_code)

    # ---- predictor state, all locals -------------------------------
    dc0 = dc1 = dc2 = _DC_RESET
    pf_dy = pf_dx = pb_dy = pb_dx = 0  # motion-vector predictors
    prev_valid = False  # B skipped-MB rule: previous MB's mode known?
    prev_f_on = prev_b_on = False
    pv_f_dy = pv_f_dx = pv_b_dy = pv_b_dx = 0

    # ---- counters, accumulated in locals ---------------------------
    vlc_symbols = 0
    macroblocks = 0
    mc_macroblocks = 0
    bidir_macroblocks = 0
    idct_blocks = 0
    dc_emits = 0
    mc_pixels = 0
    pixels = 0

    sp = SliceParse(vertical_position=vertical_position, counters=local)
    sp.alternate_scan = pic.alternate_scan
    a_addr = sp.addresses.append
    a_intra = sp.intra.append
    a_qs = sp.qscale.append
    a_cbp = sp.cbp.append
    a_fon = sp.f_on.append
    a_fdy = sp.f_dy.append
    a_fdx = sp.f_dx.append
    a_bon = sp.b_on.append
    a_bdy = sp.b_dy.append
    a_bdx = sp.b_dx.append
    a_cp = sp.coef_packed.append
    rec = 0

    mba_lens = _MBA_LENS
    mba_inc = _MBA_INC
    mba_maxlen = _MBA_MAXLEN
    mba_mask = _MASKS[mba_maxlen]
    mc_lens = _MC_LENS
    mc_syms = _MC_SYMS
    mc_maxlen = _MC_MAXLEN
    mc_mask = _MASKS[mc_maxlen]
    cbp_mask = _MASKS[_CBP_MAXLEN]
    ac_lens = _AC2_LENS
    ac_runs = _AC2_RUNS
    ac_biased = _AC2_BIASED
    ac_maxlen = _AC2_MAXLEN
    ac_fused = _AC_FUSED
    if ac_fused is None:
        ac_fused = _build_fused_ac()
    ac_mask = _MASKS[ac_maxlen]

    while prev_addr < row_last:
        # ---- macroblock address increment (with escape) ------------
        increment = 0
        while True:
            if abits < mba_maxlen:
                chunk = data[bytepos : bytepos + 8]
                nb = len(chunk)
                acc = ((acc & masks[abits]) << (nb << 3)) | ifb(chunk, "big")
                abits += nb << 3
                bytepos += nb
            if abits >= mba_maxlen:
                w = (acc >> (abits - mba_maxlen)) & mba_mask
                length = mba_lens[w]
                if length == 0:
                    raise VLCError(
                        f"{MB_ADDRESS_INCREMENT.name}: invalid codeword at "
                        f"bit {bytepos * 8 - abits} (window {w:0{mba_maxlen}b})"
                    )
            else:
                # Stream tail: remaining real bits == abits.
                w = (acc << (mba_maxlen - abits)) & mba_mask
                length = mba_lens[w]
                if length == 0:
                    raise VLCError(
                        f"{MB_ADDRESS_INCREMENT.name}: invalid codeword at "
                        f"bit {bytepos * 8 - abits} (window {w:0{mba_maxlen}b})"
                    )
                if length > abits:
                    raise VLCError(
                        f"{MB_ADDRESS_INCREMENT.name}: truncated codeword at "
                        "end of stream"
                    )
            abits -= length
            vlc_symbols += 1
            inc = mba_inc[w]
            if inc:
                increment += inc
                break
            increment += MBA_ESCAPE_VALUE
        address = prev_addr + increment
        if address > row_last:
            raise SliceDecodeError(
                f"macroblock address {address} beyond end of row {row}"
            )

        # ---- skipped macroblocks -----------------------------------
        for skipped in range(prev_addr + 1, address):
            macroblocks += 1
            if is_p:
                if not has_fwd:
                    raise SliceDecodeError(
                        "P skipped macroblock without forward reference"
                    )
                # Co-located copy == zero-MV forward prediction of a
                # zero residual; the record shares the MC path.
                pixels += _MB_PIXELS
                mc_pixels += _MB_PIXELS
                a_addr(skipped)
                a_intra(False)
                a_qs(qscale)
                a_cbp(0)
                a_fon(True)
                a_fdy(0)
                a_fdx(0)
                a_bon(False)
                a_bdy(0)
                a_bdx(0)
                rec += 1
                pf_dy = pf_dx = pb_dy = pb_dx = 0  # reset_pmv
            elif is_b:
                if not prev_valid:
                    raise SliceDecodeError(
                        "B skipped macroblock with no previous mode"
                    )
                if not prev_f_on and not prev_b_on:
                    raise ValueError(
                        "prediction requested with no motion vectors"
                    )
                mb_row = skipped // mb_width
                mb_col = skipped - mb_row * mb_width
                if prev_f_on:
                    _validate_mv(
                        pv_f_dy, pv_f_dx, mb_row, mb_col, luma_h, luma_w
                    )
                if prev_b_on:
                    _validate_mv(
                        pv_b_dy, pv_b_dx, mb_row, mb_col, luma_h, luma_w
                    )
                nrefs = (1 if prev_f_on else 0) + (1 if prev_b_on else 0)
                mc_pixels += nrefs * _MB_PIXELS
                mc_macroblocks += 1
                if prev_f_on and prev_b_on:
                    bidir_macroblocks += 1
                pixels += _MB_PIXELS
                a_addr(skipped)
                a_intra(False)
                a_qs(qscale)
                a_cbp(0)
                a_fon(prev_f_on)
                a_fdy(pv_f_dy)
                a_fdx(pv_f_dx)
                a_bon(prev_b_on)
                a_bdy(pv_b_dy)
                a_bdx(pv_b_dx)
                rec += 1
            else:
                raise SliceDecodeError(
                    "skipped macroblocks are illegal in I-pictures"
                )
            dc0 = dc1 = dc2 = _DC_RESET  # reset_dc

        # ---- coded macroblock: macroblock_type ---------------------
        if abits < mt_maxlen:
            chunk = data[bytepos : bytepos + 8]
            nb = len(chunk)
            acc = ((acc & masks[abits]) << (nb << 3)) | ifb(chunk, "big")
            abits += nb << 3
            bytepos += nb
        if abits >= mt_maxlen:
            w = (acc >> (abits - mt_maxlen)) & mt_mask
            length = mt_lens[w]
            if length == 0:
                raise VLCError(
                    f"{mt_name}: invalid codeword at bit "
                    f"{bytepos * 8 - abits} (window {w:0{mt_maxlen}b})"
                )
        else:
            w = (acc << (mt_maxlen - abits)) & mt_mask
            length = mt_lens[w]
            if length == 0:
                raise VLCError(
                    f"{mt_name}: invalid codeword at bit "
                    f"{bytepos * 8 - abits} (window {w:0{mt_maxlen}b})"
                )
            if length > abits:
                raise VLCError(
                    f"{mt_name}: truncated codeword at end of stream"
                )
        abits -= length
        flags = mt_flags[w]
        vlc_symbols += 1
        macroblocks += 1

        if flags & _MT_QUANT:
            if abits < 5:
                chunk = data[bytepos : bytepos + 8]
                nb = len(chunk)
                acc = ((acc & masks[abits]) << (nb << 3)) | ifb(chunk, "big")
                abits += nb << 3
                bytepos += nb
                if abits < 5:
                    raise BitstreamError(
                        f"read past end of stream (want 5 bits at "
                        f"{n - abits}, have {abits})"
                    )
            code = (acc >> (abits - 5)) & 31
            abits -= 5
            if code == 0:
                raise SliceDecodeError("macroblock quantiser_scale_code of 0")
            qscale = quantiser_scale(code)

        # ---- motion vectors (dx then dy per direction) -------------
        f_on = False
        fdy = fdx = 0
        if flags & _MT_FWD:
            # dx component
            for comp in (0, 1):
                if abits < mc_maxlen:
                    chunk = data[bytepos : bytepos + 8]
                    nb = len(chunk)
                    acc = (
                        (acc & masks[abits]) << (nb << 3)
                    ) | ifb(chunk, "big")
                    abits += nb << 3
                    bytepos += nb
                if abits >= mc_maxlen:
                    w = (acc >> (abits - mc_maxlen)) & mc_mask
                    length = mc_lens[w]
                    if length == 0:
                        raise VLCError(
                            f"{MOTION_CODE.name}: invalid codeword at bit "
                            f"{bytepos * 8 - abits} (window {w:0{mc_maxlen}b})"
                        )
                else:
                    w = (acc << (mc_maxlen - abits)) & mc_mask
                    length = mc_lens[w]
                    if length == 0:
                        raise VLCError(
                            f"{MOTION_CODE.name}: invalid codeword at bit "
                            f"{bytepos * 8 - abits} (window {w:0{mc_maxlen}b})"
                        )
                    if length > abits:
                        raise VLCError(
                            f"{MOTION_CODE.name}: truncated codeword at end "
                            "of stream"
                        )
                abits -= length
                code = mc_syms[w]
                if ff == 1 or code == 0:
                    delta = code
                else:
                    if abits < f_rbits:
                        chunk = data[bytepos : bytepos + 8]
                        nb = len(chunk)
                        acc = (
                            (acc & masks[abits]) << (nb << 3)
                        ) | ifb(chunk, "big")
                        abits += nb << 3
                        bytepos += nb
                        if abits < f_rbits:
                            raise BitstreamError(
                                f"read past end of stream (want {f_rbits} "
                                f"bits at {n - abits}, have {abits})"
                            )
                    residual = (acc >> (abits - f_rbits)) & (ff - 1)
                    abits -= f_rbits
                    delta = (
                        1 + ff * ((code if code >= 0 else -code) - 1)
                        + residual
                    )
                    if code < 0:
                        delta = -delta
                if comp == 0:
                    value = pf_dx + delta
                else:
                    value = pf_dy + delta
                while value < f_low:
                    value += f_span
                while value > f_high:
                    value -= f_span
                if comp == 0:
                    pf_dx = value
                else:
                    pf_dy = value
            fdy = pf_dy
            fdx = pf_dx
            f_on = True
            vlc_symbols += 2
        b_on = False
        bdy = bdx = 0
        if flags & _MT_BWD:
            for comp in (0, 1):
                if abits < mc_maxlen:
                    chunk = data[bytepos : bytepos + 8]
                    nb = len(chunk)
                    acc = (
                        (acc & masks[abits]) << (nb << 3)
                    ) | ifb(chunk, "big")
                    abits += nb << 3
                    bytepos += nb
                if abits >= mc_maxlen:
                    w = (acc >> (abits - mc_maxlen)) & mc_mask
                    length = mc_lens[w]
                    if length == 0:
                        raise VLCError(
                            f"{MOTION_CODE.name}: invalid codeword at bit "
                            f"{bytepos * 8 - abits} (window {w:0{mc_maxlen}b})"
                        )
                else:
                    w = (acc << (mc_maxlen - abits)) & mc_mask
                    length = mc_lens[w]
                    if length == 0:
                        raise VLCError(
                            f"{MOTION_CODE.name}: invalid codeword at bit "
                            f"{bytepos * 8 - abits} (window {w:0{mc_maxlen}b})"
                        )
                    if length > abits:
                        raise VLCError(
                            f"{MOTION_CODE.name}: truncated codeword at end "
                            "of stream"
                        )
                abits -= length
                code = mc_syms[w]
                if bf == 1 or code == 0:
                    delta = code
                else:
                    if abits < b_rbits:
                        chunk = data[bytepos : bytepos + 8]
                        nb = len(chunk)
                        acc = (
                            (acc & masks[abits]) << (nb << 3)
                        ) | ifb(chunk, "big")
                        abits += nb << 3
                        bytepos += nb
                        if abits < b_rbits:
                            raise BitstreamError(
                                f"read past end of stream (want {b_rbits} "
                                f"bits at {n - abits}, have {abits})"
                            )
                    residual = (acc >> (abits - b_rbits)) & (bf - 1)
                    abits -= b_rbits
                    delta = (
                        1 + bf * ((code if code >= 0 else -code) - 1)
                        + residual
                    )
                    if code < 0:
                        delta = -delta
                if comp == 0:
                    value = pb_dx + delta
                else:
                    value = pb_dy + delta
                while value < b_low:
                    value += b_span
                while value > b_high:
                    value -= b_span
                if comp == 0:
                    pb_dx = value
                else:
                    pb_dy = value
            bdy = pb_dy
            bdx = pb_dx
            b_on = True
            vlc_symbols += 2

        if is_p and not (flags & _MT_INTRA) and not (flags & _MT_FWD):
            # The P no-MC case: zero forward vector, PMV reset (below).
            f_on = True
            fdy = fdx = 0

        # ---- coded block pattern -----------------------------------
        if flags & _MT_CODED:
            if abits < _CBP_MAXLEN:
                chunk = data[bytepos : bytepos + 8]
                nb = len(chunk)
                acc = ((acc & masks[abits]) << (nb << 3)) | ifb(chunk, "big")
                abits += nb << 3
                bytepos += nb
            if abits >= _CBP_MAXLEN:
                w = (acc >> (abits - _CBP_MAXLEN)) & cbp_mask
                length = _CBP_LENS[w]
                if length == 0:
                    raise VLCError(
                        f"{CODED_BLOCK_PATTERN.name}: invalid codeword at "
                        f"bit {bytepos * 8 - abits} "
                        f"(window {w:0{_CBP_MAXLEN}b})"
                    )
            else:
                w = (acc << (_CBP_MAXLEN - abits)) & cbp_mask
                length = _CBP_LENS[w]
                if length == 0:
                    raise VLCError(
                        f"{CODED_BLOCK_PATTERN.name}: invalid codeword at "
                        f"bit {bytepos * 8 - abits} "
                        f"(window {w:0{_CBP_MAXLEN}b})"
                    )
                if length > abits:
                    raise VLCError(
                        f"{CODED_BLOCK_PATTERN.name}: truncated codeword at "
                        "end of stream"
                    )
            abits -= length
            cbp = _CBP_SYMS[w]
            vlc_symbols += 1
        elif flags & _MT_INTRA:
            cbp = 63
        else:
            cbp = 0

        # ---- coefficient blocks ------------------------------------
        intra_mb = flags & _MT_INTRA
        if cbp:
            base0 = rec * _MB_COEFFS
            for i in range(6):
                if not cbp & (32 >> i):
                    continue
                a_cp(-1 - (base0 + (i << 6)))  # block marker
                k = 0
                if intra_mb:
                    if i < 4:
                        dc_lens = _DCL_LENS
                        dc_syms = _DCL_SYMS
                        dc_maxlen = _DCL_MAXLEN
                        dc_name = DC_SIZE_LUMA.name
                        pred = dc0
                    elif i == 4:
                        dc_lens = _DCC_LENS
                        dc_syms = _DCC_SYMS
                        dc_maxlen = _DCC_MAXLEN
                        dc_name = DC_SIZE_CHROMA.name
                        pred = dc1
                    else:
                        dc_lens = _DCC_LENS
                        dc_syms = _DCC_SYMS
                        dc_maxlen = _DCC_MAXLEN
                        dc_name = DC_SIZE_CHROMA.name
                        pred = dc2
                    if abits < dc_maxlen:
                        chunk = data[bytepos : bytepos + 8]
                        nb = len(chunk)
                        acc = (
                            (acc & masks[abits]) << (nb << 3)
                        ) | ifb(chunk, "big")
                        abits += nb << 3
                        bytepos += nb
                    if abits >= dc_maxlen:
                        w = (acc >> (abits - dc_maxlen)) & masks[dc_maxlen]
                        length = dc_lens[w]
                        if length == 0:
                            raise VLCError(
                                f"{dc_name}: invalid codeword at bit "
                                f"{bytepos * 8 - abits} "
                                f"(window {w:0{dc_maxlen}b})"
                            )
                    else:
                        w = (acc << (dc_maxlen - abits)) & masks[dc_maxlen]
                        length = dc_lens[w]
                        if length == 0:
                            raise VLCError(
                                f"{dc_name}: invalid codeword at bit "
                                f"{bytepos * 8 - abits} "
                                f"(window {w:0{dc_maxlen}b})"
                            )
                        if length > abits:
                            raise VLCError(
                                f"{dc_name}: truncated codeword at end of "
                                "stream"
                            )
                    size = dc_syms[w]
                    abits -= length
                    vlc_symbols += 1
                    if size:
                        if abits < size:
                            chunk = data[bytepos : bytepos + 8]
                            nb = len(chunk)
                            acc = (
                                (acc & masks[abits]) << (nb << 3)
                            ) | ifb(chunk, "big")
                            abits += nb << 3
                            bytepos += nb
                            if abits < size:
                                raise BitstreamError(
                                    f"read past end of stream (want {size} "
                                    f"bits at {n - abits}, have {abits})"
                                )
                        raw = (acc >> (abits - size)) & masks[size]
                        abits -= size
                        if raw & (1 << (size - 1)):
                            pred += raw
                        else:
                            pred -= raw ^ ((1 << size) - 1)
                    if i < 4:
                        dc0 = pred
                    elif i == 4:
                        dc1 = pred
                    else:
                        dc2 = pred
                    a_cp(pred + 0x800000)  # DC: scan position 0
                    dc_emits += 1
                    k = 1

                while True:
                    # Fused fast path: one peek emits every complete
                    # run/level symbol in the window and consumes a
                    # trailing EOB.  Escapes, invalid prefixes,
                    # window-straddling codewords and the stream tail
                    # fall through to the single-symbol path below,
                    # which owns all error positions.
                    if abits < _FUSE_BITS:
                        chunk = data[bytepos : bytepos + 8]
                        nb = len(chunk)
                        acc = (
                            (acc & masks[abits]) << (nb << 3)
                        ) | ifb(chunk, "big")
                        abits += nb << 3
                        bytepos += nb
                    if abits >= _FUSE_BITS:
                        consumed, eob, pairs = ac_fused[
                            (acc >> (abits - _FUSE_BITS)) & _FUSE_MASK
                        ]
                        if consumed:
                            abits -= consumed
                            for run, biased in pairs:
                                k += run
                                if k >= 64:
                                    raise BlockSyntaxError(
                                        f"coefficient index {k} past end "
                                        f"of block (run {run})"
                                    )
                                a_cp((k << 24) | biased)
                                k += 1
                            if eob:
                                break
                            continue
                    # Single-symbol path: exact error positions for
                    # corrupt input, plus the rare legal cases the
                    # fused table cannot finish.
                    if abits < ac_maxlen:
                        chunk = data[bytepos : bytepos + 8]
                        nb = len(chunk)
                        acc = (
                            (acc & masks[abits]) << (nb << 3)
                        ) | ifb(chunk, "big")
                        abits += nb << 3
                        bytepos += nb
                        if abits < ac_maxlen:
                            # Stream tail: remaining real bits == abits.
                            w = (acc << (ac_maxlen - abits)) & ac_mask
                            length = ac_lens[w]
                            if length == 0:
                                raise VLCError(
                                    f"{AC_RUN_LEVEL.name}: invalid codeword "
                                    f"at bit {bytepos * 8 - abits} "
                                    f"(window {w:0{ac_maxlen}b})"
                                )
                            if length > abits:
                                if ac_runs[w] >= 0 and length - 1 <= abits:
                                    # The run/level codeword itself fits;
                                    # only its folded sign bit is past the
                                    # end — the scalar path consumes the
                                    # codeword, then fails the one-bit
                                    # sign read.
                                    raise BitstreamError(
                                        "read past end of stream (want 1 "
                                        f"bits at {n}, have 0)"
                                    )
                                raise VLCError(
                                    f"{AC_RUN_LEVEL.name}: truncated "
                                    "codeword at end of stream"
                                )
                        else:
                            w = (acc >> (abits - ac_maxlen)) & ac_mask
                            length = ac_lens[w]
                            if length == 0:
                                raise VLCError(
                                    f"{AC_RUN_LEVEL.name}: invalid codeword "
                                    f"at bit {bytepos * 8 - abits} "
                                    f"(window {w:0{ac_maxlen}b})"
                                )
                    else:
                        w = (acc >> (abits - ac_maxlen)) & ac_mask
                        length = ac_lens[w]
                        if length == 0:
                            raise VLCError(
                                f"{AC_RUN_LEVEL.name}: invalid codeword at "
                                f"bit {bytepos * 8 - abits} "
                                f"(window {w:0{ac_maxlen}b})"
                            )
                    abits -= length
                    run = ac_runs[w]
                    if run >= 0:
                        k += run
                        if k >= 64:
                            raise BlockSyntaxError(
                                f"coefficient index {k} past end of block "
                                f"(run {run})"
                            )
                        a_cp((k << 24) | ac_biased[w])
                        k += 1
                        continue
                    if run == _AC_EOB_RUN:
                        break
                    else:
                        # Escape: 6-bit run + 12-bit signed level.
                        if abits < _ESC_BITS:
                            chunk = data[bytepos : bytepos + 8]
                            nb = len(chunk)
                            acc = (
                                (acc & masks[abits]) << (nb << 3)
                            ) | ifb(chunk, "big")
                            abits += nb << 3
                            bytepos += nb
                            if abits < _ESC_BITS:
                                raise BitstreamError(
                                    "read past end of stream (want "
                                    f"{_ESC_BITS} bits at {n - abits}, "
                                    f"have {abits})"
                                )
                        v = (acc >> (abits - _ESC_BITS)) & _ESC_MASK
                        abits -= _ESC_BITS
                        run = v >> ESCAPE_LEVEL_BITS
                        raw = v & (_ESC_LEVEL_SPAN - 1)
                        level = (
                            raw - _ESC_LEVEL_SPAN
                            if raw & _ESC_LEVEL_SIGN
                            else raw
                        )
                        if level == 0:
                            raise BlockSyntaxError("escape-coded level of 0")
                    k += run
                    if k >= 64:
                        raise BlockSyntaxError(
                            f"coefficient index {k} past end of block "
                            f"(run {run})"
                        )
                    a_cp((k << 24) | (level + 0x800000))
                    k += 1
        idct_blocks += _POPCNT6[cbp]

        # ---- record + post-macroblock predictor updates ------------
        if intra_mb:
            pixels += _MB_PIXELS
            a_addr(address)
            a_intra(True)
            a_qs(qscale)
            a_cbp(cbp)
            a_fon(False)
            a_fdy(0)
            a_fdx(0)
            a_bon(False)
            a_bdy(0)
            a_bdx(0)
            rec += 1
            pf_dy = pf_dx = pb_dy = pb_dx = 0  # reset_pmv
            prev_valid = False
        else:
            if not f_on and not b_on:
                raise ValueError("prediction requested with no motion vectors")
            mb_row = address // mb_width
            mb_col = address - mb_row * mb_width
            if f_on:
                _validate_mv(fdy, fdx, mb_row, mb_col, luma_h, luma_w)
            if b_on:
                _validate_mv(bdy, bdx, mb_row, mb_col, luma_h, luma_w)
            nrefs = (1 if f_on else 0) + (1 if b_on else 0)
            mc_pixels += nrefs * _MB_PIXELS
            mc_macroblocks += 1
            if nrefs == 2:
                bidir_macroblocks += 1
            pixels += _MB_PIXELS
            a_addr(address)
            a_intra(False)
            a_qs(qscale)
            a_cbp(cbp)
            a_fon(f_on)
            a_fdy(fdy)
            a_fdx(fdx)
            a_bon(b_on)
            a_bdy(bdy)
            a_bdx(bdx)
            rec += 1
            dc0 = dc1 = dc2 = _DC_RESET  # reset_dc
            if is_p and not (flags & _MT_FWD):
                pf_dy = pf_dx = 0  # no-MC P macroblock: PMV reset
            prev_valid = True
            prev_f_on = bool(flags & _MT_FWD) or is_p
            prev_b_on = bool(flags & _MT_BWD)
            if f_on:
                pv_f_dy = fdy
                pv_f_dx = fdx
            else:
                pv_f_dy = pv_f_dx = 0
            if b_on:
                pv_b_dy = bdy
                pv_b_dx = bdx
            else:
                pv_b_dy = pv_b_dx = 0
        prev_addr = address

    ncp = len(sp.coef_packed)
    # The AC loop keeps no per-symbol counter: every packed entry is
    # one run/level symbol except the intra DC terms and the per-block
    # markers — and each marker (one per coded block, ``idct_blocks``
    # in total) stands for exactly the block's closing EOB symbol, so
    # AC symbols = (ncp - dc_emits - idct_blocks) + idct_blocks.
    local.vlc_symbols = vlc_symbols + ncp - dc_emits
    local.macroblocks = macroblocks
    local.mc_macroblocks = mc_macroblocks
    local.bidir_macroblocks = bidir_macroblocks
    local.idct_blocks = idct_blocks
    local.coefficients = ncp - dc_emits - idct_blocks
    local.mc_pixels = mc_pixels
    local.pixels = pixels
    return sp


# ======================================================================
# phase 2: reconstruct
# ======================================================================
class PictureAssembly:
    """One picture's slice parses concatenated into NumPy arrays.

    ``coef_idx``/``coef_val`` form the picture-wide sparse coefficient
    stream (indices are ``record * 384 + block * 64 + raster_pos``);
    ``rec_idx``/``blk_idx`` enumerate the coded blocks of the picture
    (the IDCT batch members) in record order.
    """

    __slots__ = (
        "n",
        "addr",
        "intra",
        "qscale",
        "cbp",
        "f_on",
        "f_dy",
        "f_dx",
        "b_on",
        "b_dy",
        "b_dx",
        "coef_idx",
        "coef_val",
        "rec_idx",
        "blk_idx",
    )


_BLOCK_BITS = np.int64(32) >> np.arange(6)


def assemble_picture(slices: list[SliceParse]) -> PictureAssembly:
    """Concatenate a picture's slice parses into one flat assembly.

    Slices must cover distinct macroblock rows (the decoder drops
    superseded duplicates before calling) — record order therefore
    never affects pixels, because every record scatters to a distinct
    macroblock address.
    """
    asm = PictureAssembly()
    n = sum(len(s) for s in slices)
    asm.n = n
    asm.addr = addr = np.empty(n, dtype=np.intp)
    asm.intra = intra = np.empty(n, dtype=bool)
    asm.qscale = qscale = np.empty(n, dtype=np.int64)
    asm.cbp = cbp = np.empty(n, dtype=np.int64)
    asm.f_on = f_on = np.empty(n, dtype=bool)
    asm.f_dy = f_dy = np.empty(n, dtype=np.int64)
    asm.f_dx = f_dx = np.empty(n, dtype=np.int64)
    asm.b_on = b_on = np.empty(n, dtype=bool)
    asm.b_dy = b_dy = np.empty(n, dtype=np.int64)
    asm.b_dx = b_dx = np.empty(n, dtype=np.int64)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    off = 0
    for s in slices:
        m = len(s)
        if not m:
            continue
        end = off + m
        addr[off:end] = s.addresses
        intra[off:end] = s.intra
        qscale[off:end] = s.qscale
        cbp[off:end] = s.cbp
        f_on[off:end] = s.f_on
        f_dy[off:end] = s.f_dy
        f_dx[off:end] = s.f_dx
        b_on[off:end] = s.b_on
        b_dy[off:end] = s.b_dy
        b_dx[off:end] = s.b_dx
        if s.coef_packed:
            arr = np.asarray(s.coef_packed, dtype=np.int64)
            marks = arr < 0
            # Forward-fill each block marker over the coefficients
            # that follow it (the stream always opens with a marker),
            # then drop the markers and rebuild flat scan indices.
            fill = np.maximum.accumulate(
                np.where(marks, np.arange(arr.size), 0)
            )
            keep = ~marks
            kept = arr[keep]
            sidx = (-1 - arr[fill[keep]]) + (kept >> _COEF_SHIFT)
            ridx = scan_to_raster_flat(sidx, s.alternate_scan)
            idx_parts.append(ridx + off * _MB_COEFFS)
            val_parts.append((kept & _COEF_VMASK) - _COEF_BIAS)
        off = end
    if idx_parts:
        asm.coef_idx = np.concatenate(idx_parts)
        asm.coef_val = np.concatenate(val_parts)
    else:
        asm.coef_idx = np.empty(0, dtype=np.int64)
        asm.coef_val = np.empty(0, dtype=np.int64)
    coded = (cbp[:, None] & _BLOCK_BITS) != 0  # (n, 6)
    asm.rec_idx, asm.blk_idx = np.nonzero(coded)
    return asm


def _compact_levels(asm: PictureAssembly) -> np.ndarray:
    """Dense raster-ordered levels of the assembly's coded blocks.

    Returns ``(m, 8, 8)`` where ``m == len(asm.rec_idx)``: one sparse
    scatter of the coefficient stream, no per-block work, no un-scan
    (the scan permutation was applied at parse time).
    """
    m = asm.rec_idx.size
    # float64 throughout phase 2's transform chain: level magnitudes
    # keep every intermediate exactly representable (see the
    # ``dequantize_*_f64`` twins), and the IDCT gets its native dtype.
    lv = np.zeros((m, 64), dtype=np.float64)
    if asm.coef_idx.size:
        # Map flat block number (record * 6 + block) -> IDCT batch row.
        blkmap = np.zeros(asm.n * 6, dtype=np.int64)
        blkmap[asm.rec_idx * 6 + asm.blk_idx] = np.arange(m)
        lv[blkmap[asm.coef_idx >> 6], asm.coef_idx & 63] = asm.coef_val
    return lv.reshape(m, 8, 8)


def gop_dequant_idct(
    assemblies: list[PictureAssembly], seq: SequenceHeader
) -> list[np.ndarray]:
    """One inverse quantization + **one** IDCT over many pictures.

    Dequant and IDCT depend only on levels, quantiser scales and the
    sequence quant matrices — never on reference frames — so every
    coded block of a GOP batches into a single NumPy call chain
    (``scipy.fft``'s IDCT is batch-size invariant, so this is
    bit-identical to per-macroblock calls).  Returns one
    ``(n, 6, 8, 8)`` int32 residual array per assembly.
    """
    counts = [a.rec_idx.size for a in assemblies]
    total = sum(counts)
    out: list[np.ndarray] = []
    if total == 0:
        return [
            np.zeros((a.n, 6, 8, 8), dtype=np.int32) for a in assemblies
        ]
    with trace_span(
        "kernel.dequant_idct",
        cat="kernel",
        blocks=int(total),
        pictures=len(assemblies),
    ):
        raster = np.concatenate([_compact_levels(a) for a in assemblies])
        qs = np.concatenate(
            [a.qscale[a.rec_idx] for a in assemblies]
        )[:, None, None]
        is_i = np.concatenate([a.intra[a.rec_idx] for a in assemblies])
        coeffs = np.empty_like(raster)
        if is_i.any():
            coeffs[is_i] = dequantize_intra_f64(
                raster[is_i], seq.intra_quant_matrix, qs[is_i]
            )
        ni = ~is_i
        if ni.any():
            coeffs[ni] = dequantize_non_intra_f64(
                raster[ni], seq.non_intra_quant_matrix, qs[ni]
            )
        idct = idct_rounded(coeffs)
        pos = 0
        for a, m in zip(assemblies, counts):
            blocks = np.zeros((a.n, 6, 8, 8), dtype=np.int32)
            if m:
                blocks[a.rec_idx, a.blk_idx] = idct[pos : pos + m]
            out.append(blocks)
            pos += m
    return out


def _phase_gather(
    plane: np.ndarray,
    tops: np.ndarray,
    lefts: np.ndarray,
    fys: np.ndarray,
    fxs: np.ndarray,
    bh: int,
    bw: int,
) -> np.ndarray:
    """Half-pel prediction fetch for many blocks, grouped by phase.

    For each of the four half-pel phases ``(fy, fx)`` the matching
    blocks become one strided-view gather over ``plane`` followed by
    the standard rounded average — the same integer arithmetic as
    :func:`repro.mpeg2.motion.predict_block`, applied batchwise.
    """
    out = np.empty((len(tops), bh, bw), dtype=np.int32)
    for fy in (0, 1):
        for fx in (0, 1):
            m = (fys == fy) & (fxs == fx)
            if not m.any():
                continue
            win = sliding_window_view(plane, (bh + fy, bw + fx))
            region = win[tops[m], lefts[m]].astype(np.int32)
            if fy and fx:
                out[m] = (
                    region[:, :-1, :-1]
                    + region[:, :-1, 1:]
                    + region[:, 1:, :-1]
                    + region[:, 1:, 1:]
                    + 2
                ) >> 2
            elif fy:
                out[m] = (region[:, :-1, :] + region[:, 1:, :] + 1) >> 1
            elif fx:
                out[m] = (region[:, :, :-1] + region[:, :, 1:] + 1) >> 1
            else:
                out[m] = region
    return out


def _direction_pred(
    ref: Frame, rows: np.ndarray, cols: np.ndarray, dys: np.ndarray, dxs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched one-direction prediction: (Y, Cb, Cr) block stacks."""
    # Luma: floor-halve the half-pel vector (matches Python divmod).
    iy = dys // 2
    ix = dxs // 2
    fy = dys & 1
    fx = dxs & 1
    py = _phase_gather(ref.y, rows * 16 + iy, cols * 16 + ix, fy, fx, 16, 16)
    # Chroma vector: luma MV halved truncating toward zero.
    cdy = np.sign(dys) * (np.abs(dys) // 2)
    cdx = np.sign(dxs) * (np.abs(dxs) // 2)
    ciy = cdy // 2
    cix = cdx // 2
    cfy = cdy & 1
    cfx = cdx & 1
    ctop = rows * 8 + ciy
    cleft = cols * 8 + cix
    pcb = _phase_gather(ref.cb, ctop, cleft, cfy, cfx, 8, 8)
    pcr = _phase_gather(ref.cr, ctop, cleft, cfy, cfx, 8, 8)
    return py, pcb, pcr


def mc_scatter(
    asm: PictureAssembly,
    blocks: np.ndarray,
    out: Frame,
    fwd: Frame | None,
    bwd: Frame | None,
) -> None:
    """Motion-compensate one picture and scatter its pixels into ``out``.

    ``blocks`` is the picture's ``(n, 6, 8, 8)`` int32 residual array
    (from :func:`gop_dequant_idct`).  This stage is the only part of
    phase 2 that must run per picture in coding order — it reads the
    previously reconstructed reference frames.
    """
    n = asm.n
    if n == 0:
        return
    f_valid = asm.f_on
    b_valid = asm.b_on
    mbw = out.mb_width
    rows = asm.addr // mbw
    cols = asm.addr % mbw

    pred6 = np.zeros((n, 6, 8, 8), dtype=np.int32)
    if f_valid.any() or b_valid.any():
        with trace_span(
            "kernel.mc",
            cat="kernel",
            macroblocks=int((f_valid | b_valid).sum()),
        ):
            pred_y = np.zeros((n, 16, 16), dtype=np.int32)
            pred_cb = np.zeros((n, 8, 8), dtype=np.int32)
            pred_cr = np.zeros((n, 8, 8), dtype=np.int32)
            fy_ = fcb = fcr = None
            if f_valid.any():
                if fwd is None:
                    raise ValueError(
                        "motion vector present but reference frame missing"
                    )
                py, pcb, pcr = _direction_pred(
                    fwd,
                    rows[f_valid],
                    cols[f_valid],
                    asm.f_dy[f_valid],
                    asm.f_dx[f_valid],
                )
                fy_ = np.zeros((n, 16, 16), dtype=np.int32)
                fcb = np.zeros((n, 8, 8), dtype=np.int32)
                fcr = np.zeros((n, 8, 8), dtype=np.int32)
                fy_[f_valid], fcb[f_valid], fcr[f_valid] = py, pcb, pcr
            by_ = bcb = bcr = None
            if b_valid.any():
                if bwd is None:
                    raise ValueError(
                        "motion vector present but reference frame missing"
                    )
                py, pcb, pcr = _direction_pred(
                    bwd,
                    rows[b_valid],
                    cols[b_valid],
                    asm.b_dy[b_valid],
                    asm.b_dx[b_valid],
                )
                by_ = np.zeros((n, 16, 16), dtype=np.int32)
                bcb = np.zeros((n, 8, 8), dtype=np.int32)
                bcr = np.zeros((n, 8, 8), dtype=np.int32)
                by_[b_valid], bcb[b_valid], bcr[b_valid] = py, pcb, pcr

            only_f = f_valid & ~b_valid
            only_b = b_valid & ~f_valid
            both = f_valid & b_valid
            if only_f.any():
                pred_y[only_f] = fy_[only_f]
                pred_cb[only_f] = fcb[only_f]
                pred_cr[only_f] = fcr[only_f]
            if only_b.any():
                pred_y[only_b] = by_[only_b]
                pred_cb[only_b] = bcb[only_b]
                pred_cr[only_b] = bcr[only_b]
            if both.any():
                # B bidirectional mode: rounded average of the two fetches.
                pred_y[both] = (fy_[both] + by_[both] + 1) >> 1
                pred_cb[both] = (fcb[both] + bcb[both] + 1) >> 1
                pred_cr[both] = (fcr[both] + bcr[both] + 1) >> 1

            pred6[:, 0] = pred_y[:, :8, :8]
            pred6[:, 1] = pred_y[:, :8, 8:]
            pred6[:, 2] = pred_y[:, 8:, :8]
            pred6[:, 3] = pred_y[:, 8:, 8:]
            pred6[:, 4] = pred_cb
            pred6[:, 5] = pred_cr

    # ---- residual add, clip, single scatter into the frame planes ----
    with trace_span("kernel.scatter", cat="kernel", macroblocks=n):
        pixels = np.clip(blocks + pred6, 0, 255).astype(np.uint8)
        write_macroblocks(out, rows, cols, pixels)


def reconstruct_slices(
    slices: list[SliceParse],
    seq: SequenceHeader,
    pic: PictureHeader,
    out: Frame,
    fwd: Frame | None,
    bwd: Frame | None,
) -> None:
    """Phase 2 for a single picture (compatibility entry point).

    The slice-level parallel decoders and the picture-granular decode
    path call this; the GOP-batched path in
    :class:`repro.mpeg2.decoder.SequenceDecoder` calls
    :func:`assemble_picture` / :func:`gop_dequant_idct` /
    :func:`mc_scatter` directly to batch the transform work across
    pictures.
    """
    del pic  # scan order was applied at parse time
    asm = assemble_picture(slices)
    if asm.n == 0:
        return
    blocks = gop_dequant_idct([asm], seq)[0]
    mc_scatter(asm, blocks, out, fwd, bwd)
