"""Machine configurations: the paper's two hardware platforms.

``CHALLENGE`` models the 16-processor SGI Challenge of Section 3:
150 MHz R4400s on a shared bus with uniform memory access.

``DASH`` models the Stanford DASH of Section 7.2: 4-processor
clusters with physically distributed memory; a miss served by a remote
cluster costs several times a local miss, which is the effect the
paper identifies as the main impediment to speedup there.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated multiprocessor."""

    name: str
    processors: int
    clock_hz: float = 150e6
    #: Second-level cache line size in bytes.
    line_size: int = 128
    #: Per-processor cache capacity in bytes (Challenge: 1MB L2).
    cache_bytes: int = 1 << 20
    #: Cycles to service a miss from (local) memory.
    miss_penalty: int = 90
    #: NUMA: processors per cluster (0 = centralised memory, UMA).
    cluster_size: int = 0
    #: NUMA: remote-miss penalty multiplier over a local miss.
    remote_penalty_multiplier: float = 1.0
    #: Main memory available to the program, bytes (paper: ~500 MB).
    memory_bytes: int = 500 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.cluster_size < 0:
            raise ValueError("cluster_size must be >= 0")

    @property
    def is_numa(self) -> bool:
        return self.cluster_size > 0

    def cluster_of(self, processor: int) -> int:
        """Which cluster a processor index belongs to (NUMA only)."""
        if not self.is_numa:
            return 0
        return processor // self.cluster_size

    def seconds(self, cycles: int | float) -> float:
        return cycles / self.clock_hz

    def cycles(self, seconds: float) -> int:
        return int(round(seconds * self.clock_hz))


def challenge(processors: int = 16) -> MachineConfig:
    """An SGI-Challenge-like bus-based SMP with ``processors`` CPUs."""
    return MachineConfig(name=f"challenge-{processors}p", processors=processors)


def dash(processors: int = 32, cluster_size: int = 4) -> MachineConfig:
    """A DASH-like NUMA machine (4-processor clusters by default)."""
    return MachineConfig(
        name=f"dash-{processors}p",
        processors=processors,
        cluster_size=cluster_size,
        # DASH remote misses were ~3-4x a local (in-cluster) miss.
        remote_penalty_multiplier=3.5,
        miss_penalty=30,  # local cluster miss is cheaper than bus+DRAM
    )


CHALLENGE = challenge()
DASH = dash()
