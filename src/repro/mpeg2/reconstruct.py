"""Macroblock reconstruction: prediction formation + residual add.

Shared by the decoder and (via decode-back) the encoder's local
reconstruction loop, so both sides are bit-exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpeg2.constants import BLOCK_SIZE, MACROBLOCK_SIZE
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.frame import Frame
from repro.mpeg2.motion import MotionVector, average_predictions, predict_block


@dataclass(frozen=True)
class Prediction:
    """Motion-compensated prediction for one macroblock (all planes)."""

    y: np.ndarray  # (16, 16) int32
    cb: np.ndarray  # (8, 8) int32
    cr: np.ndarray  # (8, 8) int32


def form_prediction(
    mb_row: int,
    mb_col: int,
    mv_fwd: MotionVector | None,
    mv_bwd: MotionVector | None,
    fwd: Frame | None,
    bwd: Frame | None,
    counters: WorkCounters | None = None,
) -> Prediction:
    """Fetch the (possibly bidirectional) prediction for a macroblock.

    ``mv_fwd``/``mv_bwd`` are absolute luma vectors in half-pel units;
    passing both averages the two fetches (B bidirectional mode).
    """
    if mv_fwd is None and mv_bwd is None:
        raise ValueError("prediction requested with no motion vectors")
    preds = []
    for mv, ref in ((mv_fwd, fwd), (mv_bwd, bwd)):
        if mv is None:
            continue
        if ref is None:
            raise ValueError("motion vector present but reference frame missing")
        y0 = mb_row * MACROBLOCK_SIZE
        x0 = mb_col * MACROBLOCK_SIZE
        cmv = mv.chroma()
        cy0, cx0 = y0 // 2, x0 // 2
        preds.append(
            Prediction(
                y=predict_block(ref.y, y0, x0, 16, 16, mv),
                cb=predict_block(ref.cb, cy0, cx0, 8, 8, cmv),
                cr=predict_block(ref.cr, cy0, cx0, 8, 8, cmv),
            )
        )
    if counters is not None:
        counters.mc_pixels += len(preds) * (256 + 64 + 64)
    if len(preds) == 1:
        return preds[0]
    a, b = preds
    return Prediction(
        y=average_predictions(a.y, b.y),
        cb=average_predictions(a.cb, b.cb),
        cr=average_predictions(a.cr, b.cr),
    )


#: (plane, row-offset block units, col-offset) for blocks 0..5 of a MB.
_BLOCK_SLOTS = (
    ("y", 0, 0),
    ("y", 0, 1),
    ("y", 1, 0),
    ("y", 1, 1),
    ("cb", 0, 0),
    ("cr", 0, 0),
)


def write_macroblock(
    out: Frame,
    mb_row: int,
    mb_col: int,
    blocks: np.ndarray,
    prediction: Prediction | None,
    counters: WorkCounters | None = None,
) -> None:
    """Store one reconstructed macroblock into ``out``.

    ``blocks`` is the (6, 8, 8) int32 IDCT output: pixel values for
    intra macroblocks (``prediction is None``) or the residual to add
    to ``prediction`` otherwise.  Output is clamped to [0, 255].
    """
    for i, (plane_name, br, bc) in enumerate(_BLOCK_SLOTS):
        if plane_name == "y":
            plane = out.y
            y0 = mb_row * MACROBLOCK_SIZE + br * BLOCK_SIZE
            x0 = mb_col * MACROBLOCK_SIZE + bc * BLOCK_SIZE
            pred = None if prediction is None else prediction.y[
                br * BLOCK_SIZE : (br + 1) * BLOCK_SIZE,
                bc * BLOCK_SIZE : (bc + 1) * BLOCK_SIZE,
            ]
        else:
            plane = out.cb if plane_name == "cb" else out.cr
            y0 = mb_row * BLOCK_SIZE
            x0 = mb_col * BLOCK_SIZE
            pred = None if prediction is None else getattr(prediction, plane_name)
        data = blocks[i] if pred is None else blocks[i] + pred
        plane[y0 : y0 + BLOCK_SIZE, x0 : x0 + BLOCK_SIZE] = np.clip(
            data, 0, 255
        ).astype(np.uint8)
    if counters is not None:
        counters.pixels += 256 + 64 + 64


def write_macroblocks(
    out: Frame, rows: np.ndarray, cols: np.ndarray, pixels: np.ndarray
) -> None:
    """Batched :func:`write_macroblock`: scatter many macroblocks at once.

    ``pixels`` is ``(n, 6, 8, 8)`` **uint8** final pixel data (already
    clipped) for the macroblocks at ``(rows[i], cols[i])``; the six
    blocks follow the standard order (four luma quadrants, Cb, Cr).
    Positions must be distinct.  Reshape views expose each plane as
    ``(mb_row, y, mb_col, x)`` so the whole picture lands in three
    fancy-indexed assignments — this is the phase-2 counterpart of the
    scalar per-macroblock write.
    """
    n = len(rows)
    mbh, mbw = out.mb_height, out.mb_width
    lum = np.empty((n, 16, 16), dtype=np.uint8)
    lum[:, :8, :8] = pixels[:, 0]
    lum[:, :8, 8:] = pixels[:, 1]
    lum[:, 8:, :8] = pixels[:, 2]
    lum[:, 8:, 8:] = pixels[:, 3]
    out.y.reshape(mbh, 16, mbw, 16)[rows, :, cols, :] = lum
    out.cb.reshape(mbh, 8, mbw, 8)[rows, :, cols, :] = pixels[:, 4]
    out.cr.reshape(mbh, 8, mbw, 8)[rows, :, cols, :] = pixels[:, 5]


def copy_macroblock(out: Frame, src: Frame, mb_row: int, mb_col: int,
                    counters: WorkCounters | None = None) -> None:
    """Copy a co-located macroblock (P-picture skipped MB, zero MV)."""
    y0 = mb_row * MACROBLOCK_SIZE
    x0 = mb_col * MACROBLOCK_SIZE
    out.y[y0 : y0 + 16, x0 : x0 + 16] = src.y[y0 : y0 + 16, x0 : x0 + 16]
    cy0, cx0 = y0 // 2, x0 // 2
    out.cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = src.cb[cy0 : cy0 + 8, cx0 : cx0 + 8]
    out.cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = src.cr[cy0 : cy0 + 8, cx0 : cx0 + 8]
    if counters is not None:
        counters.pixels += 256 + 64 + 64
        counters.mc_pixels += 256 + 64 + 64


def conceal_row_temporal(out: Frame, ref: Frame, row: int) -> None:
    """Temporal concealment: co-located macroblock row of ``ref``.

    Classic slice concealment — the lost row is replaced by the same
    rows of an already-decoded picture (the forward reference in the
    decoder, the previously delivered picture at a streaming client).
    Row-wide plane copies are bit-identical to per-macroblock
    :func:`copy_macroblock` calls.
    """
    y0 = row * MACROBLOCK_SIZE
    c0 = y0 // 2
    out.y[y0 : y0 + 16, :] = ref.y[y0 : y0 + 16, :]
    out.cb[c0 : c0 + 8, :] = ref.cb[c0 : c0 + 8, :]
    out.cr[c0 : c0 + 8, :] = ref.cr[c0 : c0 + 8, :]


def conceal_row_spatial(out: Frame, row: int) -> None:
    """Spatial concealment: copy the macroblock row above, in place.

    Used when no earlier picture exists to borrow from (an I-picture
    at stream start).  Row 0 has nothing above it and falls back to
    mid-grey.  Concealment sweeps run top-to-bottom, so consecutive
    lost rows cascade deterministically (row ``r`` may copy a row
    ``r-1`` that was itself just concealed) — every decode path applies
    the same sweep order, which is what keeps them bit-identical.
    """
    y0 = row * MACROBLOCK_SIZE
    c0 = y0 // 2
    if row > 0:
        out.y[y0 : y0 + 16, :] = out.y[y0 - 16 : y0, :]
        out.cb[c0 : c0 + 8, :] = out.cb[c0 - 8 : c0, :]
        out.cr[c0 : c0 + 8, :] = out.cr[c0 - 8 : c0, :]
    else:
        out.y[y0 : y0 + 16, :] = 128
        out.cb[c0 : c0 + 8, :] = 128
        out.cr[c0 : c0 + 8, :] = 128


def conceal_row(out: Frame, fwd: Frame | None, row: int) -> str:
    """Conceal one lost macroblock row; returns the policy applied.

    Temporal (from the forward reference) when one exists, spatial
    (row-copy from above) otherwise.  Returns ``"temporal"`` or
    ``"spatial"`` so callers can attribute the concealment under the
    matching ``conceal.*`` stall reason.
    """
    if fwd is not None:
        conceal_row_temporal(out, fwd, row)
        return "temporal"
    conceal_row_spatial(out, row)
    return "spatial"


def conceal_rows(
    out: Frame,
    fwd: Frame | None,
    rows: list[int] | tuple[int, ...],
    counters: WorkCounters | None = None,
) -> tuple[int, int]:
    """Conceal ``rows`` of ``out`` top-to-bottom; count per policy.

    The single concealment sweep every decode path shares (scalar,
    batched, slice-parallel, serve): sorting ascending makes spatial
    cascades deterministic, which is load-bearing for cross-path bit
    parity on the ``conceal_*`` golden vectors.  Returns
    ``(temporal, spatial)`` concealment counts; ``counters`` (when
    given) accrues one ``concealed_slices`` per row.
    """
    temporal = spatial = 0
    for row in sorted(rows):
        if conceal_row(out, fwd, row) == "temporal":
            temporal += 1
        else:
            spatial += 1
    if counters is not None:
        counters.concealed_slices += temporal + spatial
    return temporal, spatial


def missing_rows(mb_height: int, covered_rows) -> list[int]:
    """Macroblock rows 0..mb_height-1 with no slice covering them.

    ``covered_rows`` holds the rows that any slice (good or corrupt)
    claimed.  The resilient decode paths conceal the remainder — a
    stream that *lost* slices (network drop, truncation surgery)
    rather than corrupted them.
    """
    covered = set(covered_rows)
    return [r for r in range(mb_height) if r not in covered]


def extract_macroblock(frame: Frame, mb_row: int, mb_col: int) -> np.ndarray:
    """Gather the (6, 8, 8) block stack of a macroblock (encoder side)."""
    y0 = mb_row * MACROBLOCK_SIZE
    x0 = mb_col * MACROBLOCK_SIZE
    cy0, cx0 = y0 // 2, x0 // 2
    out = np.empty((6, BLOCK_SIZE, BLOCK_SIZE), dtype=np.int32)
    luma = frame.y[y0 : y0 + 16, x0 : x0 + 16]
    out[0] = luma[:8, :8]
    out[1] = luma[:8, 8:]
    out[2] = luma[8:, :8]
    out[3] = luma[8:, 8:]
    out[4] = frame.cb[cy0 : cy0 + 8, cx0 : cx0 + 8]
    out[5] = frame.cr[cy0 : cy0 + 8, cx0 : cx0 + 8]
    return out


def prediction_blocks(pred: Prediction) -> np.ndarray:
    """The (6, 8, 8) block stack of a prediction (encoder residuals)."""
    out = np.empty((6, BLOCK_SIZE, BLOCK_SIZE), dtype=np.int32)
    out[0] = pred.y[:8, :8]
    out[1] = pred.y[:8, 8:]
    out[2] = pred.y[8:, :8]
    out[3] = pred.y[8:, 8:]
    out[4] = pred.cb
    out[5] = pred.cr
    return out
