"""Stall attribution: who waited, why, for how long.

The paper's Table 3 splits each process's time into execution and
synchronisation; Fig. 12 tracks the sync/exec ratio as workers are
added.  To reproduce that analysis on *both* of this repo's parallel
decoders — the SMP simulator (virtual cycles) and the real
multiprocessing pipeline (wall seconds) — every blocking wait records
a :class:`StallRecord` ``(waiter, reason, duration)`` into a
:class:`StallTable` under a **shared reason vocabulary**, so the
simulated Challenge and real silicon report the same
"% time in barrier / queue / pool-full" breakdown side by side.

Canonical reasons
-----------------
========================= ============================================
:data:`REASON_QUEUE_GET`  waiting for work (task/result queue empty;
                          mp worker idle between GOPs; parent blocked
                          on the completion queue)
:data:`REASON_QUEUE_PUT`  downstream queue full
:data:`REASON_POOL_SLOT`  frame-pool slot unavailable (bounded pool)
:data:`REASON_MERGE`      display-order merge holding an out-of-order
                          completion until its turn
:data:`REASON_BARRIER`    barrier wait (policy-imposed: the slice
                          decoder's picture barrier beyond any true
                          data dependency)
:data:`REASON_REF_PUBLISH` waiting for a reference (I/P) picture to be
                          decoded and published before a dependent
                          picture's slices may start
:data:`REASON_LOCK`       contended mutex acquire
:data:`REASON_CONDITION`  generic condition wait (unclassified)
:data:`REASON_DEGRADE_DROP_B`   overload degradation dropped pending
                          B-picture tasks (duration = the deadline
                          debt that triggered the drop)
:data:`REASON_DEGRADE_SKIP_GOP` overload degradation skipped whole
                          pending GOPs (duration = the deadline debt
                          that triggered the skip)
:data:`REASON_DEGRADE_SWITCH_RUNG` overload degradation downshifted a
                          session to a cheaper ABR rung ahead of any
                          picture shedding (duration = the deadline
                          debt that triggered the switch)
:data:`REASON_ADMISSION`  a session sat in the admission queue before
                          a slot opened (multi-stream serve layer)
:data:`REASON_CONCEAL_TEMPORAL` a lost or corrupt slice was concealed
                          from the co-located rows of a previous
                          picture (duration = concealment work time)
:data:`REASON_CONCEAL_SPATIAL` a lost or corrupt slice was concealed
                          spatially (row-copy from the row above; used
                          when no earlier picture exists, e.g. an
                          I-picture at stream start)
========================= ============================================

Durations are unit-agnostic (the table never mixes sources): the
simulator records cycles, the mp pipeline seconds.  ``breakdown()``
normalises to fractions of a caller-supplied total, which is where the
two become directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

REASON_QUEUE_GET = "queue.get"
REASON_QUEUE_PUT = "queue.put"
REASON_POOL_SLOT = "pool.slot"
REASON_MERGE = "merge.reorder"
REASON_BARRIER = "barrier"
REASON_REF_PUBLISH = "ref.publish"
REASON_LOCK = "lock"
REASON_CONDITION = "condition"
REASON_DEGRADE_DROP_B = "degrade.drop_b"
REASON_DEGRADE_SKIP_GOP = "degrade.skip_gop"
REASON_DEGRADE_SWITCH_RUNG = "degrade.switch_rung"
REASON_ADMISSION = "degrade.admission_wait"
REASON_CONCEAL_TEMPORAL = "conceal.temporal"
REASON_CONCEAL_SPATIAL = "conceal.spatial"

#: Every reason either decoder may report (the shared vocabulary).
CANONICAL_REASONS = (
    REASON_QUEUE_GET,
    REASON_QUEUE_PUT,
    REASON_POOL_SLOT,
    REASON_MERGE,
    REASON_BARRIER,
    REASON_REF_PUBLISH,
    REASON_LOCK,
    REASON_CONDITION,
    REASON_DEGRADE_DROP_B,
    REASON_DEGRADE_SKIP_GOP,
    REASON_DEGRADE_SWITCH_RUNG,
    REASON_ADMISSION,
    REASON_CONCEAL_TEMPORAL,
    REASON_CONCEAL_SPATIAL,
)


def record_concealment(
    table: "StallTable",
    waiter: str,
    temporal: int,
    spatial: int,
    seconds: float,
) -> None:
    """Attribute a concealment sweep's wall time to the conceal reasons.

    One sweep may mix policies (temporal rows and spatial rows of the
    same picture); the measured duration is split proportionally to the
    row counts so ``conceal.temporal`` / ``conceal.spatial`` totals stay
    additive across pictures.
    """
    total = temporal + spatial
    if total == 0:
        return
    if temporal:
        table.record(
            waiter, REASON_CONCEAL_TEMPORAL, seconds * temporal / total
        )
    if spatial:
        table.record(
            waiter, REASON_CONCEAL_SPATIAL, seconds * spatial / total
        )


@dataclass(frozen=True)
class StallRecord:
    """One blocking wait: who, why, how long (cycles or seconds)."""

    waiter: str
    reason: str
    duration: float


class StallTable:
    """Accumulates stall durations keyed by (waiter, reason)."""

    def __init__(self) -> None:
        self._totals: dict[tuple[str, str], float] = {}
        self._counts: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def record(self, waiter: str, reason: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative stall duration: {duration}")
        key = (waiter, reason)
        self._totals[key] = self._totals.get(key, 0.0) + duration
        self._counts[key] = self._counts.get(key, 0) + 1

    def merge(self, snap: dict) -> None:
        """Fold a peer's :meth:`snapshot` in (mp worker -> parent)."""
        for waiter, reasons in snap.items():
            for reason, cell in reasons.items():
                key = (waiter, reason)
                self._totals[key] = self._totals.get(key, 0.0) + cell["total"]
                self._counts[key] = self._counts.get(key, 0) + cell["count"]

    # ------------------------------------------------------------------
    def total(self, reason: str | None = None) -> float:
        """Summed stall time, optionally restricted to one reason."""
        return sum(
            t
            for (_, r), t in self._totals.items()
            if reason is None or r == reason
        )

    def by_reason(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for (_, reason), t in self._totals.items():
            out[reason] = out.get(reason, 0.0) + t
        return out

    def waiters(self) -> list[str]:
        return sorted({w for (w, _) in self._totals})

    def snapshot(self) -> dict:
        """JSON-able nested view: waiter -> reason -> {total, count}."""
        out: dict[str, dict[str, dict]] = {}
        for (waiter, reason), t in sorted(self._totals.items()):
            out.setdefault(waiter, {})[reason] = {
                "total": t,
                "count": self._counts[(waiter, reason)],
            }
        return out

    # ------------------------------------------------------------------
    def breakdown(self, total_time: float) -> dict[str, float]:
        """Fraction of ``total_time`` stalled, per reason.

        ``total_time`` is the denominator the percentages are quoted
        against — e.g. ``finish_cycles * processes`` for the simulator
        or ``wall_seconds * processes`` for the mp pipeline.  The
        denominator is floored at the summed stall time, so the
        returned fractions always sum to <= 1.0 even if the caller
        underestimates the wall.
        """
        if total_time < 0:
            raise ValueError(f"negative total_time: {total_time}")
        per_reason = self.by_reason()
        denom = max(total_time, sum(per_reason.values()))
        if denom == 0:
            return {reason: 0.0 for reason in per_reason}
        return {reason: t / denom for reason, t in per_reason.items()}

    def __bool__(self) -> bool:
        return bool(self._totals)


def format_stall_breakdown(
    breakdown: dict[str, float], title: str = "stall breakdown"
) -> str:
    """Render a reason -> fraction map as a monospace table."""
    from repro.analysis.report import TextTable

    table = TextTable(["reason", "% of time"], title=title)
    for reason in sorted(breakdown, key=lambda r: -breakdown[r]):
        table.add_row(reason, f"{100.0 * breakdown[reason]:.2f}%")
    table.add_row("(total)", f"{100.0 * sum(breakdown.values()):.2f}%")
    return table.render()
