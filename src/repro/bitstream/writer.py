"""MSB-first bit writer used by the encoder.

The writer accumulates bits into a ``bytearray``.  MPEG bit order is
most-significant-bit first within each byte; start codes must land on
byte boundaries, which :meth:`BitWriter.align` guarantees by zero
padding (the MPEG-2 spec pads with zero bits before start codes).
"""

from __future__ import annotations


class BitWriter:
    """Accumulate an MSB-first bit string into bytes.

    The writer keeps a partial-byte accumulator; bytes are flushed into
    the backing ``bytearray`` as they fill.  ``getvalue()`` may be
    called at any byte-aligned point (call :meth:`align` first if the
    stream may be mid-byte).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0          # bits accumulated, MSB side first
        self._nacc = 0         # number of valid bits in _acc (0..7)

    # ------------------------------------------------------------------
    # core emission
    # ------------------------------------------------------------------
    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value``, MSB first.

        ``nbits`` may be 0 (no-op).  ``value`` must be a non-negative
        integer that fits in ``nbits`` bits.
        """
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        acc = (self._acc << nbits) | value
        n = self._nacc + nbits
        buf = self._buf
        while n >= 8:
            n -= 8
            buf.append((acc >> n) & 0xFF)
        self._acc = acc & ((1 << n) - 1)
        self._nacc = n

    def write_bit(self, bit: int) -> None:
        """Write a single bit (0 or 1)."""
        self.write_bits(bit & 1, 1)

    def write_string(self, bits: str) -> None:
        """Write a literal bit string such as ``"0000110"``.

        Convenient for VLC codewords, which are naturally expressed as
        strings of ``0``/``1`` characters.
        """
        if bits:
            self.write_bits(int(bits, 2), len(bits))

    def write_signed(self, value: int, nbits: int) -> None:
        """Write a two's-complement signed value in ``nbits`` bits."""
        lo = -(1 << (nbits - 1))
        hi = (1 << (nbits - 1)) - 1
        if not lo <= value <= hi:
            raise ValueError(f"signed value {value} does not fit in {nbits} bits")
        self.write_bits(value & ((1 << nbits) - 1), nbits)

    # ------------------------------------------------------------------
    # alignment and start codes
    # ------------------------------------------------------------------
    @property
    def bit_position(self) -> int:
        """Total number of bits written so far."""
        return len(self._buf) * 8 + self._nacc

    @property
    def is_aligned(self) -> bool:
        """True when the next bit written starts a new byte."""
        return self._nacc == 0

    def align(self) -> None:
        """Zero-pad to the next byte boundary (no-op if aligned)."""
        if self._nacc:
            self.write_bits(0, 8 - self._nacc)

    def write_start_code(self, code: int) -> None:
        """Emit a byte-aligned MPEG start code ``00 00 01 <code>``."""
        if not 0 <= code <= 0xFF:
            raise ValueError(f"start code value out of range: {code}")
        self.align()
        self._buf.extend((0x00, 0x00, 0x01, code))

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def getvalue(self) -> bytes:
        """Return the bytes written so far.

        Raises if the stream is not byte-aligned: emitting a partial
        byte would silently drop bits.
        """
        if self._nacc:
            raise ValueError(
                "bit stream not byte aligned; call align() before getvalue()"
            )
        return bytes(self._buf)

    def __len__(self) -> int:
        """Number of whole bytes flushed so far."""
        return len(self._buf)
