"""``repro.obs`` — the unified observability layer.

Three always-compiled-in facilities, wired through every decode path
(scalar, batched, real-multiprocessing, simulated SMP):

* :mod:`repro.obs.trace` — a span/event tracer with a near-zero-cost
  disabled path, emitting Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``).  Worker processes write shards the parent
  merges into one timeline — the paper's Fig. 5 per-process
  utilisation plot, on real silicon.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  with JSON snapshots (``--stats``), mergeable across processes.
* :mod:`repro.obs.stalls` — stall attribution under a canonical
  reason vocabulary shared by the SMP simulator (cycles) and the mp
  pipeline (seconds), so simulated and real "% time blocked"
  breakdowns are directly comparable (paper Table 3).

PR-8 extends the layer across the socket boundary:

* :mod:`repro.obs.propagate` — trace/session ids, the clock-offset
  handshake and merging of client+server trace shards into one
  end-to-end timeline with per-picture spans.
* :mod:`repro.obs.export` — Prometheus text-exposition exporter on a
  stdlib HTTP side port, plus the matching parser for tests/CI.
* :mod:`repro.obs.slo` — declarative per-session objectives evaluated
  online with burn-rate accounting.
* :mod:`repro.obs.flightrec` — always-on bounded per-session event
  rings, dumped as JSON when a session fails, cancels or burns out.
"""

from repro.obs.export import (
    MetricsExporter,
    parse_exposition,
    render_exposition,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.propagate import (
    ClockSync,
    TraceJoinError,
    merge_traces,
    new_trace_id,
    validate_joins,
    waterfall,
)
from repro.obs.slo import SLOPolicy, SLOTracker

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)
from repro.obs.stalls import (
    CANONICAL_REASONS,
    REASON_BARRIER,
    REASON_CONCEAL_SPATIAL,
    REASON_CONCEAL_TEMPORAL,
    REASON_CONDITION,
    REASON_LOCK,
    REASON_MERGE,
    REASON_POOL_SLOT,
    REASON_QUEUE_GET,
    REASON_QUEUE_PUT,
    REASON_REF_PUBLISH,
    StallRecord,
    StallTable,
    format_stall_breakdown,
    record_concealment,
)
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    to_chrome,
    trace_complete,
    trace_counter,
    trace_instant,
    trace_span,
    tracing_enabled,
    validate_chrome_trace,
)

__all__ = [
    "MetricsExporter",
    "parse_exposition",
    "render_exposition",
    "FlightRecorder",
    "ClockSync",
    "TraceJoinError",
    "merge_traces",
    "new_trace_id",
    "validate_joins",
    "waterfall",
    "SLOPolicy",
    "SLOTracker",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
    "CANONICAL_REASONS",
    "REASON_BARRIER",
    "REASON_CONCEAL_SPATIAL",
    "REASON_CONCEAL_TEMPORAL",
    "REASON_CONDITION",
    "REASON_LOCK",
    "REASON_MERGE",
    "REASON_POOL_SLOT",
    "REASON_QUEUE_GET",
    "REASON_QUEUE_PUT",
    "REASON_REF_PUBLISH",
    "StallRecord",
    "StallTable",
    "format_stall_breakdown",
    "record_concealment",
    "NULL_SPAN",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "to_chrome",
    "trace_complete",
    "trace_counter",
    "trace_instant",
    "trace_span",
    "tracing_enabled",
    "validate_chrome_trace",
]
