"""Per-stream session state for the multi-stream decode service.

A :class:`StreamSession` owns everything one client's stream needs
inside the service: the scan products (index + coding-order
:class:`~repro.parallel.mp_slice.PicturePlan` records), the task
decomposition handed to the scheduler (reference-pictures-per-GOP +
one task per B picture), the display-order reorder buffer, the
wall-clock deadline pacer, the degradation state machine, and the
emission/drop accounting that ends up in the service report.

Scan failures (corrupt headers, open GOPs, missing references) raise
at construction; :meth:`StreamSession.failed` wraps that into a
terminal session record so the service can *contain* a poisoned
stream instead of dying with it.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.index import build_index, sequence_prefix
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.parallel.mp import FrameLayout
from repro.parallel.mp_slice import DisplayMerger, PicturePlan, scan_slice_tasks
from repro.parallel.pacing import WallClockPacer
from repro.serve.degrade import DegradePolicy, DegradeState
from repro.serve.scheduler import ServeTask


class SessionStatus(str, Enum):
    PENDING = "pending"    # submitted, not yet admitted by the scheduler
    QUEUED = "queued"      # waiting for a capacity slot
    ACTIVE = "active"      # decoding
    DONE = "done"          # every picture emitted or deliberately dropped
    FAILED = "failed"      # contained per-session error
    REJECTED = "rejected"  # admission control turned it away
    CANCELLED = "cancelled"  # client went away; remaining work shed


class StreamSession:
    """One client stream multiplexed onto the shared worker pool."""

    def __init__(
        self,
        name: str,
        data: bytes,
        weight: float = 1.0,
        resilient: bool = False,
        fps: float | None = None,
        preroll_pictures: int = 0,
        policy: DegradePolicy | None = None,
        slo_policy: SLOPolicy | None = None,
        start_gop: int = 0,
        rungs: list[bytes] | None = None,
        rung_level: int = 0,
    ) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.name = name
        self.data = data
        self.weight = weight
        self.resilient = resilient
        # The scan step — may raise DecodeError; the service catches
        # and turns it into a FAILED session (corrupt-input
        # containment).
        self.index = build_index(data)
        # Mid-stream join: admit at the next closed GOP at/after
        # ``start_gop`` and decode the tail *substream* (sequence
        # prefix + remaining GOP bytes).  Because no coded state
        # crosses a closed-GOP boundary, every picture of the tail is
        # bit-identical to the same picture of a linear decode — the
        # join is exact, and all downstream machinery (plans, merger,
        # shared-pool meta) sees an ordinary stream.  join_point
        # raises StreamIndexError past EOF (contained like any other
        # scan failure).
        self.join_gop = 0
        self.join_display_base = 0
        if start_gop:
            join = self.index.join_point(start_gop)
            self.join_gop = join
            self.join_display_base = self.index.gop_display_base(join)
            tail = (
                sequence_prefix(data, self.index)
                + data[self.index.gops[join].start_offset :]
            )
            self.data = tail
            self.index = build_index(tail)
        self.seq = self.index.sequence_header
        self.layout = FrameLayout.for_display(self.seq.width, self.seq.height)
        self.plans: list[PicturePlan] = scan_slice_tasks(self.index)
        self.merger = DisplayMerger(len(self.plans))
        self.pacer = WallClockPacer(
            rate_hz=fps, preroll_pictures=preroll_pictures
        )
        self.degrade = DegradeState(policy or DegradePolicy())
        #: Online SLO evaluation of emit-time deadlines; only tracked
        #: when the service declared objectives AND the session is
        #: paced (no deadlines, nothing to evaluate).
        self.slo = (
            SLOTracker(slo_policy, session=name)
            if slo_policy is not None and fps is not None
            else None
        )
        #: one burnout flight-dump per session, not one per picture
        self.slo_dumped = False
        # -- ABR rung ladder -------------------------------------------
        #: Cheaper encodings of the same content, descending cost; the
        #: ``switch_rung`` degrade action consumes the head of this
        #: list by handing the not-yet-started tail of the stream to a
        #: continuation session decoding that rung (mid-stream join).
        self.rungs: list[bytes] = list(rungs or [])
        self.rung_level = rung_level
        #: Coding orders handed off to a rung continuation (their
        #: pictures are emitted *there*, not here).
        self.switched_orders: set[int] = set()
        self.switched_pictures = 0
        #: Name of the continuation session, once a switch happened.
        self.continuation: str | None = None
        self.status = SessionStatus.PENDING
        self.error: dict | None = None
        #: Work counters (sequential-oracle parity): GOP + picture
        #: header charges land here upfront, slice work as results
        #: arrive.
        self.counters = WorkCounters()
        self._charge_base_counters()
        # -- accounting ------------------------------------------------
        self.emitted_pictures = 0
        self.dropped_pictures = 0
        self.skipped_gops = 0
        self.dropped_b_tasks = 0
        self.admitted_at: float | None = None
        self.queued_at: float | None = None
        #: orders decoded but not yet pushed through the merger is not
        #: tracked here — the merger is the single source of truth.

    # ------------------------------------------------------------------
    def _charge_base_counters(self) -> None:
        """GOP + picture header work (the scan/parent's share)."""
        for gop in self.index.gops:
            self.counters.headers += 1
            self.counters.bits += (
                gop.header_payload_end - gop.header_payload_start + 4
            ) * 8
        for plan in self.plans:
            self.counters.headers += 1
            self.counters.bits += plan.header_bits

    # ------------------------------------------------------------------
    @classmethod
    def failed(cls, name: str, error: BaseException) -> "StreamSession":
        """A terminal session record for a stream that failed to scan."""
        sess = cls.__new__(cls)
        sess.name = name
        sess.data = b""
        sess.weight = 1.0
        sess.resilient = False
        sess.join_gop = 0
        sess.join_display_base = 0
        sess.index = None
        sess.seq = None
        sess.layout = None
        sess.plans = []
        sess.merger = DisplayMerger(0)
        sess.pacer = WallClockPacer(rate_hz=None)
        sess.degrade = DegradeState(DegradePolicy())
        sess.slo = None
        sess.slo_dumped = False
        sess.rungs = []
        sess.rung_level = 0
        sess.switched_orders = set()
        sess.switched_pictures = 0
        sess.continuation = None
        sess.status = SessionStatus.FAILED
        sess.error = {
            "type": type(error).__name__,
            "message": str(error),
        }
        sess.counters = WorkCounters()
        sess.emitted_pictures = 0
        sess.dropped_pictures = 0
        sess.skipped_gops = 0
        sess.dropped_b_tasks = 0
        sess.admitted_at = None
        sess.queued_at = None
        return sess

    # ------------------------------------------------------------------
    @property
    def picture_count(self) -> int:
        return len(self.plans)

    @property
    def terminal(self) -> bool:
        return self.status in (
            SessionStatus.DONE,
            SessionStatus.FAILED,
            SessionStatus.REJECTED,
            SessionStatus.CANCELLED,
        )

    def fail(self, error: BaseException | dict) -> None:
        self.status = SessionStatus.FAILED
        if isinstance(error, dict):
            self.error = error
        else:
            self.error = {
                "type": type(error).__name__,
                "message": str(error),
            }

    # ------------------------------------------------------------------
    def tasks(self, grain: str = "fine") -> list[ServeTask]:
        """The scheduler decomposition, at a chosen grain.

        ``"fine"`` (default, the historical decomposition): per-GOP
        reference task + one task per B-picture, the B depending on
        its own GOP's reference task (closed GOPs guarantee both
        references live there).  Every picture appears in exactly one
        task.

        ``"coarse"``: one task per GOP carrying every picture in
        coding order, kind ``"ref"``, no deps — fewer scheduler
        messages and no intra-GOP synchronization, at the cost that
        the ``drop_b`` degrade action has no standalone B tasks to
        shed (a documented tradeoff of the coarse grain; ``skip_gop``
        still applies).
        """
        if grain not in ("fine", "coarse"):
            raise ValueError(
                f"unknown task grain {grain!r}; expected 'fine' or 'coarse'"
            )
        out: list[ServeTask] = []
        by_gop: dict[int, list[PicturePlan]] = {}
        for plan in self.plans:
            by_gop.setdefault(plan.gop, []).append(plan)
        if grain == "coarse":
            for gop in sorted(by_gop):
                plans = by_gop[gop]
                out.append(
                    ServeTask(
                        session=self.name,
                        key=("ref", gop),
                        kind="ref",
                        gop=gop,
                        orders=tuple(p.order for p in plans),
                    )
                )
            return out
        for gop in sorted(by_gop):
            plans = by_gop[gop]
            refs = tuple(p.order for p in plans if p.is_reference)
            ref_key = ("ref", gop)
            if refs:
                out.append(
                    ServeTask(
                        session=self.name,
                        key=ref_key,
                        kind="ref",
                        gop=gop,
                        orders=refs,
                    )
                )
            for p in plans:
                if p.is_reference:
                    continue
                out.append(
                    ServeTask(
                        session=self.name,
                        key=("b", gop, p.order),
                        kind="b",
                        gop=gop,
                        orders=(p.order,),
                        deps=(ref_key,) if refs else (),
                    )
                )
        return out

    # ------------------------------------------------------------------
    # display-side bookkeeping
    # ------------------------------------------------------------------
    def push_decoded(self, orders: tuple[int, ...]) -> list[tuple[int, bool]]:
        """Bank decoded pictures; return the display-ready run.

        Returns ``(order, dropped)`` pairs in display order (``dropped``
        is always False here).
        """
        ready: list[tuple[int, bool]] = []
        for order in orders:
            plan = self.plans[order]
            ready.extend(self.merger.push(plan.display_index, (order, False)))
        return ready

    def push_dropped(self, orders: tuple[int, ...]) -> list[tuple[int, bool]]:
        """Bank deliberately-shed pictures as drop markers."""
        ready: list[tuple[int, bool]] = []
        for order in orders:
            plan = self.plans[order]
            ready.extend(self.merger.push(plan.display_index, (order, True)))
        return ready

    @property
    def display_done(self) -> bool:
        return self.merger.done

    def iter_display_indices(self) -> Iterator[int]:  # pragma: no cover
        yield from range(self.picture_count)

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """JSON-able summary for the service report / CLI table."""
        doc = {
            "session": self.name,
            "status": self.status.value,
            "weight": self.weight,
            "pictures": self.picture_count,
            "emitted": self.emitted_pictures,
            "dropped_pictures": self.dropped_pictures,
            "dropped_b_tasks": self.dropped_b_tasks,
            "skipped_gops": self.skipped_gops,
            "degrade": self.degrade.snapshot(),
            "deadline": self.pacer.summary() if self.pacer.enabled else None,
        }
        if self.join_gop:
            doc["join_gop"] = self.join_gop
            doc["join_display_base"] = self.join_display_base
        if self.rung_level or self.switched_pictures or self.continuation:
            doc["rung_level"] = self.rung_level
            doc["switched_pictures"] = self.switched_pictures
            doc["continuation"] = self.continuation
        if self.slo is not None:
            doc["slo"] = self.slo.snapshot()
        if self.error is not None:
            doc["error"] = self.error
        return doc
