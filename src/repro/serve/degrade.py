"""Overload degradation policy: shed work before missing everything.

A real-time decode service past saturation has exactly two honest
options: shed load or fall behind on *every* deadline.  MPEG-2's
picture-type hierarchy gives a principled shedding order (the same
dependency structure Mastronarde et al. exploit in their MDP
scheduler, and the one the improved slice barrier is built on):

=======  ==========================  ================================
level    action                      why it is safe
=======  ==========================  ================================
0        decode everything           —
0        ``switch_rung``: downshift  a lower-resolution rung of the
         the session to a cheaper    same content is a *complete*
         ABR rung (opt-in, fires     decode, not a partial one; every
         before any picture is       picture is still emitted
         shed)
1        ``drop_b``: shed pending    B pictures are never reference
         B-picture tasks, a couple   pictures; nothing downstream
         of GOPs at a time           decodes from them
2        ``skip_gop``: drop whole    closed GOPs carry no state
         not-yet-started GOPs        across their boundary
=======  ==========================  ================================

The rung switch is the ABR ladder move of the VVC embedded-decoder
line of work recast as a degrade action: when a per-rung cost profile
says a cheaper encoding of the same stream exists, switching to it is
strictly kinder than dropping B pictures, so it is tried first.  It
fires at most once per session (there is no upshift path), only when
the policy opts in via ``switch_rung_after``.

:class:`DegradeState` is a tiny hysteresis machine driven by the
per-picture deadline verdicts from
:class:`repro.parallel.pacing.WallClockPacer`: consecutive misses
escalate, consecutive on-time emissions de-escalate.  It is pure logic
(no clock, no scheduler) so the property suite can sweep it; the
service wires its actions to
:meth:`repro.serve.scheduler.Scheduler.drop_b_tasks` /
:meth:`~repro.serve.scheduler.Scheduler.skip_next_gop` and records the
shed work under the ``degrade.*`` stall reasons in
:mod:`repro.obs.stalls`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Actions a :class:`DegradeState` can request.
ACTION_SWITCH_RUNG = "switch_rung"
ACTION_DROP_B = "drop_b"
ACTION_SKIP_GOP = "skip_gop"


@dataclass(frozen=True)
class DegradePolicy:
    """Thresholds for the degradation state machine.

    ``drop_b_after`` consecutive deadline misses enter level 1 (and
    every further ``drop_b_after``-miss run at level 1 sheds B tasks
    of ``drop_b_gops`` more GOPs); ``skip_gop_after`` further misses
    escalate to level 2, where each ``drop_b_after``-miss run skips
    one whole unstarted GOP.  ``recover_after`` consecutive on-time
    pictures step one level back down.
    """

    drop_b_after: int = 3
    skip_gop_after: int = 6
    recover_after: int = 8
    #: GOPs whose pending B tasks one ``drop_b`` action sheds.
    drop_b_gops: int = 2
    #: Consecutive misses before a one-shot ``switch_rung`` downshift.
    #: ``None`` disables the ABR rung (default: pure shed policy).
    #: When enabled it must not exceed ``drop_b_after`` so the ladder
    #: move always precedes the first shed.
    switch_rung_after: int | None = None

    def __post_init__(self) -> None:
        if self.drop_b_after < 1:
            raise ValueError("drop_b_after must be >= 1")
        if self.switch_rung_after is not None:
            if self.switch_rung_after < 1:
                raise ValueError("switch_rung_after must be >= 1")
            if self.switch_rung_after > self.drop_b_after:
                raise ValueError(
                    "switch_rung_after must be <= drop_b_after "
                    "(the rung switch must fire before drop_b)"
                )
        if self.skip_gop_after < 1:
            raise ValueError("skip_gop_after must be >= 1")
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")
        if self.drop_b_gops < 1:
            raise ValueError("drop_b_gops must be >= 1")


@dataclass
class DegradeState:
    """Per-session hysteresis machine over deadline verdicts."""

    policy: DegradePolicy = field(default_factory=DegradePolicy)
    level: int = field(default=0, init=False)
    miss_streak: int = field(default=0, init=False)
    hit_streak: int = field(default=0, init=False)
    #: Action counters (also mirrored into the metrics registry by the
    #: service): how many times each action fired.
    drop_b_actions: int = field(default=0, init=False)
    skip_gop_actions: int = field(default=0, init=False)
    switch_rung_actions: int = field(default=0, init=False)
    #: One-shot latch: a session downshifts its rung at most once.
    rung_switched: bool = field(default=False, init=False)
    #: Every action fired, in firing order — the benchmark gate asserts
    #: ``switch_rung`` precedes ``drop_b`` from this record.
    actions: list[str] = field(default_factory=list, init=False)
    #: High-water mark of the degradation level.
    max_level: int = field(default=0, init=False)

    def _fire(self, action: str) -> str:
        self.actions.append(action)
        return action

    def on_emit(self, late: bool) -> str | None:
        """Feed one picture's deadline verdict; maybe return an action.

        Returns :data:`ACTION_SWITCH_RUNG`, :data:`ACTION_DROP_B`,
        :data:`ACTION_SKIP_GOP`, or ``None``.
        """
        p = self.policy
        if not late:
            self.hit_streak += 1
            self.miss_streak = 0
            if self.level > 0 and self.hit_streak >= p.recover_after:
                self.level -= 1
                self.hit_streak = 0
            return None
        self.miss_streak += 1
        self.hit_streak = 0
        if self.level == 0:
            if (
                p.switch_rung_after is not None
                and not self.rung_switched
                and self.miss_streak >= p.switch_rung_after
            ):
                # ABR ladder first: a cheaper complete decode beats any
                # shed.  Resetting the miss streak guarantees drop_b
                # needs a further full run of misses, so the rung
                # switch always precedes the first shed action.
                self.rung_switched = True
                self.miss_streak = 0
                self.switch_rung_actions += 1
                return self._fire(ACTION_SWITCH_RUNG)
            if self.miss_streak >= p.drop_b_after:
                self.level = 1
                self.max_level = max(self.max_level, self.level)
                self.miss_streak = 0
                self.drop_b_actions += 1
                return self._fire(ACTION_DROP_B)
            return None
        if self.level == 1:
            if self.miss_streak >= p.skip_gop_after:
                self.level = 2
                self.max_level = max(self.max_level, self.level)
                self.miss_streak = 0
                self.skip_gop_actions += 1
                return self._fire(ACTION_SKIP_GOP)
            if self.miss_streak % p.drop_b_after == 0:
                self.drop_b_actions += 1
                return self._fire(ACTION_DROP_B)
            return None
        # level 2: keep skipping ahead while the misses keep coming.
        if self.miss_streak >= p.drop_b_after:
            self.miss_streak = 0
            self.skip_gop_actions += 1
            return self._fire(ACTION_SKIP_GOP)
        return None

    def snapshot(self) -> dict:
        return {
            "level": self.level,
            "max_level": self.max_level,
            "drop_b_actions": self.drop_b_actions,
            "skip_gop_actions": self.skip_gop_actions,
            "switch_rung_actions": self.switch_rung_actions,
            "actions": list(self.actions),
        }
