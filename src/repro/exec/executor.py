"""The unified executor: one front end over every decode path.

:class:`TaskGraphExecutor` is what ``decode --grain ... --engine ...``
runs: it plans a typed task graph (:mod:`repro.exec.plan`) for
accounting, asks :class:`~repro.exec.auto.AutoGranularity` for a
``(grain, engine)`` decision when either axis is ``auto``, and then
drives the decode through the existing planners — ``MPGopDecoder``
for GOP grain, ``MPSliceDecoder`` for slice grain — both of which are
themselves thin layers over the shared worker-pool backend
(:mod:`repro.exec.backend`).

Online re-pick: with ``grain="auto"`` the stream is executed in
windows of ``repick_gops`` closed GOPs.  Each window is decoded as a
stand-alone substream (sequence-header prefix + the window's GOP byte
range — bit-exact by the closed-GOP argument that already underwrites
the mp decoder), the planner's observed stall table is summarized
into an :class:`~repro.exec.auto.ObsSnapshot`, and the controller
re-picks at the GOP boundary.  Every decision — initial and re-pick —
is traced as an ``exec.plan`` span carrying the chosen grain/engine
*and the rejected alternative's estimated cost*, and counted in the
``exec.plan.*`` metrics.

Engine semantics: the engine choice selects the substream decode
engine at GOP grain.  At slice grain the two-phase slice machinery is
inherently the batched path (bit-identical output regardless), so the
engine decision is recorded in the plan as a cost-model hint rather
than switching kernels — the differential matrix pins that every
combination still matches the scalar oracle exactly.

Bit-exactness contract (pinned by ``tests/exec/test_exec_parity.py``):
frames *and* aggregate work counters equal
``SequenceDecoder(data).decode_all()`` for every grain / engine /
worker combination.  Window substreams re-include the sequence-header
prefix, which contributes zero to the work counters, so per-window
counter sums equal the linear decode's — the same argument the
per-GOP mp parity already rests on.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

from repro.exec.auto import AutoGranularity, CostModel, Decision, ObsSnapshot
from repro.exec.graph import TaskGraph
from repro.exec.plan import plan_graph
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.frame import Frame
from repro.mpeg2.index import StreamIndex, build_index, sequence_prefix
from repro.obs.metrics import metrics
from repro.obs.stalls import StallTable
from repro.obs.trace import trace_complete, trace_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.bandwidth import BandwidthProfile

GRAIN_CHOICES = ("auto", "gop", "slice")
ENGINE_CHOICES = ("auto", "scalar", "batched")

#: Default re-pick window: decisions are revisited every this many
#: closed GOPs (a GOP boundary is the only safe re-plan point).
DEFAULT_REPICK_GOPS = 4


def _trace_decision(decision: Decision, window: int, gop: int) -> None:
    """Emit the ``exec.plan`` span + decision metrics for one choice."""
    now = time.monotonic_ns()
    trace_complete(
        "exec.plan", "exec", now, 0,
        window=window,
        gop=gop,
        grain=decision.grain,
        engine=decision.engine,
        est_cost=round(decision.est_cost, 6),
        alt_grain=decision.alt_grain,
        alt_engine=decision.alt_engine,
        alt_cost=round(decision.alt_cost, 6),
        reason=decision.reason,
    )
    reg = metrics()
    reg.counter(f"exec.plan.grain.{decision.grain}").inc()
    reg.counter(f"exec.plan.engine.{decision.engine}").inc()


class TaskGraphExecutor:
    """Decode a stream through the unified planner/backend split.

    Parameters
    ----------
    data:
        The complete coded stream.
    index:
        Optional pre-built scan index.
    grain:
        ``"gop"`` / ``"slice"`` pin the decomposition; ``"auto"``
        (default) lets :class:`AutoGranularity` choose per stream and
        re-pick at GOP boundaries from observed stage timings.
    engine:
        ``"scalar"`` / ``"batched"`` pin the substream decode engine;
        ``"auto"`` chooses from the cost model.
    workers:
        Same contract as the planners: ``0`` in-process, ``>= 1`` real
        worker processes, ``None`` = CPU count.
    mode:
        Slice-grain barrier policy (``"simple"`` | ``"improved"``),
        forwarded to ``MPSliceDecoder``.
    repick_gops:
        Window size (in closed GOPs) between auto re-pick points.
    """

    def __init__(
        self,
        data: bytes,
        index: StreamIndex | None = None,
        grain: str = "auto",
        engine: str = "auto",
        workers: int | None = None,
        mode: str = "improved",
        resilient: bool = False,
        start_method: str | None = None,
        repick_gops: int = DEFAULT_REPICK_GOPS,
        model: CostModel | None = None,
        _crash_gop: int | None = None,
        _crash_task: tuple[int, int] | None = None,
    ) -> None:
        if grain not in GRAIN_CHOICES:
            raise ValueError(
                f"unknown grain {grain!r}; expected one of {GRAIN_CHOICES}"
            )
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
            )
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if repick_gops < 1:
            raise ValueError(f"repick_gops must be >= 1, got {repick_gops}")
        self.data = data
        if index is not None:
            self.index = index
        else:
            t0 = time.perf_counter()
            with trace_span("mp.scan", cat="mp", bytes=len(data)):
                self.index = build_index(data)
            metrics().counter("mp.scan_ms").inc(
                (time.perf_counter() - t0) * 1e3
            )
        self.grain = grain
        self.engine = engine
        self.workers = workers
        self.mode = mode
        self.resilient = resilient
        self.start_method = start_method
        self.repick_gops = repick_gops
        self.model = model or CostModel()
        self._crash_gop = _crash_gop
        self._crash_task = _crash_task
        self.prefix = sequence_prefix(data, self.index)
        #: Every Decision this executor made, in order (first entry is
        #: the up-front pick; later entries are GOP-boundary re-picks).
        self.last_decisions: list[Decision] = []
        #: Accounting graphs for the executed segments (one per window
        #: in auto mode, one for the whole stream otherwise); each is
        #: conservation-verified after its segment completes.
        self.last_graphs: list[TaskGraph] = []
        #: Aggregate stall table + wall seconds across the run.
        self.last_stalls = StallTable()
        self.last_wall_seconds = 0.0

    # ------------------------------------------------------------------
    def _controller(self) -> AutoGranularity:
        from repro.analysis.bandwidth import profile_stream

        profile = profile_stream(self.data, index=self.index)
        return AutoGranularity(
            profile=profile,
            workers=self.workers,
            model=self.model,
            grain_hint=None if self.grain == "auto" else self.grain,
            engine_hint=None if self.engine == "auto" else self.engine,
        )

    def _gop_planner(self, data: bytes, engine: str, index=None):
        from repro.parallel.mp import MPGopDecoder

        return MPGopDecoder(
            data,
            index=index,
            workers=self.workers,
            engine=engine,
            resilient=self.resilient,
            start_method=self.start_method,
            _crash_gop=self._crash_gop,
        )

    def _slice_planner(self, data: bytes, index=None):
        from repro.parallel.mp_slice import MPSliceDecoder

        return MPSliceDecoder(
            data,
            index=index,
            workers=self.workers,
            mode=self.mode,
            resilient=self.resilient,
            start_method=self.start_method,
            _crash_task=self._crash_task,
        )

    def _account_segment(self, index: StreamIndex, grain: str) -> TaskGraph:
        """Build + drive the segment's typed task graph (accounting).

        The pixel work runs through the planner; the graph is the
        executor's explicit record of what that work *was* — typed
        nodes, ref edges, and the conservation counters the property
        suite audits.  ``run_all`` enforces dependency order
        structurally (dispatch refuses a node whose refs have not
        published), so a planner bug that reordered edges would raise
        here, not silently corrupt output.
        """
        graph = plan_graph(index, grain)
        graph.run_all()
        graph.verify_conservation()
        reg = metrics()
        for name, value in graph.counts().items():
            if value:
                reg.counter(f"exec.tasks.{name}").inc(value)
        self.last_graphs.append(graph)
        return graph

    def _fold_planner_obs(self, planner) -> None:
        self.last_stalls.merge(planner.last_stalls.snapshot())

    # ------------------------------------------------------------------
    def decode_all(self, counters: WorkCounters | None = None) -> list[Frame]:
        """Decode the whole stream to display-ordered frames.

        Bit-identical to ``SequenceDecoder(data).decode_all()`` —
        frames *and* aggregate work counters — for every grain /
        engine / workers combination.
        """
        self.last_decisions = []
        self.last_graphs = []
        self.last_stalls = StallTable()
        t_run = time.perf_counter()
        try:
            if self.grain == "auto":
                return self._decode_windowed(counters)
            return self._decode_fixed(counters)
        finally:
            self.last_wall_seconds = time.perf_counter() - t_run

    def _initial_decision(self) -> Decision:
        if self.grain != "auto" and self.engine != "auto":
            # Nothing to choose: record the pinned configuration so
            # traces and metrics still show what ran (alt == chosen).
            est = self.model.estimate(
                _cheap_profile(self.index, self.data),
                self.grain,
                self.engine,
                self.workers,
            )
            return Decision(
                grain=self.grain,
                engine=self.engine,
                est_cost=est,
                alt_grain=self.grain,
                alt_engine=self.engine,
                alt_cost=est,
                reason="fixed",
            )
        return self._controller().decide()

    def _decode_fixed(self, counters: WorkCounters | None) -> list[Frame]:
        """Pinned grain: one pass over the whole stream, zero overhead."""
        decision = self._initial_decision()
        self.last_decisions.append(decision)
        _trace_decision(decision, window=0, gop=0)
        self._account_segment(self.index, decision.grain)
        if decision.grain == "gop":
            planner = self._gop_planner(
                self.data, decision.engine, index=self.index
            )
        else:
            planner = self._slice_planner(self.data, index=self.index)
        frames = planner.decode_all(counters)
        self._fold_planner_obs(planner)
        return frames

    def _decode_windowed(self, counters: WorkCounters | None) -> list[Frame]:
        """Auto grain: windowed execution with GOP-boundary re-picks."""
        controller = self._controller()
        decision = controller.decide()
        self.last_decisions.append(decision)
        gops = self.index.gops
        frames: list[Frame] = []
        window = 0
        start = 0
        while start < len(gops):
            end = min(start + self.repick_gops, len(gops))
            _trace_decision(decision, window=window, gop=start)
            # The window substream: sequence-header prefix + the
            # contiguous GOP byte range.  Closed GOPs make this decode
            # bit-exact; the repeated prefix adds zero to counters.
            sub = bytes(self.prefix) + bytes(
                self.data[gops[start].start_offset : gops[end - 1].end_offset]
            )
            if decision.grain == "gop":
                planner = self._gop_planner(sub, decision.engine)
            else:
                planner = self._slice_planner(sub)
            self._account_segment(planner.index, decision.grain)
            frames.extend(planner.decode_all(counters))
            self._fold_planner_obs(planner)
            start = end
            window += 1
            if start < len(gops):
                snap = ObsSnapshot.from_run(
                    planner.last_stalls,
                    planner.last_wall_seconds,
                    pictures=planner.index.picture_count,
                )
                repicked = controller.repick(decision, snap)
                if (repicked.grain, repicked.engine) != (
                    decision.grain,
                    decision.engine,
                ):
                    metrics().counter("exec.plan.repick").inc()
                self.last_decisions.append(repicked)
                decision = repicked
        return frames

    # ------------------------------------------------------------------
    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of aggregate process time blocked, per reason
        (same denominator convention as the planners)."""
        procs = self.workers + 1 if self.workers else 1
        return self.last_stalls.breakdown(self.last_wall_seconds * procs)


def _cheap_profile(index: StreamIndex, data: bytes) -> "BandwidthProfile":
    """Profile for the pinned-configuration cost estimate.

    The full bandwidth profiler walks slices; for a fixed grain +
    engine the decision is already made and the estimate is purely
    informational, so the real profiler is still used — this exists
    only to keep the import local and the call site readable.
    """
    from repro.analysis.bandwidth import profile_stream

    return profile_stream(data, index=index)


def decode_auto(
    data: bytes,
    workers: int | None = None,
    grain: str = "auto",
    engine: str = "auto",
    resilient: bool = False,
    start_method: str | None = None,
) -> list[Frame]:
    """Convenience: decode through the unified executor."""
    return TaskGraphExecutor(
        data,
        grain=grain,
        engine=engine,
        workers=workers,
        resilient=resilient,
        start_method=start_method,
    ).decode_all()
