"""Wall-clock speedup of the real-process GOP-parallel decoder.

The empirical counterpart of the paper's Fig. 5 on real silicon: where
``bench_fig5_gop_speedup.py`` sweeps worker counts on the *simulated*
SGI Challenge, this harness runs :class:`repro.parallel.mp.MPGopDecoder`
— OS worker processes, shared-memory frame pool, display-order merger —
and measures actual wall-clock speedup over the sequential
``SequenceDecoder`` at 1/2/4/8 workers on the Table 1 matrix plus a
multi-GOP 352x240 headline stream.  Results go to
``BENCH_parallel.json`` at the repo root.

Reported per stream:

* sequential baseline (batched engine, best of N passes);
* the ``workers=0`` in-process pipeline (scan/merge overhead without
  processes);
* wall-clock seconds and speedup per worker count;
* the shared frame pool's allocated bytes (the Fig. 8 memory quantity,
  now measured on real shared memory).

The ``auto`` section compares ``--grain auto`` (the unified executor's
online auto-granularity) against every fixed (grain, engine)
configuration on the same streams: auto must match or beat the best
fixed configuration within :data:`AUTO_TOLERANCE` on every vector —
the committed acceptance bar ``perf_regression.py`` gates on.

Speedup is bounded by physical cores: the JSON records
``cpu_affinity`` and the pytest gate (``perf`` marker, never tier-1)
asserts the >= 1.8x @ 4-workers acceptance bar only when at least 4
cores are actually available — on smaller machines it records the
numbers and skips the assertion rather than failing on physics.

Run directly (``PYTHONPATH=src python benchmarks/perf_parallel.py``)
or via ``pytest benchmarks/perf_parallel.py -m perf``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict
from datetime import datetime, timezone
from time import perf_counter

import numpy as np
import pytest

from repro.mpeg2.decoder import SequenceDecoder
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder
from repro.video.streams import (
    TestStreamSpec,
    build_stream,
    paper_stream_matrix,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")

#: Worker-process counts swept per stream (paper Fig. 5 sweeps 1..14).
WORKER_COUNTS = (1, 2, 4, 8)

#: The headline case: the Table 1 352x240 row, 8 closed 13-picture GOPs
#: so an 8-worker pool has one GOP per worker.
HEADLINE_SPEC = TestStreamSpec(
    name="table1/352x240/gop13x8",
    width=352,
    height=240,
    gop_size=13,
    pictures=104,
    bit_rate=5_000_000,
)

#: Quarter-scale Table 1 matrix, 8 GOPs of 4 pictures per stream.
SMALL_MATRIX = paper_stream_matrix(pictures=32, resolution_divisor=4, gop_sizes=(4,))

#: Timed passes per configuration (minimum reported).
REPEATS = 3


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def bench_parallel_stream(
    spec: TestStreamSpec,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    repeats: int = REPEATS,
) -> dict[str, object]:
    """Sequential baseline + worker sweep for one stream."""
    data = build_stream(spec)

    sequential_s = _best_of(
        lambda: SequenceDecoder(data, engine="batched").decode_all(), repeats
    )
    fallback_s = _best_of(
        lambda: MPGopDecoder(data, workers=0).decode_all(), repeats
    )

    sweep: dict[str, dict[str, float]] = {}
    pool_bytes = 0
    for workers in worker_counts:
        decoder = MPGopDecoder(data, workers=workers)
        seconds = _best_of(decoder.decode_all, repeats)
        pool_bytes = decoder.last_pool_bytes
        sweep[str(workers)] = {
            "seconds": seconds,
            "pictures_per_sec": spec.pictures / seconds,
            "speedup_vs_sequential": sequential_s / seconds,
        }

    return {
        "spec": asdict(spec),
        "stream_bytes": len(data),
        "gops": spec.gop_count,
        "sequential_seconds": sequential_s,
        "sequential_pictures_per_sec": spec.pictures / sequential_s,
        "inprocess_fallback_seconds": fallback_s,
        "frame_pool_bytes": pool_bytes,
        "workers": sweep,
    }


def _traced_headline_obs(data: bytes, workers: int = 4) -> dict[str, object]:
    """One traced (untimed) mp run -> stall and utilization breakdowns.

    The empirical Table 3 analogue: the same canonical stall-reason
    vocabulary the simulator reports, measured on the real process
    pipeline, plus per-process busy fractions from the merged trace —
    so ``BENCH_parallel.json`` can answer "why is N-worker slower"
    from the log alone.
    """
    from repro.analysis.obs_report import (
        process_names,
        stall_breakdown,
        utilization,
    )
    from repro.obs.metrics import metrics, reset_metrics
    from repro.obs.trace import (
        disable_tracing,
        enable_tracing,
        get_tracer,
        to_chrome,
    )

    reset_metrics()
    enable_tracing(process_name="perf_parallel (scan+merge)")
    try:
        decoder = MPGopDecoder(data, workers=workers)
        decoder.decode_all()
        doc = to_chrome(get_tracer().events)
        names = process_names(doc)
        counters = metrics().snapshot()["counters"]
        return {
            "workers": workers,
            "stall_breakdown": decoder.stall_breakdown(),
            "trace_stall_breakdown": stall_breakdown(doc),
            # Dispatch cost: queue messages for the whole run (chunked
            # coalescing makes this ~2*workers instead of one per GOP)
            # and the cumulative parent/worker queue-wait seconds.
            "dispatch_messages": counters.get("mp.dispatch.messages", 0),
            "queue_get_stall_seconds": decoder.last_stalls.by_reason().get(
                "queue.get", 0.0
            ),
            "utilization": {
                names.get(pid, str(pid)): rec
                for pid, rec in utilization(doc).items()
            },
        }
    finally:
        disable_tracing()


#: The slice-decomposition stream: long multi-B GOPs, the structure
#: whose consecutive-B independence the improved barrier exploits
#: (paper Section 5.2).  Two GOPs keep the run short while still
#: crossing a GOP boundary.
SLICE_SPEC = TestStreamSpec(
    name="slice/176x120/gop13x2",
    width=176,
    height=120,
    gop_size=13,
    pictures=26,
    bit_rate=2_000_000,
)

#: Worker count for the GOP-vs-slice comparison (modest: the gating
#: behaviour, not raw speedup, is what this section measures).
SLICE_WORKERS = 2


def bench_slice_decompositions(
    spec: TestStreamSpec = SLICE_SPEC,
    workers: int = SLICE_WORKERS,
    repeats: int = REPEATS,
) -> dict[str, object]:
    """GOP vs slice-simple vs slice-improved on one multi-B stream.

    The empirical Section 5.2 comparison: same stream, same worker
    count, three task decompositions.  Alongside wall-clock each slice
    variant reports its cumulative per-reason stall seconds — the
    acceptance criterion is that the improved policy's ``barrier``
    time is *strictly below* simple's (it is zero by construction: its
    only gate is reference publication).
    """
    from repro.obs.stalls import REASON_BARRIER, REASON_REF_PUBLISH

    data = build_stream(spec)
    sequential_s = _best_of(
        lambda: SequenceDecoder(data, engine="batched").decode_all(), repeats
    )

    def measure(make):
        seconds, by_reason, pool = [], None, 0
        for _ in range(repeats):
            dec = make()
            t0 = perf_counter()
            dec.decode_all()
            seconds.append(perf_counter() - t0)
            by_reason = dec.last_stalls.by_reason()
            pool = dec.last_pool_bytes
        return {
            "seconds": min(seconds),
            "speedup_vs_sequential": sequential_s / min(seconds),
            "frame_pool_bytes": pool,
            "stall_seconds": by_reason,
            "barrier_wait_seconds": by_reason.get(REASON_BARRIER, 0.0),
            "ref_publish_wait_seconds": by_reason.get(REASON_REF_PUBLISH, 0.0),
        }

    variants = {
        "gop": measure(lambda: MPGopDecoder(data, workers=workers)),
        "slice-simple": measure(
            lambda: MPSliceDecoder(data, workers=workers, mode="simple")
        ),
        "slice-improved": measure(
            lambda: MPSliceDecoder(data, workers=workers, mode="improved")
        ),
    }
    return {
        "spec": asdict(spec),
        "stream_bytes": len(data),
        "workers": workers,
        "sequential_seconds": sequential_s,
        "variants": variants,
        "improved_barrier_below_simple": (
            variants["slice-improved"]["barrier_wait_seconds"]
            < variants["slice-simple"]["barrier_wait_seconds"]
        ),
    }


#: Streams for the auto-vs-fixed comparison.  Both are meaty enough
#: that the auto path's per-window overhead (profile + re-scan) sits
#: well inside the tolerance; tiny streams would measure overhead, not
#: the decision quality.
AUTO_SPECS = (SLICE_SPEC, HEADLINE_SPEC)

#: Worker count for the auto-vs-fixed comparison.
AUTO_WORKERS = 2

#: Auto must land within this fraction of the best fixed
#: configuration's wall-clock (or beat it) on every benchmarked
#: vector — the acceptance bar perf_regression.py gates on.
AUTO_TOLERANCE = 0.05


def bench_auto_vs_fixed(
    specs: tuple[TestStreamSpec, ...] = AUTO_SPECS,
    workers: int = AUTO_WORKERS,
    repeats: int = 2,
) -> dict[str, object]:
    """Auto-granularity vs every fixed (grain, engine) configuration.

    For each stream: time the fixed grains through the *same* unified
    executor (so the comparison isolates the decision, not the code
    path), time ``grain=auto engine=auto``, and record the decisions
    the controller actually made.  ``within_tolerance`` is the
    acceptance flag: auto at most :data:`AUTO_TOLERANCE` slower than
    the best fixed configuration (usually it *is* the best fixed
    configuration, plus a profiling epsilon).
    """
    from repro.exec import TaskGraphExecutor

    streams: dict[str, object] = {}
    for spec in specs:
        data = build_stream(spec)
        fixed: dict[str, dict[str, float]] = {}
        for grain in ("gop", "slice"):
            seconds = _best_of(
                lambda: TaskGraphExecutor(
                    data, grain=grain, engine="batched", workers=workers
                ).decode_all(),
                repeats,
            )
            fixed[f"{grain}/batched"] = {
                "seconds": seconds,
                "pictures_per_sec": spec.pictures / seconds,
            }
        best_name = min(fixed, key=lambda k: fixed[k]["seconds"])
        best_s = fixed[best_name]["seconds"]

        last_ex: list[TaskGraphExecutor] = []

        def run_auto() -> None:
            ex = TaskGraphExecutor(
                data, grain="auto", engine="auto", workers=workers
            )
            ex.decode_all()
            last_ex[:] = [ex]

        auto_s = _best_of(run_auto, repeats)
        decisions = [
            {
                "grain": d.grain,
                "engine": d.engine,
                "reason": d.reason,
                "est_cost": d.est_cost,
                "alt": f"{d.alt_grain}/{d.alt_engine}",
                "alt_cost": d.alt_cost,
            }
            for d in last_ex[0].last_decisions
        ]
        streams[spec.name] = {
            "spec": asdict(spec),
            "stream_bytes": len(data),
            "workers": workers,
            "fixed": fixed,
            "best_fixed": {"config": best_name, "seconds": best_s},
            "auto": {
                "seconds": auto_s,
                "pictures_per_sec": spec.pictures / auto_s,
                "decisions": decisions,
                "repicks": sum(
                    1
                    for a, b in zip(decisions, decisions[1:])
                    if (a["grain"], a["engine"]) != (b["grain"], b["engine"])
                ),
            },
            "auto_vs_best_fixed": auto_s / best_s,
            "within_tolerance": auto_s <= best_s * (1.0 + AUTO_TOLERANCE),
        }
    return {
        "tolerance": AUTO_TOLERANCE,
        "workers": workers,
        "streams": streams,
    }


def run(path: str = OUTPUT_PATH) -> dict[str, object]:
    """Benchmark the matrix + headline and write the JSON."""
    streams: dict[str, object] = {}
    for spec in SMALL_MATRIX:
        streams[spec.name] = bench_parallel_stream(spec, repeats=2)
    headline = bench_parallel_stream(HEADLINE_SPEC, repeats=REPEATS)
    streams[HEADLINE_SPEC.name] = headline
    headline["observability"] = _traced_headline_obs(
        build_stream(HEADLINE_SPEC), workers=4
    )
    slice_section = bench_slice_decompositions()
    auto_section = bench_auto_vs_fixed()

    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cores(),
        "worker_counts": list(WORKER_COUNTS),
        "repeats": REPEATS,
        "headline": HEADLINE_SPEC.name,
        "headline_speedup_at_4_workers": headline["workers"]["4"][
            "speedup_vs_sequential"
        ],
        "streams": streams,
        "slice": slice_section,
        "auto": auto_section,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def _format_report(report: dict) -> str:
    lines = [
        f"{'stream':<26}{'seq p/s':>9}" +
        "".join(f"{f'x @ {w}w':>10}" for w in report["worker_counts"])
    ]
    for name, row in report["streams"].items():
        lines.append(
            f"{name:<26}{row['sequential_pictures_per_sec']:>9.2f}"
            + "".join(
                f"{row['workers'][str(w)]['speedup_vs_sequential']:>9.2f}x"
                for w in report["worker_counts"]
            )
        )
    sl = report["slice"]
    lines.append(
        f"slice decompositions ({sl['spec']['name']}, "
        f"{sl['workers']} workers):"
    )
    for variant, row in sl["variants"].items():
        lines.append(
            f"  {variant:<16}{row['seconds']:>8.3f}s"
            f"  barrier {row['barrier_wait_seconds']:.3f}s"
            f"  ref.publish {row['ref_publish_wait_seconds']:.3f}s"
        )
    auto = report.get("auto", {})
    if auto:
        lines.append(
            f"auto vs fixed ({auto['workers']} workers, "
            f"tolerance {auto['tolerance'] * 100:.0f}%):"
        )
        for name, row in auto["streams"].items():
            d0 = row["auto"]["decisions"][0]
            lines.append(
                f"  {name:<26}auto {row['auto']['seconds']:>7.3f}s"
                f"  best-fixed {row['best_fixed']['config']} "
                f"{row['best_fixed']['seconds']:.3f}s"
                f"  ratio {row['auto_vs_best_fixed']:.3f}"
                f"  picked {d0['grain']}/{d0['engine']}"
                f" ({'ok' if row['within_tolerance'] else 'SLOW'})"
            )
    lines.append(
        f"cores available: {report['cpu_affinity']} "
        f"(speedup is physically capped at this)"
    )
    return "\n".join(lines)


@pytest.mark.perf
def test_perf_parallel(record) -> None:
    """Perf gate: >= 1.8x wall-clock at 4 workers on the headline stream.

    The assertion needs >= 4 real cores; on smaller machines the
    numbers are still measured and written to BENCH_parallel.json, but
    asserting parallel speedup without parallel hardware would only
    test the weather.
    """
    report = run()
    record(_format_report(report))
    cores = report["cpu_affinity"]
    # Sanity that is core-count independent: the mp pipeline at 1
    # worker must not be catastrophically slower than sequential
    # (process + shm overhead bounded), and results stay bit-exact
    # (asserted by tier-1, not here).
    headline = report["streams"][report["headline"]]
    assert headline["workers"]["1"]["speedup_vs_sequential"] > 0.5
    # Core-count independent by construction: the improved policy's
    # only gate is reference publication, so its cumulative barrier
    # time must sit strictly below simple's on the multi-B stream.
    assert report["slice"]["improved_barrier_below_simple"], (
        "improved barrier policy did not reduce barrier wait vs simple"
    )
    # Auto-granularity acceptance: on every benchmarked vector, auto
    # matches or beats the best fixed configuration (within tolerance)
    # — core-count independent, since auto and fixed run on the same
    # hardware in the same process.
    for name, row in report["auto"]["streams"].items():
        assert row["within_tolerance"], (
            f"auto-granularity on {name} took "
            f"{row['auto']['seconds']:.3f}s vs best fixed "
            f"{row['best_fixed']['config']} "
            f"{row['best_fixed']['seconds']:.3f}s "
            f"(ratio {row['auto_vs_best_fixed']:.3f} > "
            f"1 + {report['auto']['tolerance']})"
        )
    if cores < 4:
        pytest.skip(
            f"only {cores} core(s) available; cannot assert 4-worker "
            f"wall-clock speedup (measured "
            f"{report['headline_speedup_at_4_workers']:.2f}x)"
        )
    assert report["headline_speedup_at_4_workers"] >= 1.8


def main() -> int:
    report = run()
    print(f"wrote {OUTPUT_PATH}")
    print(_format_report(report))
    speedup = report["headline_speedup_at_4_workers"]
    print(f"headline speedup at 4 workers: {speedup:.2f}x")
    if report["cpu_affinity"] < 4:
        print("(fewer than 4 cores available; acceptance bar not applicable)")
        return 0
    return 0 if speedup >= 1.8 else 1


if __name__ == "__main__":
    raise SystemExit(main())
