"""Figure 7 — ideal vs actual worker time (memory stalls).

Paper: pixie's ideal time vs prof's actual time summed over workers
shows 10-30% of time stalled in the memory system, ~20% on average,
across resolutions, GOP sizes and processor counts.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.parallel.stats import ideal_vs_actual

from benchmarks.conftest import PAPER_CASES

SWEEP = [2, 6, 10, 14]


def test_fig7_ideal_vs_actual(benchmark, env, record):
    def run():
        out = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13)
            for workers in SWEEP:
                result = env.run_gop(profile, workers)
                out[(res, workers)] = ideal_vs_actual(result)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["case", "ideal Gcycles", "actual Gcycles", "stall %"],
        title="Figure 7: ideal (pixie) vs actual (prof) worker time, GOP version",
    )
    fractions = []
    for (res, workers), (ideal, actual) in results.items():
        stall = (actual - ideal) / actual * 100
        fractions.append(stall)
        table.add_row(
            f"{res} P={workers}",
            round(ideal / 1e9, 2),
            round(actual / 1e9, 2),
            round(stall, 1),
        )
    mean = sum(fractions) / len(fractions)
    record(table.render() + f"\n\nmean stall fraction: {mean:.1f}% (paper: ~20%, band 10-30%)")

    for f in fractions:
        assert 9.0 <= f <= 31.0, f"stall fraction {f:.1f}% outside the paper band"
    assert 13.0 <= mean <= 27.0
