"""GOP mega-batch parity: cross-picture batching must change nothing.

The batched engine's per-GOP fast path (one dequant + IDCT chain over
every coded block of a GOP, ``repro.mpeg2.decoder._decode_gop_batched``)
reorders *computation*, never *semantics*.  This suite pins that claim
three ways:

* every committed golden vector — and every still-decodable negative —
  decodes to the same pixels **and** identical work counters under the
  scalar oracle and the GOP-batched engine;
* every rejected ``neg_*`` vector raises the **same exception class**
  from both engines (derived live from the scalar run, not just from
  the pinned name, so the two engines are compared against each other);
* a Hypothesis property: transplanting a same-type picture's slice
  into another picture — creating two *different* coded slices for the
  same macroblock row — never breaks the bitstream-last-wins scatter
  order.  The mega-batch assembles a whole picture's coefficients in
  one array; this is the test that the assembly's duplicate-row
  resolution matches the sequential decoder's overwrite order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import SequenceDecoder
from repro.mpeg2.index import build_index
from repro.parallel.mp_slice import MPSliceDecoder
from tests.mpeg2.test_golden_vectors import (
    CORPUS,
    DECODABLE_NEGATIVES,
    ERROR_NEGATIVES,
    NEGATIVE,
    VECTOR_NAMES,
    load_vector,
)


def _decode(data: bytes, engine: str) -> tuple[list[str], WorkCounters]:
    counters = WorkCounters()
    frames = SequenceDecoder(data, engine=engine).decode_all(counters)
    return [f.digest() for f in frames], counters


class TestGopBatchedParity:
    """Full-corpus scalar vs GOP-batched: pixels and counters."""

    @pytest.mark.parametrize("name", VECTOR_NAMES)
    def test_golden_corpus_pixels_and_counters(self, name):
        data = load_vector(name)
        scalar_digests, scalar_counters = _decode(data, "scalar")
        batched_digests, batched_counters = _decode(data, "batched")
        assert batched_digests == scalar_digests
        assert batched_digests == CORPUS[name]["frame_digests"]
        assert batched_counters == scalar_counters, (
            f"GOP-batched counters drifted from scalar on {name}"
        )

    @pytest.mark.parametrize("name", DECODABLE_NEGATIVES)
    def test_decodable_negatives_pixels_and_counters(self, name):
        data = load_vector(name)
        scalar_digests, scalar_counters = _decode(data, "scalar")
        batched_digests, batched_counters = _decode(data, "batched")
        assert batched_digests == scalar_digests
        assert batched_digests == NEGATIVE[name]["frame_digests"]
        assert batched_counters == scalar_counters


class TestGopBatchedErrors:
    """Rejected vectors: same exception class, engine vs engine."""

    @staticmethod
    def _exc_class(data: bytes, engine: str) -> type | None:
        try:
            SequenceDecoder(data, engine=engine).decode_all()
        except Exception as exc:
            return type(exc)
        return None

    @pytest.mark.parametrize("name", ERROR_NEGATIVES)
    def test_same_exception_class_as_scalar(self, name):
        data = load_vector(name)
        scalar_cls = self._exc_class(data, "scalar")
        batched_cls = self._exc_class(data, "batched")
        assert scalar_cls is not None, f"scalar decoded {name}"
        assert batched_cls is scalar_cls, (
            f"GOP-batched rejected {name} with "
            f"{batched_cls and batched_cls.__name__}, scalar raised "
            f"{scalar_cls.__name__}"
        )
        assert scalar_cls.__name__ == NEGATIVE[name]["error"]


# ----------------------------------------------------------------------
# Hypothesis: duplicate-row scatter order survives the mega-batch
# ----------------------------------------------------------------------
_BASE = "ipb_64x48_gop13"
_BASE_DATA = load_vector(_BASE)
_PICS = build_index(_BASE_DATA).gops[0].pictures

#: (target_pic, donor_pic, row): donor's row-``row`` slice can legally
#: ride in target's slice run because both pictures are the same coding
#: type (same prediction mode and f_codes), so its parse is valid in
#: target's header context.  ``donor == target`` (a byte-identical
#: duplicate) is included on purpose — it must be counted, not crash.
_CANDIDATES = [
    (ti, di, row)
    for ti, tp in enumerate(_PICS)
    for di, dp in enumerate(_PICS)
    if tp.picture_type is dp.picture_type
    for row in sorted(
        {s.vertical_position for s in tp.slices}
        & {s.vertical_position for s in dp.slices}
    )
]


def _transplant(data: bytes, target: int, donor: int, row: int) -> bytes:
    """Append donor's row-``row`` slice at the end of target's run.

    The appended copy is bitstream-last for its row, so *it* must win
    the scatter — in the scalar decoder by plain overwrite order, in
    the GOP-batched engine by its duplicate-row resolution.
    """
    pics = build_index(data).gops[0].pictures
    donor_sl = next(
        s for s in pics[donor].slices if s.vertical_position == row
    )
    chunk = data[donor_sl.payload_start - 4 : donor_sl.payload_end]
    cut = pics[target].slices[-1].payload_end
    return data[:cut] + chunk + data[cut:]


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(st.sampled_from(_CANDIDATES), min_size=1, max_size=3),
)
def test_mega_batch_preserves_last_wins_scatter(ops):
    """Property: per-GOP batching never reorders duplicate-row writes.

    Each op splices a (possibly different-content) slice for an
    already-coded row into a picture; stacked ops can pile several
    duplicates onto one row.  Whatever the wire order ends up being,
    scalar, GOP-batched and the slice-parallel static resolver must
    agree bit-for-bit on pixels *and* work counters (every duplicate's
    parse work counted exactly once per copy).
    """
    data = _BASE_DATA
    for target, donor, row in ops:
        data = _transplant(data, target, donor, row)

    scalar_digests, scalar_counters = _decode(data, "scalar")
    batched_digests, batched_counters = _decode(data, "batched")
    assert batched_digests == scalar_digests
    assert batched_counters == scalar_counters

    slice_counters = WorkCounters()
    slice_frames = MPSliceDecoder(
        data, workers=0, mode="improved"
    ).decode_all(slice_counters)
    assert [f.digest() for f in slice_frames] == scalar_digests
    assert slice_counters == scalar_counters
