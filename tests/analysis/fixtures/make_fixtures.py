"""Regenerate the committed miniature trace fixtures.

Run from the repo root::

    PYTHONPATH=src python tests/analysis/fixtures/make_fixtures.py

The fixtures are deterministic synthetic traces built through the real
``to_chrome`` exporter (so their shape always matches what the tracer
writes), small enough to read by eye and committed so the obs_report
CLI tests need no live decode:

* ``solo_trace.json`` — one process with decode/idct spans and a stall,
  for the single-file report path;
* ``server_shard.json`` / ``client_shard.json`` — a matched pair of
  e2e shards (3 pictures, one concealment, a clock.sync instant with a
  2ms offset) for the ``--merged`` path.
"""

from __future__ import annotations

import json
import os

from repro.obs.propagate import (
    EVENT_CLOCK_SYNC,
    EVENT_DEADLINE,
    SPAN_CONCEAL,
    SPAN_DECODE,
    SPAN_PACE,
    SPAN_REASSEMBLE,
    SPAN_WIRE,
)
from repro.obs.trace import to_chrome

HERE = os.path.dirname(os.path.abspath(__file__))

MS = 1_000_000  # ns
SESSION = "fix#0"
#: client clock = server clock - OFFSET (so offset_ns = +2ms)
OFFSET_NS = 2 * MS


def _meta(pid: int, name: str) -> dict:
    return {
        "ph": "M", "name": "process_name", "ts": 0,
        "pid": pid, "tid": 0, "args": {"name": name},
    }


def _span(name, cat, pid, ts, dur, **args) -> dict:
    return {
        "ph": "X", "name": name, "cat": cat, "pid": pid, "tid": 0,
        "ts": ts, "dur": dur, "args": args,
    }


def _instant(name, cat, pid, ts, **args) -> dict:
    return {
        "ph": "i", "name": name, "cat": cat, "pid": pid, "tid": 0,
        "ts": ts, "s": "t", "args": args,
    }


def solo_trace() -> dict:
    base = 50 * MS
    events = [_meta(100, "decode worker")]
    for i in range(3):
        t = base + i * 10 * MS
        events.append(_span("decode.picture", "decode", 100, t, 6 * MS, pic=i))
        events.append(_span("idct", "decode", 100, t + 1 * MS, 2 * MS))
        events.append(
            _span(
                "stall.input", "stall", 100, t + 7 * MS, 1 * MS,
                reason="input",
            )
        )
    return to_chrome(events)


def server_shard() -> dict:
    base = 1000 * MS  # server clock
    events = [_meta(100, "net-serve (acceptor+service)")]
    for pic in range(3):
        t = base + pic * 33 * MS
        events.append(
            _span(SPAN_DECODE, "e2e", 100, t, 4 * MS, session=SESSION, pic=pic)
        )
        events.append(
            _span(
                SPAN_PACE, "e2e", 100, t + 4 * MS, 20 * MS,
                session=SESSION, pic=pic,
            )
        )
        events.append(
            _span(
                SPAN_WIRE, "e2e", 100, t + 24 * MS, 2 * MS,
                session=SESSION, pic=pic, bands=8,
            )
        )
    return to_chrome(events)


def client_shard() -> dict:
    # Client timestamps sit on a clock 2ms BEHIND the server's; its
    # recorded offset (+2ms) shifts them back during the merge.
    base = 1000 * MS - OFFSET_NS
    events = [_meta(200, "net-client (fix)")]
    events.append(
        _instant(
            EVENT_CLOCK_SYNC, "e2e", 200, base,
            session=SESSION, offset_ns=OFFSET_NS, rtt_ns=MS,
            error_bound_ns=MS // 2 + 1,
        )
    )
    for pic in range(3):
        # reassembly starts 2ms after the server's wire send (the
        # synthetic one-way flight), expressed on the client's clock
        t = base + pic * 33 * MS + 26 * MS
        events.append(
            _span(
                SPAN_REASSEMBLE, "e2e", 200, t, 3 * MS,
                session=SESSION, pic=pic, bands=8 if pic != 1 else 7,
                rows=8, concealed=0 if pic != 1 else 1,
            )
        )
        if pic == 1:
            events.append(
                _span(
                    SPAN_CONCEAL, "e2e", 200, t + 1 * MS, MS // 2,
                    session=SESSION, pic=pic, temporal=1, spatial=0,
                )
            )
        events.append(
            _instant(
                EVENT_DEADLINE, "e2e", 200, t + 3 * MS,
                session=SESSION, pic=pic, late_ms=float(pic),
            )
        )
    return to_chrome(events)


def main() -> None:
    fixtures = {
        "solo_trace.json": solo_trace(),
        "server_shard.json": server_shard(),
        "client_shard.json": client_shard(),
    }
    for name, doc in fixtures.items():
        path = os.path.join(HERE, name)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(doc['traceEvents'])} events)")


if __name__ == "__main__":
    main()
