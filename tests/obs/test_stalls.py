"""Stall attribution tests: vocabulary, table arithmetic, breakdowns."""

from __future__ import annotations

import pytest

from repro.obs.stalls import (
    CANONICAL_REASONS,
    REASON_BARRIER,
    REASON_MERGE,
    REASON_POOL_SLOT,
    REASON_QUEUE_GET,
    StallTable,
    format_stall_breakdown,
)


class TestVocabulary:
    def test_canonical_reasons_are_unique_strings(self):
        assert len(set(CANONICAL_REASONS)) == len(CANONICAL_REASONS)
        assert all(isinstance(r, str) for r in CANONICAL_REASONS)

    def test_shared_names_used_by_both_decoders(self):
        # The names the simulator and mp pipeline must agree on.
        assert REASON_QUEUE_GET in CANONICAL_REASONS
        assert REASON_MERGE in CANONICAL_REASONS
        assert REASON_POOL_SLOT in CANONICAL_REASONS
        assert REASON_BARRIER in CANONICAL_REASONS


class TestStallTable:
    def test_record_and_totals(self):
        t = StallTable()
        t.record("worker-0", REASON_QUEUE_GET, 3.0)
        t.record("worker-0", REASON_QUEUE_GET, 2.0)
        t.record("merge", REASON_MERGE, 1.0)
        assert t.total() == 6.0
        assert t.total(REASON_QUEUE_GET) == 5.0
        assert t.by_reason() == {REASON_QUEUE_GET: 5.0, REASON_MERGE: 1.0}
        assert t.waiters() == ["merge", "worker-0"]

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            StallTable().record("w", REASON_QUEUE_GET, -1.0)

    def test_empty_table_is_falsey(self):
        t = StallTable()
        assert not t
        t.record("w", REASON_QUEUE_GET, 0.0)
        assert t

    def test_snapshot_merge_roundtrip(self):
        worker = StallTable()
        worker.record("worker-1", REASON_QUEUE_GET, 2.0)
        worker.record("worker-1", REASON_QUEUE_GET, 3.0)
        parent = StallTable()
        parent.record("merge", REASON_MERGE, 1.0)
        parent.merge(worker.snapshot())
        assert parent.total() == 6.0
        snap = parent.snapshot()
        assert snap["worker-1"][REASON_QUEUE_GET] == {
            "total": 5.0, "count": 2,
        }


class TestBreakdown:
    def test_fractions_of_supplied_total(self):
        t = StallTable()
        t.record("w", REASON_QUEUE_GET, 25.0)
        t.record("w", REASON_MERGE, 25.0)
        b = t.breakdown(100.0)
        assert b == {REASON_QUEUE_GET: 0.25, REASON_MERGE: 0.25}

    def test_fractions_sum_to_at_most_one(self):
        # Even when the caller underestimates the denominator the
        # fractions must stay a valid percentage split.
        t = StallTable()
        t.record("a", REASON_QUEUE_GET, 80.0)
        t.record("b", REASON_MERGE, 70.0)
        b = t.breakdown(100.0)  # stalls sum to 150 > denominator
        assert sum(b.values()) <= 1.0 + 1e-12

    def test_zero_total_time(self):
        t = StallTable()
        assert t.breakdown(0.0) == {}
        t.record("w", REASON_QUEUE_GET, 0.0)
        assert t.breakdown(0.0) == {REASON_QUEUE_GET: 0.0}

    def test_negative_total_raises(self):
        with pytest.raises(ValueError):
            StallTable().breakdown(-1.0)

    def test_format_renders_percentages(self):
        t = StallTable()
        t.record("w", REASON_QUEUE_GET, 1.0)
        text = format_stall_breakdown(t.breakdown(4.0), title="test split")
        assert "test split" in text
        assert REASON_QUEUE_GET in text
        assert "25.00%" in text
