"""Property-based slice syntax test: arbitrary macroblock plans.

For random (but legal) sequences of intra/inter macroblock plans, the
encode->decode slice path must reproduce *exactly* the reconstruction
computed directly from the plans with the shared numeric primitives —
this exercises the predictor threading (DC, PMV), skip handling, CBP
logic and VLC coding as one system.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.dct import idct_rounded
from repro.mpeg2.frame import Frame
from repro.mpeg2.headers import PictureHeader, SequenceHeader
from repro.mpeg2.macroblock import (
    MacroblockPlan,
    PictureCodingContext,
    decode_slice,
    encode_slice,
)
from repro.mpeg2.motion import MotionVector
from repro.mpeg2.quant import dequantize_intra, dequantize_non_intra
from repro.mpeg2.reconstruct import (
    form_prediction,
    prediction_blocks,
    write_macroblock,
)
from repro.mpeg2.scan import unscan_block

W, H = 80, 32  # 5 x 2 macroblocks
MBW = 5
QSCALE_CODE = 4  # quantiser scale 8


def _seq():
    return SequenceHeader(width=W, height=H)


def _ref(seed):
    rng = np.random.default_rng(seed)
    ref = Frame.blank(W, H)
    ref.y[:] = rng.integers(0, 256, size=ref.y.shape)
    ref.cb[:] = rng.integers(0, 256, size=ref.cb.shape)
    ref.cr[:] = rng.integers(0, 256, size=ref.cr.shape)
    return ref


# Strategy: a few sparse nonzero levels per macroblock.
levels_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),     # block index
        st.integers(1, 63),    # scan position (AC only, keeps DC simple)
        st.integers(-30, 30),  # level
    ),
    max_size=10,
)

# Motion vectors within +/-3 full pels (safe for interior MBs; border
# MBs are forced to stay inside by clamping below).
mv_strategy = st.tuples(st.integers(-6, 6), st.integers(-6, 6))


@st.composite
def plan_row(draw):
    """A full row of macroblock decisions for a P-picture slice."""
    plans = []
    for col in range(MBW):
        kind = draw(st.sampled_from(["intra", "inter", "zero"]))
        levels = np.zeros((6, 64), dtype=np.int64)
        for b, k, v in draw(levels_strategy):
            levels[b, k] = v
        if kind == "intra":
            levels[:, 0] = draw(st.integers(1, 254))  # DC per block
            plans.append(
                MacroblockPlan(address=col, intra=True, levels=levels)
            )
        else:
            if kind == "zero":
                mv = MotionVector.ZERO
            else:
                # Horizontal motion only: the test frame is 2 MB rows
                # tall, so vertical displacement would leave the plane
                # for either row the slice is placed on.  Clamp dx so
                # the half-pel window stays inside.
                _, dx = draw(mv_strategy)
                max_dx = 2 * (W - 16 - col * 16) - 2
                min_dx = -2 * (col * 16)
                dx = max(min(dx, max_dx), min_dx)
                mv = MotionVector(dy=0, dx=dx)
            plans.append(
                MacroblockPlan(
                    address=col, intra=False, levels=levels, mv_fwd=mv
                )
            )
    return plans


def expected_reconstruction(plans, seq, ref):
    """Reconstruction computed directly from the plans (no syntax)."""
    out = Frame.blank(W, H)
    qscale = 2 * QSCALE_CODE
    for plan in plans:
        raster = unscan_block(plan.levels)
        if plan.intra:
            coeffs = dequantize_intra(raster, seq.intra_quant_matrix, qscale)
            blocks = idct_rounded(coeffs)
            write_macroblock(out, 0, plan.address, blocks, None)
        else:
            coeffs = dequantize_non_intra(
                raster, seq.non_intra_quant_matrix, qscale
            )
            blocks = idct_rounded(coeffs)
            pred = form_prediction(
                0, plan.address, plan.mv_fwd, None, ref, None
            )
            write_macroblock(out, 0, plan.address, blocks, pred)
    return out


@given(plan_row())
@settings(max_examples=60, deadline=None)
def test_slice_syntax_reproduces_direct_reconstruction(plans):
    seq = _seq()
    ref = _ref(seed=99)
    pic = PictureHeader(
        temporal_reference=0, picture_type=PictureType.P, forward_f_code=1
    )
    w = BitWriter()
    encode_slice(w, plans, 0, MBW, QSCALE_CODE, pic)
    w.align()
    out = Frame.blank(W, H)
    ctx = PictureCodingContext(seq=seq, pic=pic, out=out, fwd=ref)
    counters = WorkCounters()
    decode_slice(w.getvalue(), 1, ctx, counters)

    expected = expected_reconstruction(plans, seq, ref)
    assert counters.macroblocks == MBW
    assert np.array_equal(out.y[0:16], expected.y[0:16])
    assert np.array_equal(out.cb[0:8], expected.cb[0:8])
    assert np.array_equal(out.cr[0:8], expected.cr[0:8])


@given(plan_row(), plan_row())
@settings(max_examples=20, deadline=None)
def test_slices_are_independent(plans_a, plans_b):
    """Decoding slice B after slice A gives the same pixels as decoding
    B alone: no predictor state crosses a slice boundary."""
    seq = _seq()
    ref = _ref(seed=7)
    pic = PictureHeader(
        temporal_reference=0, picture_type=PictureType.P, forward_f_code=1
    )

    def encode(plans, row):
        shifted = [
            MacroblockPlan(
                address=row * MBW + p.address,
                intra=p.intra,
                levels=p.levels,
                mv_fwd=p.mv_fwd,
            )
            for p in plans
        ]
        w = BitWriter()
        encode_slice(w, shifted, row, MBW, QSCALE_CODE, pic)
        w.align()
        return w.getvalue()

    # Decode B alone (as row 0 content placed at row 1).
    alone = Frame.blank(W, H)
    ctx = PictureCodingContext(seq=seq, pic=pic, out=alone, fwd=ref)
    decode_slice(encode(plans_b, 1), 2, ctx, WorkCounters())

    # Decode A (row 0) then B (row 1) into one frame.
    both = Frame.blank(W, H)
    ctx2 = PictureCodingContext(seq=seq, pic=pic, out=both, fwd=ref)
    decode_slice(encode(plans_a, 0), 1, ctx2, WorkCounters())
    decode_slice(encode(plans_b, 1), 2, ctx2, WorkCounters())

    assert np.array_equal(alone.y[16:32], both.y[16:32])
