"""Memory-reference trace generation from the instrumented decoder.

:class:`AccessRecorder` receives the logical access events the
macroblock layer emits (see ``PictureCodingContext.trace``);
:class:`AddressSpaceLayout` resolves them to word-granular addresses
over a realistic data layout: the compressed stream buffer, the shared
VLC/quantization tables, per-processor private coefficient buffers,
and a rotating pool of frame stores holding references and the output
picture.  Word granularity (4-byte) matters: the spatial-locality
result (Fig. 13 — miss rate halves per line-size doubling) only
emerges if sequential runs are visible to the cache at sub-line size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpeg2.decoder import SequenceDecoder

WORD = 4
TABLE_REGION_BYTES = 8192
COEFF_REGION_BYTES = 1024


class AccessRecorder:
    """Collects the logical access events of one slice decode."""

    __slots__ = ("events", "_stream_offset")

    def __init__(self, stream_offset: int = 0) -> None:
        self.events: list[tuple] = []
        self._stream_offset = stream_offset

    # duck-typed interface called from repro.mpeg2.macroblock ----------
    def stream_read(self, nbytes: int) -> None:
        self.events.append(("stream", self._stream_offset, nbytes))
        self._stream_offset += nbytes

    def table_lookups(self, n: int) -> None:
        if n > 0:
            self.events.append(("tables", n))

    def coeff_blocks(self, n_blocks: int) -> None:
        self.events.append(("coeffs", n_blocks))

    def ref_read(self, which: str, plane: str, y: int, x: int, h: int, w: int) -> None:
        self.events.append(("ref", which, plane, y, x, h, w))

    def out_write(self, plane: str, y: int, x: int, h: int, w: int) -> None:
        self.events.append(("out", plane, y, x, h, w))


@dataclass(frozen=True)
class _PlaneRegion:
    base: int
    stride: int
    height: int


@dataclass
class AddressSpaceLayout:
    """Simulated address space of the decoder's data structures."""

    coded_width: int
    coded_height: int
    stream_bytes: int
    processors: int
    frame_buffers: int = 4

    stream_base: int = 0
    tables_base: int = field(init=False)
    coeff_bases: list[int] = field(init=False)
    _planes: dict[tuple[int, str], _PlaneRegion] = field(init=False)
    total_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        cursor = _align(self.stream_base + self.stream_bytes)
        self.tables_base = cursor
        cursor = _align(cursor + TABLE_REGION_BYTES)
        self.coeff_bases = []
        for _ in range(self.processors):
            self.coeff_bases.append(cursor)
            cursor = _align(cursor + COEFF_REGION_BYTES)
        self._planes = {}
        cw, ch = self.coded_width, self.coded_height
        for b in range(self.frame_buffers):
            for plane, (w, h) in (
                ("y", (cw, ch)),
                ("cb", (cw // 2, ch // 2)),
                ("cr", (cw // 2, ch // 2)),
            ):
                self._planes[(b, plane)] = _PlaneRegion(
                    base=cursor, stride=w, height=h
                )
                cursor = _align(cursor + w * h)
        self.total_bytes = cursor

    def plane(self, buffer_id: int, plane: str) -> _PlaneRegion:
        return self._planes[(buffer_id, plane)]

    # ------------------------------------------------------------------
    # event expansion (word-granular address arrays)
    # ------------------------------------------------------------------
    def rect_words(
        self, buffer_id: int, plane: str, y: int, x: int, h: int, w: int
    ) -> np.ndarray:
        region = self.plane(buffer_id, plane)
        x0 = (x // WORD) * WORD
        cols = np.arange(x0, x + w, WORD, dtype=np.int64)
        rows = (y + np.arange(h, dtype=np.int64)) * region.stride
        return (region.base + rows[:, None] + cols[None, :]).ravel()

    def stream_words(self, offset: int, nbytes: int) -> np.ndarray:
        start = (offset // WORD) * WORD
        return self.stream_base + np.arange(
            start, offset + nbytes, WORD, dtype=np.int64
        )

    def table_words(self, n: int) -> np.ndarray:
        # Table lookups hit a small hot region; a strided walk touches
        # several of its lines with heavy reuse across macroblocks.
        k = np.arange(n, dtype=np.int64)
        return self.tables_base + (k * 68) % TABLE_REGION_BYTES // WORD * WORD

    def coeff_words(self, processor: int, n_blocks: int) -> tuple[np.ndarray, np.ndarray]:
        """(addresses, is_write) of coefficient-buffer traffic.

        Each coded block writes its 64 x 2-byte levels then reads them
        back for inverse quantization + IDCT.
        """
        words_per_block = 64 * 2 // WORD
        base = self.coeff_bases[processor]
        one = base + np.arange(words_per_block, dtype=np.int64) * WORD
        addrs = np.concatenate([one, one])  # write pass, read pass
        writes = np.zeros(2 * words_per_block, dtype=bool)
        writes[:words_per_block] = True
        if n_blocks == 1:
            return addrs, writes
        return np.tile(addrs, n_blocks), np.tile(writes, n_blocks)


def _align(addr: int, boundary: int = 4096) -> int:
    return (addr + boundary - 1) // boundary * boundary


@dataclass
class MemoryTrace:
    """A word-granular multi-processor reference trace."""

    addr: np.ndarray  # int64 byte addresses (word aligned)
    write: np.ndarray  # bool
    proc: np.ndarray  # int16 processor ids
    processors: int
    layout: AddressSpaceLayout

    def __len__(self) -> int:
        return len(self.addr)

    @property
    def read_count(self) -> int:
        return int((~self.write).sum())

    @property
    def write_count(self) -> int:
        return int(self.write.sum())


def _expand_slice_events(
    recorder: AccessRecorder,
    layout: AddressSpaceLayout,
    processor: int,
    buffers: dict[str, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve one slice's events to (addr, write) arrays."""
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []

    def emit(addrs: np.ndarray, is_write: bool) -> None:
        addr_parts.append(addrs)
        write_parts.append(np.full(len(addrs), is_write, dtype=bool))

    for ev in recorder.events:
        kind = ev[0]
        if kind == "stream":
            emit(layout.stream_words(ev[1], ev[2]), False)
        elif kind == "tables":
            emit(layout.table_words(ev[1]), False)
        elif kind == "coeffs":
            addrs, writes = layout.coeff_words(processor, ev[1])
            addr_parts.append(addrs)
            write_parts.append(writes)
        elif kind == "ref":
            _, which, plane, y, x, h, w = ev
            emit(layout.rect_words(buffers[which], plane, y, x, h, w), False)
        elif kind == "out":
            _, plane, y, x, h, w = ev
            emit(layout.rect_words(buffers["out"], plane, y, x, h, w), True)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {kind!r}")
    if not addr_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def _interleave(
    per_proc: list[tuple[np.ndarray, np.ndarray]], chunk: int = 64
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Round-robin merge of per-processor streams in ``chunk`` units.

    Models the concurrent progress of workers decoding slices of the
    same picture: their reference streams interleave at fine grain.
    """
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    proc_parts: list[np.ndarray] = []
    offsets = [0] * len(per_proc)
    live = True
    while live:
        live = False
        for p, (addrs, writes) in enumerate(per_proc):
            o = offsets[p]
            if o >= len(addrs):
                continue
            live = True
            end = min(o + chunk, len(addrs))
            addr_parts.append(addrs[o:end])
            write_parts.append(writes[o:end])
            proc_parts.append(np.full(end - o, p, dtype=np.int16))
            offsets[p] = end
    if not addr_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool), np.empty(0, dtype=np.int16)
    return (
        np.concatenate(addr_parts),
        np.concatenate(write_parts),
        np.concatenate(proc_parts),
    )


def generate_decode_trace(
    data: bytes,
    processors: int = 1,
    max_pictures: int | None = None,
    frame_buffers: int = 4,
    assignment: str = "static",
) -> MemoryTrace:
    """Decode ``data`` and capture its memory-reference trace.

    With ``processors > 1`` the trace models the slice-level parallel
    decoder: slices of each picture are assigned to processors and
    their access streams interleave (the configuration of the paper's
    Figs. 13-15 right-hand panels).  With one processor it models the
    GOP-level worker (left-hand panels).

    ``assignment`` controls task-to-processor locality — the question
    the paper raises in Section 7.2 ("we make no attempt to ensure that
    the processor decoding a given slice is also assigned slices from
    later frames which reference that slice"):

    * ``"static"`` — slice row r always goes to processor ``r % P``,
      so motion-compensation reads mostly hit lines the same processor
      wrote in the reference picture;
    * ``"rotating"`` — the mapping shifts every picture, destroying
      producer-consumer locality and raising sharing misses.
    """
    if assignment not in ("static", "rotating"):
        raise ValueError(f"unknown assignment policy {assignment!r}")
    decoder = SequenceDecoder(data)
    seq = decoder.seq
    layout = AddressSpaceLayout(
        coded_width=((seq.width + 15) // 16) * 16,
        coded_height=((seq.height + 15) // 16) * 16,
        stream_bytes=len(data),
        processors=processors,
        frame_buffers=frame_buffers,
    )

    addr_all: list[np.ndarray] = []
    write_all: list[np.ndarray] = []
    proc_all: list[np.ndarray] = []
    stream_offset = 0
    decoded = 0

    # Frame-buffer pool: pick the lowest buffer not holding a live ref.
    fwd_buf = bwd_buf = None
    ref_old = ref_new = None  # decoded Frame refs for actual decoding

    for gop in decoder.index.gops:
        for pic in gop.pictures:
            if max_pictures is not None and decoded >= max_pictures:
                break
            is_ref = pic.picture_type.is_reference
            if is_ref:
                fwd, bwd = ref_new, None
                fwd_b, bwd_b = bwd_buf, None
            else:
                fwd, bwd = ref_old, ref_new
                fwd_b, bwd_b = fwd_buf, bwd_buf
            out_buf = min(
                b for b in range(layout.frame_buffers) if b not in (fwd_b, bwd_b)
            )
            ctx = decoder.make_context(pic, fwd, bwd)
            per_proc: list[list[tuple[np.ndarray, np.ndarray]]] = [
                [] for _ in range(processors)
            ]
            buffers = {"fwd": fwd_b, "bwd": bwd_b, "out": out_buf}
            for si, sl in enumerate(pic.slices):
                recorder = AccessRecorder(stream_offset=stream_offset)
                ctx.trace = recorder
                from repro.mpeg2.macroblock import decode_slice

                decode_slice(decoder.slice_payload(sl), sl.vertical_position, ctx)
                shift = decoded if assignment == "rotating" else 0
                p = (si + shift) % processors
                per_proc[p].append(
                    _expand_slice_events(recorder, layout, p, buffers)
                )
                stream_offset += sl.payload_end - sl.payload_start
            merged = [
                (
                    np.concatenate([a for a, _ in chunks])
                    if chunks
                    else np.empty(0, dtype=np.int64),
                    np.concatenate([w for _, w in chunks])
                    if chunks
                    else np.empty(0, dtype=bool),
                )
                for chunks in per_proc
            ]
            a, w, p = _interleave(merged)
            addr_all.append(a)
            write_all.append(w)
            proc_all.append(p)
            decoded += 1
            if is_ref:
                ref_old, ref_new = ref_new, ctx.out
                fwd_buf, bwd_buf = bwd_buf, out_buf
        else:
            continue
        break

    return MemoryTrace(
        addr=np.concatenate(addr_all),
        write=np.concatenate(write_all),
        proc=np.concatenate(proc_all),
        processors=processors,
        layout=layout,
    )
