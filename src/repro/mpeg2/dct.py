"""8x8 forward and inverse DCT.

The MPEG 2-D DCT with its C(u)C(v)/4 normalisation is exactly the
orthonormal ("ortho") type-II DCT for N=8, so we delegate to
``scipy.fft`` which is vectorised over arbitrary leading axes — the
encoder and decoder transform all blocks of a picture in one call.

Both sides of the codec use *the same* float implementation followed by
the same rounding, so the encoder's local reconstruction is bit-exact
with the decoder's output (a tested invariant; it stands in for the
IEEE-1180 conformance the reference codec relies on).
"""

from __future__ import annotations

import numpy as np
import scipy.fft

from repro.mpeg2.constants import BLOCK_SIZE


def fdct(blocks: np.ndarray) -> np.ndarray:
    """Forward 8x8 DCT over ``(..., 8, 8)`` spatial data.

    Returns float64 coefficients with the MPEG normalisation
    (DC = 8 * mean of the block).
    """
    _check(blocks)
    return scipy.fft.dctn(
        blocks.astype(np.float64), type=2, axes=(-2, -1), norm="ortho"
    )


def idct(coeffs: np.ndarray, workers: int | None = None) -> np.ndarray:
    """Inverse 8x8 DCT over ``(..., 8, 8)`` coefficients (float64 out).

    ``workers`` is forwarded to ``scipy.fft`` for multi-threaded
    transform of large batches (e.g. ``-1`` for all cores).  The
    result is bit-exact regardless of ``workers`` and of batch size —
    each 8x8 block's transform is independent — which is what lets the
    batched decode path run one IDCT per picture and the benchmarks
    thread it, without perturbing decoder output.
    """
    _check(coeffs)
    return scipy.fft.idctn(
        np.asarray(coeffs, dtype=np.float64),
        type=2,
        axes=(-2, -1),
        norm="ortho",
        workers=workers,
    )


def idct_rounded(coeffs: np.ndarray, workers: int | None = None) -> np.ndarray:
    """Inverse DCT rounded to the nearest integer (int32).

    This single rounding point is shared by encoder reconstruction and
    decoder, guaranteeing bit-exact agreement.
    """
    return np.rint(idct(coeffs, workers=workers)).astype(np.int32)


def _check(arr: np.ndarray) -> None:
    if arr.shape[-2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(f"expected trailing (8, 8) axes, got shape {arr.shape}")
