"""Perf-regression guard: fresh numbers vs the committed baseline.

``BENCH_decode.json`` is committed at the repo root so the repository
carries its own perf trajectory.  This guard (``perf`` marker, never
tier-1) re-measures the headline stream with the same harness
(:mod:`benchmarks.perf_decode`) and fails if batched decode throughput
dropped more than :data:`ALLOWED_REGRESSION` below the committed
number — the tripwire that catches a "refactor" quietly costing 2x.

The committed baseline is read *before* any fresh run overwrites the
file.  Machine identity is checked loosely: if the baseline was
recorded on a different platform string, the comparison is
informational only (skip, not fail) — cross-machine wall-clock deltas
are not regressions.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from benchmarks.perf_decode import DECODE_REPEATS, HEADLINE_SPEC, bench_stream

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_decode.json")

#: Fail when fresh throughput drops below (1 - this) of the baseline.
ALLOWED_REGRESSION = 0.25


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


@pytest.mark.perf
def test_perf_no_decode_regression(record) -> None:
    if not os.path.exists(BASELINE_PATH):
        pytest.skip("no committed BENCH_decode.json baseline")
    baseline = load_baseline()
    base_row = baseline["streams"].get(HEADLINE_SPEC.name)
    if base_row is None:
        pytest.skip(f"baseline lacks headline stream {HEADLINE_SPEC.name}")

    fresh = bench_stream(HEADLINE_SPEC, repeats=DECODE_REPEATS)

    lines = [f"{'engine':<10}{'baseline p/s':>14}{'fresh p/s':>12}{'ratio':>8}"]
    ratios = {}
    for engine in ("scalar", "batched"):
        base_pps = base_row["decode"][engine]["pictures_per_sec"]
        fresh_pps = fresh["decode"][engine]["pictures_per_sec"]
        ratios[engine] = fresh_pps / base_pps
        lines.append(
            f"{engine:<10}{base_pps:>14.2f}{fresh_pps:>12.2f}"
            f"{ratios[engine]:>8.2f}"
        )
    record("\n".join(lines))

    if baseline.get("platform") != platform.platform():
        pytest.skip(
            "baseline recorded on a different platform "
            f"({baseline.get('platform')!r}); wall-clock comparison "
            "is informational only"
        )

    floor = 1.0 - ALLOWED_REGRESSION
    assert ratios["batched"] >= floor, (
        f"batched decode regressed to {ratios['batched']:.2f}x of the "
        f"committed baseline (floor {floor:.2f}x) — investigate before "
        f"re-committing BENCH_decode.json"
    )
    # The batched engine must also still beat scalar by a wide margin.
    assert (
        fresh["decode"]["batched"]["pictures_per_sec"]
        > 2.0 * fresh["decode"]["scalar"]["pictures_per_sec"]
    )
