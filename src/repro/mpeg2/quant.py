"""Quantization and inverse quantization (ISO 13818-2 section 7.4).

Conventions
-----------
* Intra DC uses fixed step 8 (``intra_dc_precision`` of 8 bits) and is
  coded differentially elsewhere; here it is just ``round(F/8)``.
* Intra AC: ``QF = round(16 * F / (W * q))`` with weight matrix ``W``
  and quantiser scale ``q``; reconstruction truncates toward zero:
  ``F' = trunc(2 * QF * W * q / 32)``.
* Non-intra: dead-zone quantizer ``QF = trunc(16 * F / (W * q))``;
  reconstruction ``F' = trunc((2*QF + sign(QF)) * W * q / 32)``.
* Saturation to [-2048, 2047] and MPEG-2 *mismatch control* (force the
  coefficient sum odd by toggling coefficient (7,7)) are applied after
  inverse quantization of each block.

All functions are vectorised over leading axes: ``(..., 8, 8)``.
"""

from __future__ import annotations

import numpy as np

from repro.mpeg2.constants import (
    COEFF_MAX,
    COEFF_MIN,
    LEVEL_MAX,
    LEVEL_MIN,
)

#: Intra DC quantization step (intra_dc_precision = 8 bits).
INTRA_DC_STEP = 8


def _trunc_div(num: np.ndarray, den: int | np.ndarray) -> np.ndarray:
    """Integer division truncating toward zero (C semantics).

    Both reconstruction formulas divide by a power-of-two constant, so
    that case avoids hardware division entirely: an arithmetic shift
    floors, and negative operands with a nonzero remainder are nudged
    one step back up toward zero.
    """
    if isinstance(den, int) and den > 0 and den & (den - 1) == 0:
        shift = den.bit_length() - 1
        q = num >> shift
        q += ((num & (den - 1)) != 0) & (num < 0)
        return q
    return (np.sign(num) * (np.abs(num) // np.abs(den))).astype(np.int64)


# ----------------------------------------------------------------------
# forward quantization (encoder)
# ----------------------------------------------------------------------
def quantize_intra(
    coeffs: np.ndarray, matrix: np.ndarray, qscale: int
) -> np.ndarray:
    """Quantize intra-block DCT coefficients, DC included.

    The DC (position ``[..., 0, 0]``) is quantized with the fixed step
    :data:`INTRA_DC_STEP`; AC terms use the weight matrix.  Output is
    int64 levels clamped to the escape-codable range.
    """
    f = np.asarray(coeffs, dtype=np.float64)
    levels = np.rint(16.0 * f / (matrix * float(qscale)))
    levels[..., 0, 0] = np.rint(f[..., 0, 0] / INTRA_DC_STEP)
    return np.clip(levels, LEVEL_MIN, LEVEL_MAX).astype(np.int64)


def quantize_non_intra(
    coeffs: np.ndarray, matrix: np.ndarray, qscale: int
) -> np.ndarray:
    """Dead-zone quantization of prediction-error DCT coefficients."""
    f = np.asarray(coeffs, dtype=np.float64)
    scaled = 16.0 * f / (matrix * float(qscale))
    levels = np.trunc(scaled)
    return np.clip(levels, LEVEL_MIN, LEVEL_MAX).astype(np.int64)


# ----------------------------------------------------------------------
# inverse quantization (decoder AND encoder reconstruction loop)
# ----------------------------------------------------------------------
def dequantize_intra(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Reconstruct intra coefficients from levels (int64 out).

    ``qscale`` may be a scalar or a per-block array broadcastable
    against ``(..., 8, 8)`` (e.g. shape ``(n, 1, 1)``) — the batched
    decode path dequantizes every block of a picture in one call, each
    at the quantiser scale its macroblock was coded with.
    """
    lv = np.asarray(levels, dtype=np.int64)
    # trunc(2 * QF * W * q / 32) == trunc(QF * W * q / 16) exactly.
    f = _trunc_div(lv * matrix * qscale, 16)
    f[..., 0, 0] = lv[..., 0, 0] * INTRA_DC_STEP
    f = np.clip(f, COEFF_MIN, COEFF_MAX)
    return _mismatch_control(f)


def dequantize_non_intra(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Reconstruct non-intra coefficients from levels (int64 out).

    ``qscale`` broadcasts like in :func:`dequantize_intra`.
    """
    lv = np.asarray(levels, dtype=np.int64)
    f = _trunc_div((2 * lv + np.sign(lv)) * matrix * qscale, 32)
    f = np.clip(f, COEFF_MIN, COEFF_MAX)
    return _mismatch_control(f)


def dequantize_intra_f64(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Float64 twin of :func:`dequantize_intra` for the batched path.

    Every intermediate is an integer far below ``2**53``
    (``|level| * max(W) * max(q) < 2**27``), where float64 arithmetic
    is exact — products and power-of-two divisions incur no rounding —
    so the result equals the int64 path bit for bit (pinned by the
    cross-engine parity suites).  Working in float halves the pass
    count (truncating division by 16 is one multiply by an exact
    ``W/16`` matrix plus one ``np.trunc``) and hands the IDCT its
    native dtype, so the transform performs no input conversion.
    ``levels`` must already be float64.
    """
    f = np.trunc(levels * (matrix * 0.0625) * qscale)
    f[..., 0, 0] = levels[..., 0, 0] * INTRA_DC_STEP
    np.clip(f, COEFF_MIN, COEFF_MAX, out=f)
    return _mismatch_control(f)


def dequantize_non_intra_f64(
    levels: np.ndarray, matrix: np.ndarray, qscale: int | np.ndarray
) -> np.ndarray:
    """Float64 twin of :func:`dequantize_non_intra` (see above)."""
    f = np.trunc(
        (2.0 * levels + np.sign(levels)) * (matrix * 0.03125) * qscale
    )
    np.clip(f, COEFF_MIN, COEFF_MAX, out=f)
    return _mismatch_control(f)


def _mismatch_control(coeffs: np.ndarray) -> np.ndarray:
    """MPEG-2 mismatch control: make each block's coefficient sum odd.

    If the sum over a block is even, coefficient (7,7) is nudged by
    +/-1 (toward even-to-odd parity of that coefficient), flipping the
    total parity.  This is what kept the reference encoder and the many
    third-party IDCTs from drifting apart; here it doubles as a tested
    invariant.
    """
    total = coeffs.sum(axis=(-2, -1))
    even = (total % 2) == 0
    if not np.any(even):
        return coeffs
    last = coeffs[..., 7, 7]
    adjust = np.where(last % 2 == 0, 1, -1)
    coeffs[..., 7, 7] = np.where(even, last + adjust, last)
    return coeffs


def effective_step(matrix: np.ndarray, qscale: int) -> np.ndarray:
    """The reconstruction step size per coefficient (diagnostic)."""
    return matrix * qscale / 16.0
