"""Block-layer coefficient coding: DC differentials and run/levels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.blockcoding import (
    BlockSyntaxError,
    decode_block,
    decode_dc_differential,
    encode_block,
    encode_dc_differential,
    encode_run_level,
)
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.tables import DC_SIZE_CHROMA, DC_SIZE_LUMA


def _roundtrip_block(levels, intra):
    w = BitWriter()
    pred = 128 if intra else 0
    encode_block(
        w, levels, intra=intra, dc_table=DC_SIZE_LUMA if intra else None,
        dc_predictor=pred,
    )
    w.align()
    counters = WorkCounters()
    out, _ = decode_block(
        BitReader(w.getvalue()),
        intra=intra,
        dc_table=DC_SIZE_LUMA if intra else None,
        dc_predictor=pred,
        counters=counters,
    )
    return out, counters


class TestDCDifferential:
    @pytest.mark.parametrize("table", [DC_SIZE_LUMA, DC_SIZE_CHROMA])
    @pytest.mark.parametrize("dc,pred", [(128, 128), (0, 128), (255, 128),
                                         (200, 10), (-50, 100), (1000, 0)])
    def test_roundtrip(self, table, dc, pred):
        w = BitWriter()
        encode_dc_differential(w, dc, pred, table)
        w.align()
        c = WorkCounters()
        assert decode_dc_differential(BitReader(w.getvalue()), pred, table, c) == dc

    def test_zero_differential_is_size_code_only(self):
        w = BitWriter()
        encode_dc_differential(w, 100, 100, DC_SIZE_LUMA)
        assert w.bit_position == DC_SIZE_LUMA.code_length(0)

    def test_oversized_differential_rejected(self):
        with pytest.raises(BlockSyntaxError):
            encode_dc_differential(BitWriter(), 1 << 12, 0, DC_SIZE_LUMA)


class TestRunLevel:
    def test_zero_level_rejected(self):
        with pytest.raises(BlockSyntaxError):
            encode_run_level(BitWriter(), 0, 0)

    def test_level_out_of_escape_range_rejected(self):
        with pytest.raises(BlockSyntaxError):
            encode_run_level(BitWriter(), 0, 5000)

    def test_escape_used_for_rare_pairs(self):
        # run 40 has no table entry: must escape (6+12 bits + esc code).
        w = BitWriter()
        encode_run_level(w, 40, 1)
        assert w.bit_position >= 18

    def test_common_pair_is_short(self):
        w = BitWriter()
        encode_run_level(w, 0, 1)
        assert w.bit_position <= 4  # codeword + sign bit


class TestBlockRoundtrip:
    def test_empty_non_intra_block(self):
        levels = np.zeros(64, dtype=np.int64)
        out, c = _roundtrip_block(levels, intra=False)
        assert np.array_equal(out, levels)

    def test_intra_block_keeps_dc(self):
        levels = np.zeros(64, dtype=np.int64)
        levels[0] = 200
        out, _ = _roundtrip_block(levels, intra=True)
        assert np.array_equal(out, levels)

    def test_dense_block(self):
        rng = np.random.default_rng(0)
        levels = rng.integers(-40, 40, size=64)
        levels[0] = 100
        out, c = _roundtrip_block(levels, intra=True)
        assert np.array_equal(out, levels)
        assert c.coefficients == np.count_nonzero(levels[1:])

    def test_last_coefficient_position(self):
        levels = np.zeros(64, dtype=np.int64)
        levels[63] = -5
        out, _ = _roundtrip_block(levels, intra=False)
        assert np.array_equal(out, levels)

    def test_escape_levels(self):
        levels = np.zeros(64, dtype=np.int64)
        levels[10] = 2047
        levels[50] = -2047
        out, _ = _roundtrip_block(levels, intra=False)
        assert np.array_equal(out, levels)

    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(-300, 300)),
            max_size=20,
        ),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_arbitrary_sparse_blocks_roundtrip(self, entries, intra):
        levels = np.zeros(64, dtype=np.int64)
        for pos, val in entries:
            if intra and pos == 0:
                continue
            levels[pos] = val
        if intra:
            levels[0] = 77
        out, _ = _roundtrip_block(levels, intra=intra)
        assert np.array_equal(out, levels)

    def test_run_past_end_detected(self):
        # Hand-craft a stream whose run overflows the block.
        from repro.mpeg2.tables import AC_RUN_LEVEL, ESCAPE

        w = BitWriter()
        for _ in range(3):
            AC_RUN_LEVEL.encode(w, ESCAPE)
            w.write_bits(30, 6)   # run 30
            w.write_bits(5, 12)   # level 5
        w.align()
        with pytest.raises(BlockSyntaxError):
            decode_block(
                BitReader(w.getvalue()), intra=False, counters=WorkCounters()
            )
