"""Network streaming edge: TCP server + client over the decode service.

The paper decodes in real time on one SMP; this package puts that
decoder behind a socket, the deployment shape of the follow-on
video-server work.  Three layers:

* :mod:`repro.net.protocol` — the length-prefixed wire format: a
  droppable ``SLICE`` message per macroblock-row band plus reliable
  control messages (``PIC_DONE`` marks a picture complete whether or
  not its bands survived).
* :mod:`repro.net.impair` — a deterministic, seeded in-process
  impairment shim (loss / reorder / jitter / bandwidth cap) applied at
  the transport write boundary, so CI exercises lossy links with no
  root privileges or ``netem``.
* :mod:`repro.net.server` / :mod:`repro.net.client` — an asyncio
  front end over :class:`repro.serve.service.DecodeService` running
  in dynamic mode, and a client that reassembles pictures, conceals
  missing bands with the *same* :mod:`repro.mpeg2.reconstruct`
  primitives the resilient decoders use, and measures per-picture
  deadline lateness.
"""

from repro.net.impair import (
    ImpairedSender,
    ImpairmentProfile,
    ImpairmentSchedule,
)
from repro.net.protocol import (
    MSG_ACCEPT,
    MSG_BYE,
    MSG_HELLO,
    MSG_PIC_DONE,
    MSG_REJECT,
    MSG_SLICE,
    MSG_STATS,
    Message,
    StreamFramer,
    encode_message,
    read_message,
)

__all__ = [
    "ImpairedSender",
    "ImpairmentProfile",
    "ImpairmentSchedule",
    "MSG_ACCEPT",
    "MSG_BYE",
    "MSG_HELLO",
    "MSG_PIC_DONE",
    "MSG_REJECT",
    "MSG_SLICE",
    "MSG_STATS",
    "Message",
    "StreamFramer",
    "encode_message",
    "read_message",
]
