"""Ablation — task-assignment locality (paper Section 7.2's question).

"Will a fully dynamic scheme, with no attempt to preserve locality in
task assignment, work well as communication costs get relatively
higher?  ...in our slice level implementation we make no attempt to
ensure that the processor decoding a given slice is also assigned
slices from later frames which reference that slice."

We answer with the cache simulator: the same 8-processor decode traced
under *static* slice assignment (row r always on processor r mod P —
motion-compensation reads hit locally-written lines) versus a
*rotating* assignment (mapping shifts every picture).  Rotating
assignment multiplies the read miss rate several-fold — the misses are
cold-to-that-cache fetches of other processors' output, exactly the
remote-traffic class that limited DASH speedups.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.cache import CacheConfig, generate_decode_trace, simulate

from benchmarks.conftest import PAPER_CASES

PROCESSORS = 8
TRACE_PICTURES = 7


def test_ablation_assignment_locality(benchmark, env, record):
    res = next(iter(PAPER_CASES))
    data = env.stream(res, 13)
    cfg = CacheConfig(line_size=64, capacity=1 << 20, associativity=0)

    def run():
        out = {}
        for policy in ("static", "rotating"):
            trace = generate_decode_trace(
                data,
                processors=PROCESSORS,
                max_pictures=TRACE_PICTURES,
                assignment=policy,
            )
            total, _ = simulate(trace, cfg)
            out[policy] = total
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["assignment", "read miss %", "total misses", "coherence misses"],
        title=(
            f"Ablation: slice-to-processor assignment locality "
            f"({res}, {PROCESSORS} procs, 1MB fully-assoc)"
        ),
    )
    for policy, total in stats.items():
        table.add_row(
            policy,
            round(total.read_miss_rate * 100, 3),
            total.misses,
            total.coherence_misses,
        )
    penalty = stats["rotating"].read_miss_rate / stats["static"].read_miss_rate
    record(
        table.render()
        + f"\n\nrotating/static miss-rate ratio: {penalty:.1f}x — "
        "locality-free assignment turns local re-reads into remote fetches\n"
        "(the traffic class Section 7.2 identifies as the DASH bottleneck)"
    )

    assert penalty > 2.0, f"expected a clear locality penalty, got {penalty:.2f}x"