"""Table 3 — maximum pictures/second of the GOP-level decoder.

Paper (14 workers on the 16-processor Challenge):
352x240 -> 69.9, 704x480 -> 26.6, 1408x960 -> 7.3 pictures/second.
"""

from __future__ import annotations

from repro.analysis import comparison_table

from benchmarks.conftest import PAPER_CASES

PAPER_TABLE3 = {"352x240": 69.9, "704x480": 26.6, "1408x960": 7.3}
WORKERS = 14


def test_table3_gop_max_fps(benchmark, env, record):
    def run():
        rates = {}
        for res in PAPER_CASES:
            profile = env.profile(res, 13)
            rates[res] = env.run_gop(profile, WORKERS).pictures_per_second
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        comparison_table(
            f"Table 3: max pictures/sec, GOP version, {WORKERS} workers",
            [
                (res, PAPER_TABLE3.get(res), round(rate, 1))
                for res, rate in rates.items()
            ],
        )
    )

    # Shape: ordering and rough magnitudes must match the paper.
    ordered = [rates[r] for r in rates]
    assert ordered == sorted(ordered, reverse=True)
    for res, rate in rates.items():
        paper = PAPER_TABLE3.get(res)
        if paper:
            assert 0.5 * paper < rate < 2.0 * paper, f"{res}: {rate:.1f} vs {paper}"
