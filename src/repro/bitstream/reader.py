"""MSB-first bit reader used by the decoders.

Decoding MPEG requires three access patterns, all provided here:

* sequential ``read_bits`` for fixed-length fields,
* ``peek_bits`` for table-driven VLC decode (look at up to *n* bits,
  then consume only the matched codeword length),
* byte alignment + start-code resynchronisation for the slice layer.

The reader also counts the bits it hands out (``bits_consumed``), which
feeds the paper-calibrated cycle cost model: bitstream parsing cost in
the paper is proportional to the stream's bit rate, not the pixel rate.

Performance
-----------
``read_bits``/``peek_bits`` are the innermost operations of VLC decode,
so they avoid per-call byte assembly: the reader caches a *chunk* of
the buffer as one Python ``int`` and serves reads with a single
shift+mask.  Chunking (rather than converting the whole buffer at
construction) keeps every operation O(chunk) — a whole-buffer integer
would make each shift O(buffer), turning index scans over megabyte
streams quadratic.  ``bits_consumed`` accounting (``bit_position``) is
unchanged.
"""

from __future__ import annotations


class BitstreamError(Exception):
    """Raised on malformed or truncated bitstream input."""


#: Cached-chunk size.  Small enough that the cached int stays a few
#: machine words (shift+mask cost), large enough to amortise refills.
_CACHE_BYTES = 32
_CACHE_BITS = _CACHE_BYTES * 8
#: Reads longer than this bypass the cache (after byte alignment a
#: chunk refilled at ``pos`` is only guaranteed to cover this many bits).
_MAX_CACHED_READ = _CACHE_BITS - 7


class BitReader:
    """Read an MSB-first bit string from ``bytes``.

    Parameters
    ----------
    data:
        The backing buffer.  It is not copied; treat it as immutable.
    start_bit:
        Bit offset at which reading starts (default 0).
    """

    __slots__ = ("_data", "_pos", "_nbits", "_cache", "_cache_start", "_cache_end")

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = data
        self._nbits = len(data) * 8
        if not 0 <= start_bit <= self._nbits:
            raise ValueError(f"start_bit {start_bit} out of range")
        self._pos = start_bit
        # Cached chunk: bits [_cache_start, _cache_end) of the buffer as
        # one int.  Empty until the first read touches it.
        self._cache = 0
        self._cache_start = 0
        self._cache_end = 0

    def _refill(self, pos: int) -> None:
        """Load the chunk containing bit ``pos`` into the cache."""
        first = pos >> 3
        last = min(first + _CACHE_BYTES, len(self._data))
        self._cache = int.from_bytes(self._data[first:last], "big")
        self._cache_start = first * 8
        self._cache_end = last * 8

    # ------------------------------------------------------------------
    # position management
    # ------------------------------------------------------------------
    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    @bit_position.setter
    def bit_position(self, pos: int) -> None:
        if not 0 <= pos <= self._nbits:
            raise ValueError(f"bit position {pos} out of range")
        self._pos = pos

    @property
    def bits_remaining(self) -> int:
        return self._nbits - self._pos

    @property
    def is_aligned(self) -> bool:
        return self._pos % 8 == 0

    def align(self) -> None:
        """Skip forward to the next byte boundary (no-op if aligned)."""
        self._pos = (self._pos + 7) & ~7

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_bits(self, nbits: int) -> int:
        """Consume and return ``nbits`` bits as an unsigned integer."""
        if nbits <= 0:
            if nbits == 0:
                return 0
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        pos = self._pos
        end = pos + nbits
        if end > self._nbits:
            raise BitstreamError(
                f"read past end of stream (want {nbits} bits at {pos}, "
                f"have {self._nbits - pos})"
            )
        if pos < self._cache_start or end > self._cache_end:
            if nbits > _MAX_CACHED_READ:
                # Rare oversized read: assemble directly from the bytes.
                first = pos >> 3
                last = (end + 7) >> 3
                chunk = int.from_bytes(self._data[first:last], "big")
                self._pos = end
                return (chunk >> (last * 8 - end)) & ((1 << nbits) - 1)
            self._refill(pos)
        self._pos = end
        return (self._cache >> (self._cache_end - end)) & ((1 << nbits) - 1)

    def peek_bits(self, nbits: int) -> int:
        """Return the next ``nbits`` bits without consuming them.

        Bits past the end of the buffer read as zero — this lets
        table-driven VLC decoders peek a fixed window near the stream
        tail; an actual overrun is then caught when the decoded length
        is consumed with :meth:`read_bits`.
        """
        if nbits <= 0:
            if nbits == 0:
                return 0
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        pos = self._pos
        end = pos + nbits
        if end <= self._nbits:
            if pos < self._cache_start or end > self._cache_end:
                if nbits > _MAX_CACHED_READ:
                    first = pos >> 3
                    last = (end + 7) >> 3
                    chunk = int.from_bytes(self._data[first:last], "big")
                    return (chunk >> (last * 8 - end)) & ((1 << nbits) - 1)
                self._refill(pos)
            return (self._cache >> (self._cache_end - end)) & ((1 << nbits) - 1)
        # Tail peek: real bits first, then zero padding.
        pad = end - self._nbits
        got = self._nbits - pos
        if got <= 0:
            return 0
        if pos < self._cache_start or self._nbits > self._cache_end:
            if got > _MAX_CACHED_READ:
                first = pos >> 3
                chunk = int.from_bytes(self._data[first:], "big")
                return ((chunk & ((1 << got) - 1)) << pad)
            self._refill(pos)
        val = (self._cache >> (self._cache_end - self._nbits)) & ((1 << got) - 1)
        return val << pad

    def read_bit(self) -> int:
        return self.read_bits(1)

    def skip_bits(self, nbits: int) -> None:
        if self._pos + nbits > self._nbits:
            raise BitstreamError("skip past end of stream")
        self._pos += nbits

    def read_signed(self, nbits: int) -> int:
        """Read a two's-complement signed value of ``nbits`` bits."""
        raw = self.read_bits(nbits)
        sign = 1 << (nbits - 1)
        return raw - (1 << nbits) if raw & sign else raw

    # ------------------------------------------------------------------
    # start-code resynchronisation
    # ------------------------------------------------------------------
    def next_start_code(self) -> int | None:
        """Align and scan forward to the next ``00 00 01 xx`` pattern.

        Positions the reader *after* the 4-byte start code and returns
        the code value ``xx``, or returns ``None`` (reader at EOF) if no
        further start code exists.
        """
        self.align()
        data = self._data
        i = self._pos >> 3
        n = len(data)
        while True:
            j = data.find(b"\x00\x00\x01", i)
            if j < 0 or j + 3 >= n:
                self._pos = self._nbits
                return None
            self._pos = (j + 4) * 8
            return data[j + 3]

    def at_start_code(self) -> bool:
        """True if the (aligned) reader is positioned at a start code."""
        if self._pos % 8:
            return False
        i = self._pos >> 3
        return self._data[i : i + 3] == b"\x00\x00\x01"
