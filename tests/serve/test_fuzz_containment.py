"""Differential fuzzing: every decode path agrees on corrupt input.

The repo now has five ways to decode the same bytes — the scalar
oracle, the two-phase batched engine, the GOP-parallel and
slice-parallel decoders, and the multi-stream serve layer.  On *clean*
streams the parity suites pin them bit-identical.  This suite pins the
same property on **garbage**: seeded byte-flips, truncations and
splices of the golden vectors, run through all paths, which must agree
on the verdict —

* all paths decode → identical frame digests AND identical work
  counters (a malformed-but-decodable stream is just another stream);
* all paths reject → the direct decoders report the same exception
  class, drawn from the small set of *deliberate* decode errors below
  (the serve layer must agree on the verdict but may surface a
  different deliberate defect of the same mutant — its GOP-reference
  task visits pictures out of coding order).  A ``NameError`` or
  ``KeyError`` escaping a decoder is a bug, not a verdict — two were
  found exactly this way (an unimported exception name in
  ``blockcoding`` and a zero-slice-picture ``KeyError`` in
  ``mp_slice``) and are pinned by the promoted negative vectors.

Containment postconditions ride along on every mutant: no hang (the
module-scoped SIGALRM watchdog), no leaked ``/dev/shm`` segment, no
stray child process.  The serve path additionally must *contain* the
failure — a poisoned session ends FAILED with the same error class
while the service itself survives.

The mutant stream is reproducible: ``random.Random(FUZZ_SEED)``
threaded sequentially through :func:`mutate` over ``BASE_ORDER``.
Mutant *i* here is mutant *i* of every past and future run, which is
how the worst offenders were promoted into ``tests/vectors/`` (see
``generate_vectors.py``).  Scale the run with
``REPRO_FUZZ_MUTANTS=1000`` (default 200, the issue floor).
"""

from __future__ import annotations

import os
import random
import signal

import pytest

from repro.access import AccessError, trick_decode, trick_decode_mp
from repro.bitstream.reader import BitstreamError
from repro.mpeg2.blockcoding import BlockSyntaxError
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import DecodeError, SequenceDecoder
from repro.mpeg2.index import StreamIndexError
from repro.mpeg2.macroblock import SliceDecodeError
from repro.mpeg2.vlc import VLCError
from repro.parallel.mp import MPGopDecoder
from repro.parallel.mp_slice import MPSliceDecoder
from repro.serve import DecodeService, SessionStatus

from tests.mpeg2.test_golden_vectors import load_vector
from tests.parallel.test_mp_fault_injection import assert_no_stray_children

pytestmark = pytest.mark.fuzz

# ----------------------------------------------------------------------
# Mutant generation — the exact probe recipe, pinned forever.
# ----------------------------------------------------------------------

FUZZ_SEED = 1234

#: Base-vector choice order.  This is part of the recipe: changing it
#: renumbers every mutant and orphans the promoted negative vectors.
BASE_ORDER = (
    "two_gop_48x32",
    "ipb_64x48_gop13",
    "intra_16x16_gop1",
    "pad_40x24_gop4",
)

MUTANT_COUNT = int(os.environ.get("REPRO_FUZZ_MUTANTS", "200"))

#: Exception classes a corrupt stream may *legitimately* raise.
#: Everything else escaping a decode path is a containment failure.
ALLOWED_ERRORS = (
    DecodeError,
    StreamIndexError,
    BitstreamError,
    VLCError,
    BlockSyntaxError,
    SliceDecodeError,
    ValueError,
)
ALLOWED_ERROR_NAMES = frozenset(cls.__name__ for cls in ALLOWED_ERRORS)


def mutate(rng: random.Random, data: bytes) -> tuple[str, bytes]:
    """One seeded corruption: bit flips (3/5), truncation, or splice."""
    op = rng.choice(["flip", "flip", "flip", "trunc", "splice"])
    b = bytearray(data)
    if op == "flip":
        for _ in range(rng.randint(1, 4)):
            pos = rng.randrange(len(b))
            b[pos] ^= 1 << rng.randrange(8)
    elif op == "trunc":
        b = b[: rng.randrange(8, len(b))]
    else:  # splice: clobber one window with a copy of another
        n = rng.randint(4, 64)
        src = rng.randrange(len(b) - n)
        dst = rng.randrange(len(b) - n)
        b[dst : dst + n] = b[src : src + n]
    return op, bytes(b)


def generate_mutants(count: int, seed: int = FUZZ_SEED):
    """``[(index, base_name, op, mutated_bytes), ...]`` — deterministic."""
    vectors = {name: load_vector(name) for name in BASE_ORDER}
    rng = random.Random(seed)
    out = []
    for i in range(count):
        base = rng.choice(list(vectors))
        op, data = mutate(rng, vectors[base])
        out.append((i, base, op, data))
    return out


MUTANTS = generate_mutants(MUTANT_COUNT)


# ----------------------------------------------------------------------
# The decode paths under comparison.
# ----------------------------------------------------------------------


def _scalar(data):
    c = WorkCounters()
    return SequenceDecoder(data, engine="scalar").decode_all(c), c


def _batched(data):
    c = WorkCounters()
    return SequenceDecoder(data, engine="batched").decode_all(c), c


def _mp_gop(data):
    c = WorkCounters()
    return MPGopDecoder(data, workers=0).decode_all(c), c


def _mp_slice(data):
    c = WorkCounters()
    return MPSliceDecoder(data, workers=0, mode="improved").decode_all(c), c


class ServeFailure(Exception):
    """Carrier for the error class a serve session failed with."""


def _serve(data):
    """Decode through the service; re-raise the contained error class.

    The serve layer never lets a poisoned stream raise — it fails the
    session and keeps running.  To make it comparable with the direct
    paths, a FAILED session's recorded error class is re-raised here
    (as a synthetic instance when the class is allowed, so the verdict
    comparison sees the same name).
    """
    frames = {}

    def sink(display_index, frame):
        frames[display_index] = frame

    svc = DecodeService(workers=0, capacity=1)
    # Strict mode: the differential comparison needs serve's verdict on
    # the *first* defect, like every direct path; resilient sessions
    # conceal slice-level errors and would fail (or succeed) on a
    # different, later defect of the same mutant.
    sess = svc.submit("fuzz", data, resilient=False, on_frame=sink)
    svc.run()
    if sess.status is SessionStatus.FAILED:
        assert sess.error is not None
        raise ServeFailure(sess.error["type"], sess.error.get("message", ""))
    assert sess.status is SessionStatus.DONE
    assert sorted(frames) == list(range(len(frames)))
    return [frames[i] for i in sorted(frames)], sess.counters


PATHS = {
    "scalar": _scalar,
    "batched": _batched,
    "mp-gop": _mp_gop,
    "mp-slice": _mp_slice,
    "serve": _serve,
}


def run_path(fn, data):
    """-> ("ok", digests, counters) | ("err", class_name)."""
    try:
        frames, counters = fn(data)
    except ServeFailure as exc:
        name = exc.args[0]
        assert name in ALLOWED_ERROR_NAMES, (
            f"serve session failed with disallowed error class {name}: "
            f"{exc.args[1]}"
        )
        return ("err", name)
    except ALLOWED_ERRORS as exc:
        return ("err", type(exc).__name__)
    # Any other exception propagates: that is the bug-finding teeth of
    # the suite (NameError/KeyError/etc. are crashes, not verdicts).
    return ("ok", [f.digest() for f in frames], counters)


# ----------------------------------------------------------------------
# The suite.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", autouse=True)
def fuzz_watchdog():
    """One SIGALRM budget for the whole mutant sweep: ~0.5 s/mutant
    with a generous floor, plus headroom for the network round and the
    seek round (three random-access probes per mutant).  A single
    wedged mutant trips it."""
    budget = max(240, 2 * MUTANT_COUNT + 120)

    def on_alarm(signum, frame):  # pragma: no cover - only on bug
        raise TimeoutError("fuzz sweep wedged: a decode path hung on a mutant")

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(budget)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


class TestDifferentialAgreement:
    """All decode paths, same verdict, on every seeded mutant."""

    @pytest.mark.parametrize(
        "idx,base,op,data",
        MUTANTS,
        ids=[f"{i:03d}-{b}-{o}" for i, b, o, _ in MUTANTS],
    )
    def test_paths_agree(self, idx, base, op, data, no_shm_leak):
        verdicts = {name: run_path(fn, data) for name, fn in PATHS.items()}
        kinds = {v[0] for v in verdicts.values()}
        assert len(kinds) == 1, (
            f"mutant {idx} ({op} of {base}): split ok/err verdict: "
            f"{ {n: v[0] for n, v in verdicts.items()} }"
        )
        if kinds == {"ok"}:
            _, ref_digests, ref_counters = verdicts["scalar"]
            for name, (_, digests, counters) in verdicts.items():
                assert digests == ref_digests, (
                    f"mutant {idx} ({op} of {base}): {name} pixels "
                    "diverge from scalar"
                )
                assert counters == ref_counters, (
                    f"mutant {idx} ({op} of {base}): {name} counters "
                    "diverge from scalar"
                )
        else:
            # The four direct decoders share coding-order traversal and
            # must report the identical class.  The serve layer decodes
            # each GOP's references as *one* task before any B picture,
            # so on a multi-defect mutant it may legitimately surface a
            # different (still deliberate — run_path pinned it allowed)
            # defect first; it only has to agree on the verdict.
            direct = {
                n: v[1] for n, v in verdicts.items() if n != "serve"
            }
            classes = set(direct.values())
            assert len(classes) == 1, (
                f"mutant {idx} ({op} of {base}): paths disagree on error "
                f"class: {direct}"
            )


# ----------------------------------------------------------------------
# trick-play seek fuzz: random access into garbage
# ----------------------------------------------------------------------
#
# Seek is a *different traversal* of the same bytes — it indexes the
# stream, enters at a closed GOP and decodes only the tail — so a
# mutant can legitimately decode under seek while failing linearly
# (the corruption lives in a skipped GOP) and vice versa.  What must
# hold is engine agreement: for every mutant and every probed target,
# the scalar, batched and mp random-access paths reach the *same*
# verdict — identical (display index, digest) emissions, or the same
# deliberate error class.  SeekError (refusing an unprovable entry
# point) is a verdict, not a crash.

#: Seek targets are drawn from a *separate* seeded stream per mutant —
#: never from the mutant recipe's rng, which is pinned forever.
SEEKS_PER_MUTANT = 3

TRICK_ALLOWED_ERRORS = ALLOWED_ERRORS + (AccessError,)


def seek_targets(idx: int) -> list[int]:
    rng = random.Random(FUZZ_SEED + idx)
    # [0, 32): past-EOF targets included on purpose — refusal is a
    # verdict the paths must agree on too.
    return [rng.randrange(0, 32) for _ in range(SEEKS_PER_MUTANT)]


TRICK_PATHS = {
    "scalar": lambda d, t: trick_decode(d, "seek", target=t, engine="scalar"),
    "batched": lambda d, t: trick_decode(d, "seek", target=t, engine="batched"),
    "mp-gop": lambda d, t: trick_decode_mp(d, "seek", target=t, workers=0),
}


def run_trick(fn, data, target):
    """-> ("ok", ((display_index, digest), ...)) | ("err", class_name)."""
    try:
        pairs = fn(data, target)
    except TRICK_ALLOWED_ERRORS as exc:
        return ("err", type(exc).__name__)
    return ("ok", tuple((d, f.digest()) for d, f in pairs))


class TestTrickPlaySeekFuzz:
    """Random access into every mutant: engine paths agree, contained."""

    @pytest.mark.parametrize(
        "idx,base,op,data",
        MUTANTS,
        ids=[f"{i:03d}-{b}-{o}" for i, b, o, _ in MUTANTS],
    )
    def test_seek_paths_agree(self, idx, base, op, data, no_shm_leak):
        for target in seek_targets(idx):
            verdicts = {
                name: run_trick(fn, data, target)
                for name, fn in TRICK_PATHS.items()
            }
            kinds = {v[0] for v in verdicts.values()}
            assert len(kinds) == 1, (
                f"mutant {idx} ({op} of {base}) seek@{target}: split "
                f"verdict: { {n: v[0] for n, v in verdicts.items()} }"
            )
            if kinds == {"ok"}:
                ref = verdicts["scalar"][1]
                for name, (_, emissions) in verdicts.items():
                    assert emissions == ref, (
                        f"mutant {idx} ({op} of {base}) seek@{target}: "
                        f"{name} emissions diverge from scalar"
                    )
            else:
                classes = {v[1] for v in verdicts.values()}
                assert len(classes) == 1, (
                    f"mutant {idx} ({op} of {base}) seek@{target}: "
                    f"paths disagree on error class: "
                    f"{ {n: v[1] for n, v in verdicts.items()} }"
                )


class TestNetworkFuzz:
    """The socket path: mutants streamed end-to-end over a lossy link.

    Every mutant is *published* by a :class:`~repro.net.server.
    NetServer` and requested by a real client over localhost at 5%
    slice loss.  The containment postconditions now have a wire form:

    * an unscannable stream is refused with an explicit
      ``rejected:scan-failed`` (never a dead socket, never a crash);
    * a stream that fails mid-decode ends in a ``BYE`` carrying
      ``decode-failed`` — the client sees ``disconnected``, the server
      keeps serving;
    * a decodable mutant streams to a *complete* client result: every
      announced picture delivered, concealed, or shed despite the loss;
    * all service-side failures carry an allowed error class, nothing
      is left CANCELLED (a cancel here would mean a wedged client
      timeout), and a golden stream served after the sweep completes.
    """

    NET_MUTANT_COUNT = int(os.environ.get("REPRO_NET_FUZZ_MUTANTS", "50"))

    def test_socket_path_contains_mutants(self, no_shm_leak):
        import asyncio

        from repro.net.client import stream_session
        from repro.net.impair import ImpairmentProfile
        from repro.net.server import NetServer

        mutants = MUTANTS[: self.NET_MUTANT_COUNT]
        streams = {f"m{i:03d}": data for i, _, _, data in mutants}
        streams["golden"] = load_vector("two_gop_48x32")

        async def scenario():
            srv = NetServer(
                streams, workers=0, fps=480.0, capacity=4,
                impairment=ImpairmentProfile(loss=0.05, seed=FUZZ_SEED),
            )
            await srv.start()
            results = {}
            try:
                for name in streams:  # golden is last: post-sweep probe
                    results[name] = await stream_session(
                        "127.0.0.1", srv.port, name, timeout_s=30.0
                    )
            finally:
                report = await srv.aclose()
            return srv, results, report

        srv, results, report = asyncio.run(scenario())

        # Unscannable published streams were tolerated at construction
        # and their recorded failure classes are deliberate ones.
        for name, cls in srv.profile_errors.items():
            assert cls in ALLOWED_ERROR_NAMES, (name, cls)

        for name, res in results.items():
            assert res.status in (
                "done", "rejected:scan-failed", "disconnected"
            ), (name, res.to_json())
            if res.status == "done":
                # Delivered-or-concealed holds on garbage too.
                assert res.complete, (name, res.to_json())

        # The server outlived every mutant: the clean stream streamed
        # after the whole sweep still completes.
        assert results["golden"].complete, results["golden"].to_json()

        # Service-side containment: every session terminal, failures
        # carry an allowed class, and nothing was CANCELLED (a cancel
        # here means a client timed out on a wedged stream).
        statuses = set()
        for sid, sess in srv.service.sessions.items():
            assert sess.terminal, sid
            statuses.add(sess.status)
            if sess.status is SessionStatus.FAILED:
                assert sess.error is not None, sid
                assert sess.error["type"] in ALLOWED_ERROR_NAMES, (
                    sid, sess.error
                )
        assert SessionStatus.CANCELLED not in statuses
        counts = report["service"]["status_counts"]
        assert counts.get("done", 0) >= 1, counts  # golden at minimum
        assert_no_stray_children()


class TestSweepPostconditions:
    """Whole-sweep invariants, cheap to assert once at the end."""

    def test_recipe_is_pinned(self):
        # Renumbering mutants silently would orphan the promoted
        # negative vectors; pin the first few (base, op) draws.
        head = [(b, o) for _, b, o, _ in generate_mutants(4)]
        assert head == [
            ("pad_40x24_gop4", "flip"),
            ("two_gop_48x32", "flip"),
            ("pad_40x24_gop4", "flip"),
            ("two_gop_48x32", "splice"),
        ], "fuzz recipe drifted: promoted mutants no longer reproducible"

    def test_mutant_floor(self):
        assert MUTANT_COUNT >= 200 or "REPRO_FUZZ_MUTANTS" in os.environ

    def test_sweep_is_interesting(self):
        # Degenerate sweeps (everything ok, or everything the same
        # error) would mean the mutator stopped biting.
        verdicts = [run_path(_scalar, d)[0] for *_ignored, d in MUTANTS[:50]]
        assert "ok" in verdicts and "err" in verdicts

    def test_no_stray_children(self):
        assert_no_stray_children()
