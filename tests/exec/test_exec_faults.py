"""Fault injection through the unified backend (:mod:`repro.exec`).

The executor routes every decode through one worker-pool backend, so
worker death, wedged workers, and poisoned inputs must all surface the
same way regardless of which planner dispatched the work: a clean
:class:`~repro.mpeg2.decoder.DecodeError` (or the input's pinned
exception class), zero leaked ``/dev/shm`` segments, and zero stray
child processes.  The SIGALRM ``deadline`` fixture makes "no hang"
executable; ``assert_no_stray_children`` exempts only the healthy
persistent GOP pool (it outlives decodes by design).

The crash hooks (``_crash_gop`` / ``_crash_task``) ``os._exit`` a
worker mid-task — observationally a SIGKILL: no result, no cleanup,
nonzero exitcode.  They reach the workers *through* the executor's
planner plumbing, so these tests also pin that the hook paths
survived the planner/backend split.
"""

from __future__ import annotations

import pytest

from repro.exec import TaskGraphExecutor
from repro.mpeg2.counters import WorkCounters
from repro.mpeg2.decoder import DecodeError, SequenceDecoder

from tests.parallel.test_mp_fault_injection import assert_no_stray_children


class TestWorkerDeath:
    def test_gop_grain_crash_raises_decode_error(
        self, medium_stream, no_shm_leak, deadline
    ):
        ex = TaskGraphExecutor(
            medium_stream, grain="gop", engine="batched", workers=2,
            _crash_gop=1,
        )
        with pytest.raises(DecodeError, match="worker process died"):
            ex.decode_all()
        assert_no_stray_children()

    def test_slice_grain_crash_raises_decode_error(
        self, medium_stream, no_shm_leak, deadline
    ):
        ex = TaskGraphExecutor(
            medium_stream, grain="slice", workers=2, _crash_task=(2, 1),
        )
        with pytest.raises(DecodeError, match="worker process died"):
            ex.decode_all()
        assert_no_stray_children()

    def test_auto_grain_crash_still_fails_clean(
        self, two_gop_stream, no_shm_leak, deadline
    ):
        # Auto picks GOP grain for this stream (the cost model strongly
        # prefers it at this size); the crash hook rides along and the
        # death must surface identically through the windowed path.
        ex = TaskGraphExecutor(
            two_gop_stream, grain="auto", engine="batched", workers=2,
            _crash_gop=0,
        )
        assert ex._controller().decide().grain == "gop"
        with pytest.raises(DecodeError, match="worker process died"):
            ex.decode_all()
        assert_no_stray_children()

    def test_crash_on_first_task_before_any_result(
        self, small_stream, no_shm_leak, deadline
    ):
        ex = TaskGraphExecutor(
            small_stream, grain="slice", workers=1, _crash_task=(0, 0),
        )
        with pytest.raises(DecodeError, match="worker process died"):
            ex.decode_all()
        assert_no_stray_children()

    def test_clean_decode_after_crash(self, two_gop_stream, no_shm_leak):
        # A crashed run must not poison the process: a fresh executor
        # on the same stream succeeds and matches the oracle.
        ex = TaskGraphExecutor(
            two_gop_stream, grain="gop", engine="batched", workers=2,
            _crash_gop=0,
        )
        with pytest.raises(DecodeError):
            ex.decode_all()
        counters = WorkCounters()
        frames = TaskGraphExecutor(
            two_gop_stream, grain="gop", engine="batched", workers=2
        ).decode_all(counters)
        ref_counters = WorkCounters()
        ref = SequenceDecoder(two_gop_stream, engine="scalar").decode_all(
            ref_counters
        )
        assert [f.digest() for f in frames] == [f.digest() for f in ref]
        assert counters == ref_counters


class TestPoisonInput:
    def test_strict_mode_corrupt_slice_raises_across_processes(
        self, small_stream, no_shm_leak, deadline
    ):
        from tests.mpeg2.test_resilience import corrupt_slice

        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        ex = TaskGraphExecutor(data, grain="gop", engine="batched", workers=2)
        with pytest.raises(Exception):
            ex.decode_all()
        assert_no_stray_children()

    def test_resilient_mode_conceals_identically(
        self, small_stream, no_shm_leak
    ):
        from tests.mpeg2.test_resilience import corrupt_slice

        data = corrupt_slice(small_stream, gop=0, pic=4, sl=1)
        ref_counters = WorkCounters()
        ref = SequenceDecoder(
            data, engine="scalar", resilient=True
        ).decode_all(ref_counters)
        assert ref_counters.concealed_slices >= 1
        counters = WorkCounters()
        frames = TaskGraphExecutor(
            data, grain="slice", workers=2, resilient=True
        ).decode_all(counters)
        assert [f.digest() for f in frames] == [f.digest() for f in ref]
        assert counters == ref_counters


class TestHungWorker:
    def test_serve_hang_reaped_through_unified_backend(
        self, golden, no_shm_leak, deadline
    ):
        # The serve scheduler's result wait and worker reaping now run
        # through repro.exec.backend (timed_queue_get / reap_processes);
        # a wedged worker must still be detected by the task timeout,
        # replaced, and leave no strays — at the coarse task grain the
        # new planner plumbing introduced.
        from repro.serve import DecodeService
        from repro.serve.session import SessionStatus

        data = golden.data("two_gop_48x32")
        svc = DecodeService(
            workers=2, capacity=2, task_timeout_s=2.0, max_task_retries=2,
            grain="gop", _hang_task=(0, "a", ("ref", 0)),
        )
        a = svc.submit("a", data)
        b = svc.submit("b", data)
        svc.run()
        assert a.status is SessionStatus.DONE
        assert b.status is SessionStatus.DONE
        assert_no_stray_children()


class TestHooksInert:
    def test_executor_default_has_no_injection(self, small_stream):
        ex = TaskGraphExecutor(small_stream, grain="gop", workers=1)
        assert ex._crash_gop is None
        assert ex._crash_task is None
        assert len(ex.decode_all()) > 0
