"""Parallel decoders: correctness, speedup shapes, memory, sync.

The headline invariant: every parallel decoder emits pictures
bit-identical to the sequential reference decoder, in display order,
for every worker count and mode.
"""

from __future__ import annotations

import pytest

from repro.mpeg2.decoder import decode_sequence
from repro.parallel import (
    GopLevelDecoder,
    ParallelConfig,
    SliceLevelDecoder,
    SliceMode,
    profile_stream,
)
from repro.parallel.random_access import seek_latency
from repro.parallel.stats import ideal_vs_actual, load_balance, sync_ratio
from repro.smp import challenge


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return p


@pytest.fixture(scope="module")
def reference(medium_stream):
    return decode_sequence(medium_stream)


def cfg(workers, **kw):
    return ParallelConfig(workers=workers, machine=challenge(workers + 2), **kw)


class TestGopLevelCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_output_matches_sequential(
        self, profile, medium_stream, reference, workers
    ):
        dec = GopLevelDecoder(profile, medium_stream)
        result = dec.run(cfg(workers, execute=True))
        assert len(result.frames) == len(reference)
        for a, b in zip(result.frames, reference):
            assert a.same_pixels(b)

    def test_display_times_monotone(self, profile):
        result = GopLevelDecoder(profile).run(cfg(2))
        assert result.display_times == sorted(result.display_times)
        assert len(result.display_times) == profile.picture_count

    def test_execute_requires_data(self, profile):
        with pytest.raises(ValueError):
            GopLevelDecoder(profile).run(cfg(1, execute=True))


class TestSliceLevelCorrectness:
    @pytest.mark.parametrize("mode", list(SliceMode))
    @pytest.mark.parametrize("workers", [1, 3])
    def test_output_matches_sequential(
        self, profile, medium_stream, reference, mode, workers
    ):
        dec = SliceLevelDecoder(profile, medium_stream)
        result = dec.run(cfg(workers, execute=True), mode)
        assert len(result.frames) == len(reference)
        for a, b in zip(result.frames, reference):
            assert a.same_pixels(b)

    @pytest.mark.parametrize("mode", list(SliceMode))
    def test_display_order(self, profile, mode):
        result = SliceLevelDecoder(profile).run(cfg(4), mode)
        assert result.display_times == sorted(result.display_times)
        assert len(result.display_times) == profile.picture_count


class TestSpeedupShapes:
    def test_gop_speedup_near_linear_up_to_gop_count(self, profile):
        """With 2 GOPs, 2 workers give ~2x and more workers add nothing
        (task-count limit — the same effect the paper notes for short
        streams in Fig. 6)."""
        dec = GopLevelDecoder(profile)
        r1 = dec.run(cfg(1)).pictures_per_second
        r2 = dec.run(cfg(2)).pictures_per_second
        r4 = dec.run(cfg(4)).pictures_per_second
        assert 1.8 < r2 / r1 <= 2.05
        assert r4 == pytest.approx(r2, rel=0.02)

    def test_simple_slice_saturates_at_slices_per_picture(self, profile):
        """Fig. 11: the simple version stops scaling at slices/picture
        (4 here)."""
        dec = SliceLevelDecoder(profile)
        r4 = dec.run(cfg(4), SliceMode.SIMPLE).pictures_per_second
        r8 = dec.run(cfg(8), SliceMode.SIMPLE).pictures_per_second
        assert r8 < r4 * 1.05

    def test_improved_beats_simple_beyond_the_knee(self, profile):
        dec = SliceLevelDecoder(profile)
        simple = dec.run(cfg(8), SliceMode.SIMPLE).pictures_per_second
        improved = dec.run(cfg(8), SliceMode.IMPROVED).pictures_per_second
        assert improved > simple * 1.3

    def test_gop_fastest_at_high_worker_counts(self, medium_stream):
        """Table 4 ordering: GOP >= improved slice >= simple slice,
        given enough GOPs to keep workers busy."""
        # Need more GOPs than workers: reuse the 2-GOP medium stream at
        # P=2 where all three decoders are fully loaded.
        profile, _ = profile_stream(medium_stream)
        g = GopLevelDecoder(profile).run(cfg(2)).pictures_per_second
        im = SliceLevelDecoder(profile).run(cfg(2), SliceMode.IMPROVED).pictures_per_second
        si = SliceLevelDecoder(profile).run(cfg(2), SliceMode.SIMPLE).pictures_per_second
        assert g > im > si

    def test_deterministic(self, profile):
        dec = SliceLevelDecoder(profile)
        a = dec.run(cfg(5), SliceMode.IMPROVED)
        b = dec.run(cfg(5), SliceMode.IMPROVED)
        assert a.finish_cycles == b.finish_cycles
        assert a.display_times == b.display_times
        assert a.worker_busy == b.worker_busy


class TestMemoryBehaviour:
    def test_gop_memory_grows_with_workers(self, profile):
        """Fig. 8: GOP-version memory grows with the worker count."""
        dec = GopLevelDecoder(profile)
        m1 = dec.run(cfg(1)).memory.peak("frames")
        m2 = dec.run(cfg(2)).memory.peak("frames")
        assert m2 > m1

    def test_slice_memory_independent_of_workers(self, profile):
        """Section 5.2: slice-version memory does not grow with P."""
        dec = SliceLevelDecoder(profile)
        peaks = [
            dec.run(cfg(p), SliceMode.SIMPLE).memory.peak("frames")
            for p in (1, 4, 8)
        ]
        assert max(peaks) <= peaks[0] * 1.5
        assert max(peaks) <= 5 * profile.frame_bytes

    def test_slice_memory_far_below_gop_memory(self, profile):
        gop = GopLevelDecoder(profile).run(cfg(2)).memory.peak("frames")
        sl = SliceLevelDecoder(profile).run(
            cfg(2), SliceMode.IMPROVED
        ).memory.peak("frames")
        assert sl < gop / 2

    def test_no_leaks(self, profile):
        result = GopLevelDecoder(profile).run(cfg(2))
        final = result.memory.final_usage()
        assert final.get("frames", 0) == 0
        assert final.get("stream", 0) == 0
        result = SliceLevelDecoder(profile).run(cfg(3), SliceMode.IMPROVED)
        final = result.memory.final_usage()
        assert final.get("frames", 0) == 0
        assert final.get("stream", 0) == 0


class TestStatsHelpers:
    def test_load_balance_fields(self, profile):
        result = GopLevelDecoder(profile).run(cfg(2))
        lo, hi, mean = load_balance(result)
        assert lo <= mean <= hi

    def test_sync_ratio_grows_with_workers_simple_slice(self, profile):
        """Fig. 12: sync/exec ratio grows with P for the simple version."""
        dec = SliceLevelDecoder(profile)
        r2 = sync_ratio(dec.run(cfg(2), SliceMode.SIMPLE))
        r8 = sync_ratio(dec.run(cfg(8), SliceMode.SIMPLE))
        assert r8 > r2

    def test_improved_sync_below_simple(self, profile):
        dec = SliceLevelDecoder(profile)
        si = sync_ratio(dec.run(cfg(6), SliceMode.SIMPLE))
        im = sync_ratio(dec.run(cfg(6), SliceMode.IMPROVED))
        assert im < si

    def test_ideal_vs_actual_in_paper_band(self, profile):
        """Fig. 7: memory stalls are 10-30% of time."""
        result = GopLevelDecoder(profile).run(cfg(2))
        ideal, actual = ideal_vs_actual(result)
        assert 1.10 <= actual / ideal <= 1.30


class TestRandomAccess:
    def test_slice_seek_faster_than_gop_seek(self, profile):
        lat = seek_latency(profile, gop_index=1, workers=4)
        assert lat.slice_level < lat.gop_level
        assert lat.advantage > 1.5

    def test_one_worker_latencies_equal(self, profile):
        lat = seek_latency(profile, gop_index=0, workers=1)
        assert lat.slice_level == pytest.approx(lat.gop_level, rel=0.01)


class TestConfigValidation:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(workers=15, machine=challenge(16))  # 15+2 > 16
