"""Cost model calibration, machine configs, memory tracker."""

from __future__ import annotations

import pytest

from repro.mpeg2.counters import WorkCounters
from repro.smp import CHALLENGE, DASH, DEFAULT_COST_MODEL, MemoryTracker, challenge, dash
from repro.smp.machine import MachineConfig


class TestCostModel:
    def _picture_counters(self, width, height, bits):
        """Work counters of a fully-coded picture (rough upper bound)."""
        mbs = (width // 16) * (height // 16)
        c = WorkCounters()
        c.bits = bits
        c.macroblocks = mbs
        c.idct_blocks = mbs * 5  # ~80% of blocks coded
        c.mc_macroblocks = int(mbs * 0.6)
        c.mc_pixels = int(mbs * 0.6) * 384
        c.pixels = mbs * 384
        c.headers = 1 + height // 16
        return c

    def test_calibration_hits_paper_table3_at_352x240(self):
        """~30e6 cycles/picture at the paper's 5 Mb/s operating point."""
        c = self._picture_counters(352, 240, bits=167_000)
        cycles = DEFAULT_COST_MODEL.decode_cycles(c)
        assert 24e6 < cycles < 38e6

    def test_sub_linear_growth_with_resolution_at_fixed_bit_rate(self):
        """Table 3 shape: 4x pixels at the same bit rate costs ~2.6x."""
        small = DEFAULT_COST_MODEL.decode_cycles(
            self._picture_counters(352, 240, bits=167_000)
        )
        big = DEFAULT_COST_MODEL.decode_cycles(
            self._picture_counters(704, 480, bits=167_000)
        )
        assert 2.2 < big / small < 3.2

    def test_bit_work_separable(self):
        c0 = WorkCounters()
        c0.bits = 100_000
        assert DEFAULT_COST_MODEL.decode_cycles(c0) == int(82.0 * 100_000)

    def test_scan_rate_matches_table2(self):
        """25 MB must scan in 4.5-6.5 simulated seconds (Table 2)."""
        cycles = DEFAULT_COST_MODEL.scan_cycles(25 * 1024 * 1024)
        assert 4.0 < CHALLENGE.seconds(cycles) < 7.0

    def test_stall_fraction_in_paper_band(self):
        """Fig. 7: 10-30% of time stalled, average ~20%."""
        for pixels in (352 * 240, 704 * 480, 1408 * 960):
            f = DEFAULT_COST_MODEL.stall_fraction(CHALLENGE, pixels)
            assert 0.10 <= f <= 0.30

    def test_stall_grows_with_picture_size(self):
        small = DEFAULT_COST_MODEL.stall_fraction(CHALLENGE, 352 * 240)
        large = DEFAULT_COST_MODEL.stall_fraction(CHALLENGE, 1408 * 960)
        assert large > small

    def test_numa_adds_remote_component(self):
        uma = DEFAULT_COST_MODEL.stall_fraction(CHALLENGE, 704 * 480)
        numa = DEFAULT_COST_MODEL.stall_fraction(dash(32), 704 * 480)
        assert numa > uma + 0.2

    def test_numa_data_placement_reduces_stall(self):
        machine = dash(32)
        naive = DEFAULT_COST_MODEL.stall_fraction(machine, 704 * 480)
        placed = DEFAULT_COST_MODEL.stall_fraction(
            machine, 704 * 480, remote_fraction=0.15
        )
        assert placed < naive

    def test_single_cluster_dash_has_no_remote_traffic(self):
        machine = dash(4)
        f_numa = DEFAULT_COST_MODEL.stall_fraction(machine, 352 * 240)
        f_uma = DEFAULT_COST_MODEL.stall_fraction(CHALLENGE, 352 * 240)
        assert f_numa == pytest.approx(f_uma)


class TestMachineConfig:
    def test_challenge_defaults(self):
        assert CHALLENGE.processors == 16
        assert CHALLENGE.clock_hz == 150e6
        assert not CHALLENGE.is_numa

    def test_seconds_cycles_roundtrip(self):
        assert CHALLENGE.seconds(150_000_000) == pytest.approx(1.0)
        assert CHALLENGE.cycles(0.5) == 75_000_000

    def test_dash_clusters(self):
        m = dash(32)
        assert m.is_numa
        assert m.cluster_of(0) == 0
        assert m.cluster_of(3) == 0
        assert m.cluster_of(4) == 1
        assert m.cluster_of(31) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(name="bad", processors=0)


class TestMemoryTracker:
    def test_curve_and_peak(self):
        t = MemoryTracker()
        t.allocate(0, 100, "frames")
        t.allocate(10, 50, "frames")
        t.free(20, 100, "frames")
        assert t.curve() == [(0, 100), (10, 150), (20, 50)]
        assert t.peak() == 150
        assert t.usage_at(15) == 150
        assert t.usage_at(25) == 50
        assert t.usage_at(-1) == 0

    def test_categories_tracked_separately(self):
        t = MemoryTracker()
        t.allocate(0, 100, "scan")
        t.allocate(5, 200, "frames")
        t.free(9, 100, "scan")
        assert t.peak("scan") == 100
        assert t.peak("frames") == 200
        assert t.peak() == 300
        assert t.final_usage() == {"scan": 0, "frames": 200}

    def test_same_time_events_merge(self):
        t = MemoryTracker()
        t.allocate(5, 10, "x")
        t.allocate(5, 10, "x")
        assert t.curve() == [(5, 20)]

    def test_negative_rejected(self):
        t = MemoryTracker()
        with pytest.raises(ValueError):
            t.allocate(0, -1, "x")
        with pytest.raises(ValueError):
            t.free(0, -1, "x")

    def test_unsorted_insertion_ok(self):
        t = MemoryTracker()
        t.allocate(10, 5, "x")
        t.allocate(0, 7, "x")
        assert t.curve() == [(0, 7), (10, 12)]
