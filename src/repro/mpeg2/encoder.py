"""MPEG-2 encoder: produces the test streams the decoders consume.

The paper generated its streams with the MPEG Software Simulation
Group encoder; this module plays that role.  The structure matches the
classic reference encoder:

* GOP structure ``I (B B P)*`` with configurable size and I/P distance
  (the paper fixes the distance at 3);
* full-search motion estimation with half-pel refinement;
* SAD-based inter/intra mode decision per macroblock;
* one slice per macroblock row (the paper notes its streams, like most
  public ones, have exactly this slice structure);
* optional per-picture proportional rate control for the bit-rate
  robustness experiment (paper Section 3).

The encoder's reconstruction loop *is* the decoder: every reference
picture is decoded back from its own freshly coded bits, making
encoder references and decoder output bit-exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream import (
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_HEADER_CODE,
    BitWriter,
)
from repro.mpeg2.constants import (
    MACROBLOCK_SIZE,
    PictureType,
    quantiser_scale,
)
from repro.mpeg2.dct import fdct
from repro.mpeg2.frame import Frame
from repro.mpeg2.gop import GopStructure
from repro.mpeg2.headers import GopHeader, PictureHeader, SequenceHeader
from repro.mpeg2.macroblock import (
    MacroblockPlan,
    PictureCodingContext,
    decode_slice,
    encode_slice,
)
from repro.mpeg2.motion import MotionVector, full_search, intra_activity
from repro.mpeg2.mv_coding import required_f_code
from repro.mpeg2.quant import quantize_intra, quantize_non_intra
from repro.mpeg2.reconstruct import (
    extract_macroblock,
    form_prediction,
    prediction_blocks,
)
from repro.mpeg2.scan import ALTERNATE, ZIGZAG, scan_block


@dataclass
class EncoderConfig:
    """Knobs of the encoder.

    ``qscale_code`` sets the base quantiser (1..31, quantiser scale is
    twice that).  When ``target_bits_per_picture`` is set, a simple
    proportional controller adapts the quantiser toward that budget —
    enough to produce the "widely varying bit rates" of the paper's
    Section 3 robustness check.
    """

    gop_size: int = 13
    ip_distance: int = 3
    qscale_code: int = 8
    search_range: int = 7
    frame_rate_code: int = 5
    bit_rate: int = 5_000_000
    target_bits_per_picture: int | None = None
    #: Use the MPEG-2 alternate coefficient scan (interlace-oriented).
    alternate_scan: bool = False
    #: Inter mode wins when its SAD <= intra activity + this bias.
    inter_bias: int = 64
    #: Bidirectional mode gets this SAD head start over fwd/bwd-only.
    bi_bias: int = 128

    def __post_init__(self) -> None:
        if not 1 <= self.qscale_code <= 31:
            raise ValueError(f"qscale_code out of range: {self.qscale_code}")
        if self.search_range < 1:
            raise ValueError("search_range must be >= 1")


@dataclass
class _PicturePlan:
    """Mode decisions for one picture: plans per slice row + MV stats."""

    rows: list[list[MacroblockPlan]]
    max_fwd_component: int
    max_bwd_component: int


class _RateController:
    """Proportional quantiser adaptation toward a per-picture bit budget."""

    def __init__(self, base_code: int, target_bits: int | None) -> None:
        self._q = float(base_code)
        self._target = target_bits

    @property
    def qscale_code(self) -> int:
        return int(round(min(max(self._q, 1.0), 31.0)))

    def update(self, actual_bits: int) -> None:
        if self._target is None or actual_bits <= 0:
            return
        ratio = actual_bits / self._target
        # Square-root damping keeps the loop stable across scene cuts.
        self._q = min(max(self._q * ratio**0.5, 1.0), 31.0)


def encode_sequence(frames: list[Frame], config: EncoderConfig | None = None) -> bytes:
    """Encode ``frames`` (display order) into a framed MPEG-2 stream."""
    # Imported here: assembly imports bitstream only, no cycle, but keep
    # the module namespace minimal at import time.
    from repro.mpeg2.assembly import StreamAssembler

    if not frames:
        raise ValueError("cannot encode an empty sequence")
    config = config or EncoderConfig()
    width = frames[0].display_width
    height = frames[0].display_height
    for f in frames:
        if (f.display_width, f.display_height) != (width, height):
            raise ValueError("all frames must share one display size")

    seq = SequenceHeader(
        width=width,
        height=height,
        frame_rate_code=config.frame_rate_code,
        bit_rate=config.bit_rate,
    )
    structure = GopStructure(config.gop_size, config.ip_distance)
    if len(frames) % config.gop_size != 0:
        raise ValueError(
            f"frame count {len(frames)} is not a whole number of "
            f"{config.gop_size}-picture GOPs"
        )

    assembler = StreamAssembler()
    w = BitWriter()
    seq.write(w)
    assembler.add_segment(SEQUENCE_HEADER_CODE, w.getvalue())

    rate = _RateController(config.qscale_code, config.target_bits_per_picture)
    for gop_start in range(0, len(frames), config.gop_size):
        gop_frames = frames[gop_start : gop_start + config.gop_size]
        _encode_gop(
            gop_frames, gop_start, seq, structure, config, assembler, rate
        )
    assembler.add_sequence_end()
    return assembler.getvalue()


def _encode_gop(
    gop_frames: list[Frame],
    gop_start: int,
    seq: SequenceHeader,
    structure: GopStructure,
    config: EncoderConfig,
    assembler,
    rate: _RateController,
) -> None:
    w = BitWriter()
    GopHeader(
        time_code_pictures=gop_start,
        closed_gop=True,
        broken_link=False,
        frame_rate=seq.frame_rate,
    ).write(w)
    assembler.add_segment(GROUP_START_CODE, w.getvalue())

    ref_old: Frame | None = None
    ref_new: Frame | None = None
    for display_idx in structure.coding_order():
        ptype = structure.type_of(display_idx)
        if ptype.is_reference:
            fwd, bwd = ref_new, None
        else:
            fwd, bwd = ref_old, ref_new
        recon = _encode_picture(
            gop_frames[display_idx],
            display_idx,
            ptype,
            fwd,
            bwd,
            seq,
            config,
            assembler,
            rate,
        )
        if ptype.is_reference:
            ref_old, ref_new = ref_new, recon


def _encode_picture(
    source: Frame,
    temporal_reference: int,
    ptype: PictureType,
    fwd: Frame | None,
    bwd: Frame | None,
    seq: SequenceHeader,
    config: EncoderConfig,
    assembler,
    rate: _RateController,
) -> Frame | None:
    """Encode one picture; returns its reconstruction if it is a reference."""
    qscale_code = rate.qscale_code
    plan = _decide_modes(source, ptype, fwd, bwd, config, seq, qscale_code)

    header = PictureHeader(
        temporal_reference=temporal_reference,
        picture_type=ptype,
        forward_f_code=required_f_code(plan.max_fwd_component),
        backward_f_code=required_f_code(plan.max_bwd_component),
        alternate_scan=config.alternate_scan,
    )
    w = BitWriter()
    header.write(w)
    picture_bits = 8 * assembler.add_segment(PICTURE_START_CODE, w.getvalue())

    slice_payloads: list[bytes] = []
    mbw = source.mb_width
    for row, row_plans in enumerate(plan.rows):
        w = BitWriter()
        encode_slice(w, row_plans, row, mbw, qscale_code, header)
        w.align()
        payload = w.getvalue()
        slice_payloads.append(payload)
        picture_bits += 8 * assembler.add_segment(row + 1, payload)
    rate.update(picture_bits)

    if not ptype.is_reference:
        return None
    # Decode-back reconstruction: references are rebuilt from the coded
    # bits themselves, so encoder refs == decoder output bit-for-bit.
    out = Frame.blank(source.display_width, source.display_height)
    out.temporal_reference = temporal_reference
    ctx = PictureCodingContext(seq=seq, pic=header, out=out, fwd=fwd, bwd=bwd)
    for row, payload in enumerate(slice_payloads):
        decode_slice(payload, row + 1, ctx)
    return out


# ======================================================================
# mode decision
# ======================================================================
def _decide_modes(
    source: Frame,
    ptype: PictureType,
    fwd: Frame | None,
    bwd: Frame | None,
    config: EncoderConfig,
    seq: SequenceHeader,
    qscale_code: int,
) -> _PicturePlan:
    qscale = quantiser_scale(qscale_code)
    order = ALTERNATE if config.alternate_scan else ZIGZAG
    mbw, mbh = source.mb_width, source.mb_height
    rows: list[list[MacroblockPlan]] = []
    max_fwd = max_bwd = 0

    for row in range(mbh):
        plans: list[MacroblockPlan] = []
        for col in range(mbw):
            address = row * mbw + col
            first_or_last = col == 0 or col == mbw - 1
            mb_plan, fwd_mag, bwd_mag = _decide_macroblock(
                source, row, col, address, ptype, fwd, bwd, config, seq,
                qscale, order,
            )
            max_fwd = max(max_fwd, fwd_mag)
            max_bwd = max(max_bwd, bwd_mag)
            if mb_plan is None:
                continue
            if _can_skip(mb_plan, plans, ptype, first_or_last):
                continue
            plans.append(mb_plan)
        rows.append(plans)
    return _PicturePlan(rows=rows, max_fwd_component=max_fwd, max_bwd_component=max_bwd)


def _can_skip(
    plan: MacroblockPlan,
    previous: list[MacroblockPlan],
    ptype: PictureType,
    first_or_last: bool,
) -> bool:
    """MPEG skipped-macroblock legality + profitability check."""
    if first_or_last or plan.intra or plan.cbp != 0:
        return False
    if ptype is PictureType.P:
        # P skip reconstructs a co-located copy: requires the zero vector.
        return plan.mv_fwd == MotionVector.ZERO
    if ptype is PictureType.B:
        # B skip repeats the mode and vectors of the last *coded*
        # macroblock (skipped ones don't change that state, so chains
        # of skips against the same coded MB are fine).
        if not previous:
            return False
        prev = previous[-1]
        if prev.intra:
            return False
        return prev.mv_fwd == plan.mv_fwd and prev.mv_bwd == plan.mv_bwd
    return False


def _decide_macroblock(
    source: Frame,
    row: int,
    col: int,
    address: int,
    ptype: PictureType,
    fwd: Frame | None,
    bwd: Frame | None,
    config: EncoderConfig,
    seq: SequenceHeader,
    qscale: int,
    order,
) -> tuple[MacroblockPlan | None, int, int]:
    """Choose the coding mode of one macroblock.

    Returns (plan, max |fwd component|, max |bwd component|); the plan
    is never None (skipping is decided by the caller, which needs
    neighbour context).
    """
    cur = extract_macroblock(source, row, col)
    y0, x0 = row * MACROBLOCK_SIZE, col * MACROBLOCK_SIZE
    luma = source.y[y0 : y0 + 16, x0 : x0 + 16]

    if ptype is PictureType.I:
        return _intra_plan(cur, address, seq, qscale, order), 0, 0

    assert fwd is not None
    est_f = full_search(luma, fwd.y, y0, x0, config.search_range)
    mv_fwd: MotionVector | None = est_f.mv
    mv_bwd: MotionVector | None = None
    best_sad = est_f.sad

    if ptype is PictureType.B:
        assert bwd is not None
        est_b = full_search(luma, bwd.y, y0, x0, config.search_range)
        pred_bi = form_prediction(row, col, est_f.mv, est_b.mv, fwd, bwd)
        sad_bi = int(np.abs(pred_bi.y - luma.astype(np.int32)).sum())
        choices = [
            (est_f.sad, est_f.mv, None),
            (est_b.sad, None, est_b.mv),
            (sad_bi - config.bi_bias, est_f.mv, est_b.mv),
        ]
        best_sad, mv_fwd, mv_bwd = min(choices, key=lambda c: c[0])

    activity = intra_activity(luma)
    if best_sad > activity + config.inter_bias:
        return _intra_plan(cur, address, seq, qscale, order), 0, 0

    pred = form_prediction(row, col, mv_fwd, mv_bwd, fwd, bwd)
    residual = cur - prediction_blocks(pred)
    coeffs = fdct(residual)
    levels = quantize_non_intra(coeffs, seq.non_intra_quant_matrix, qscale)
    plan = MacroblockPlan(
        address=address,
        intra=False,
        levels=scan_block(levels, order),
        mv_fwd=mv_fwd,
        mv_bwd=mv_bwd,
    )
    fwd_mag = max(abs(mv_fwd.dy), abs(mv_fwd.dx)) if mv_fwd else 0
    bwd_mag = max(abs(mv_bwd.dy), abs(mv_bwd.dx)) if mv_bwd else 0
    return plan, fwd_mag, bwd_mag


def _intra_plan(
    cur: np.ndarray, address: int, seq: SequenceHeader, qscale: int,
    order=ZIGZAG,
) -> MacroblockPlan:
    coeffs = fdct(cur)
    levels = quantize_intra(coeffs, seq.intra_quant_matrix, qscale)
    return MacroblockPlan(
        address=address, intra=True, levels=scan_block(levels, order)
    )
