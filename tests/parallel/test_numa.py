"""NUMA placement + task stealing (the Section 7.2 proposal)."""

from __future__ import annotations

import pytest

from repro.parallel import GopLevelDecoder, ParallelConfig, profile_stream
from repro.parallel.numa import PlacedGopDecoder, PlacementPolicy
from repro.parallel.profile import tile_profile
from repro.smp import challenge, dash


@pytest.fixture(scope="module")
def profile(medium_stream):
    p, _ = profile_stream(medium_stream)
    return tile_profile(p, 24)  # 48 GOPs: >= 4 tasks per worker


def numa_cfg(workers, procs=None):
    return ParallelConfig(workers=workers, machine=dash((procs or workers) + 2))


class TestPlacedDecoder:
    def test_requires_numa_machine(self, profile):
        with pytest.raises(ValueError, match="NUMA"):
            PlacedGopDecoder(profile).run(
                ParallelConfig(workers=2, machine=challenge(4))
            )

    def test_all_pictures_displayed_in_order(self, profile):
        result = PlacedGopDecoder(profile).run(numa_cfg(8))
        assert len(result.display_times) == profile.picture_count
        assert result.display_times == sorted(result.display_times)

    def test_round_robin_placement(self, profile):
        result = PlacedGopDecoder(profile).run(numa_cfg(8))
        placement = result.placement
        clusters = dash(10).processors // dash(10).cluster_size
        for gop_index, cluster in placement.items():
            assert cluster == gop_index % clusters

    def test_no_memory_leak(self, profile):
        result = PlacedGopDecoder(profile).run(numa_cfg(8))
        final = result.memory.final_usage()
        assert final.get("frames", 0) == 0
        assert final.get("stream", 0) == 0

    def test_placement_beats_no_placement(self, profile):
        """The point of the proposal: placed decode outruns the naive
        no-placement decode on the same NUMA machine."""
        naive = GopLevelDecoder(profile).run(numa_cfg(12))
        placed = PlacedGopDecoder(profile).run(numa_cfg(12))
        assert placed.pictures_per_second > naive.pictures_per_second * 1.08

    def test_stealing_balances_uneven_clusters(self, profile):
        """With all workers in one cluster but GOPs spread round-robin,
        most tasks must be stolen — and all work still completes."""
        machine = dash(6, cluster_size=2)  # 3 clusters, workers 0..1 in c0
        result = PlacedGopDecoder(profile).run(
            ParallelConfig(workers=2, machine=machine)
        )
        assert len(result.display_times) == profile.picture_count
        # GOPs placed in clusters 1 and 2 (two thirds) had to be stolen.
        assert result.stolen_tasks >= len(profile.gops) // 2

    def test_stealing_cost_visible(self, profile):
        """A run forced to steal everything is slower than a local one."""
        expensive = PlacementPolicy(
            local_remote_fraction=0.1, stolen_remote_fraction=0.9
        )
        machine = dash(6, cluster_size=2)
        all_stolen = PlacedGopDecoder(profile, expensive).run(
            ParallelConfig(workers=2, machine=machine)
        )
        balanced = PlacedGopDecoder(profile, expensive).run(
            ParallelConfig(workers=2, machine=dash(4, cluster_size=2))
        )
        # Same worker count; the 2-cluster machine places half the GOPs
        # at home, the 3-cluster run steals two thirds.
        assert all_stolen.stolen_tasks > balanced.stolen_tasks

    def test_deterministic(self, profile):
        a = PlacedGopDecoder(profile).run(numa_cfg(8))
        b = PlacedGopDecoder(profile).run(numa_cfg(8))
        assert a.finish_cycles == b.finish_cycles
        assert a.stolen_tasks == b.stolen_tasks
