"""Table 2 — scan-process rate (pictures/second scanned).

Paper: the scan process reads a 25 MB / 1120-picture stream in
4.5-6.5 s (170-250 pics/s) at 352x240 and 704x480, and the 45 MB
1408x960 stream in 11-14 s (80-100 pics/s).  We run the scan process
alone on the simulated machine and measure the same rate.
"""

from __future__ import annotations

from repro.analysis import TextTable
from repro.smp import DEFAULT_COST_MODEL, CHALLENGE

from benchmarks.conftest import PAPER_CASES

#: Table 2 rows: (scan seconds range, pics/sec range) for 1120 pictures.
PAPER_TABLE2 = {
    "352x240": ((4.5, 6.5), (170, 250)),
    "704x480": ((4.5, 6.5), (170, 250)),
    "1408x960": ((11.0, 14.0), (80, 100)),
}


def test_table2_scan_rate(benchmark, env, record):
    def run():
        rows = []
        for res in PAPER_CASES:
            profile = env.profile(res, 13, pictures=13)
            bytes_1120 = profile.total_bytes / profile.picture_count * 1120
            cycles = DEFAULT_COST_MODEL.scan_cycles(int(bytes_1120))
            seconds = CHALLENGE.seconds(cycles)
            rows.append((res, bytes_1120 / 1e6, seconds, 1120 / seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["resolution", "file MB (1120 pics)", "scan s", "pics/s",
         "paper scan s", "paper pics/s"],
        title="Table 2: scan process rate",
    )
    for res, mb, secs, rate in rows:
        if res in PAPER_TABLE2:
            (s_lo, s_hi), (r_lo, r_hi) = PAPER_TABLE2[res]
            paper_s, paper_r = f"{s_lo}-{s_hi}", f"{r_lo}-{r_hi}"
        else:
            paper_s = paper_r = "-"
        table.add_row(res, round(mb, 1), round(secs, 1), round(rate), paper_s, paper_r)
    record(table.render())

    # Shape check: the scan rate must sit in (or near) the paper band —
    # our streams' sizes track the paper's, so rates should too.
    for res, mb, secs, rate in rows:
        if res in PAPER_TABLE2:
            (_, _), (r_lo, r_hi) = PAPER_TABLE2[res]
            assert 0.5 * r_lo < rate < 2.0 * r_hi, f"{res}: {rate} pics/s"
