"""Simulation task queues: FIFO, blocking, 2-D availability rules."""

from __future__ import annotations

import pytest

from repro.parallel.profile import profile_stream
from repro.parallel.queues import PictureEntry, SimQueue, SliceTaskQueue
from repro.smp import Compute, Simulator


def drive(body_factories):
    """Run process bodies in one simulator; returns the Simulator."""
    sim = Simulator()
    for name, factory in body_factories:
        sim.add_process(name, factory)
    sim.run()
    return sim


class TestSimQueue:
    def test_fifo_through_blocking_consumer(self):
        q = SimQueue("q", op_cycles=10)
        got = []

        def producer(proc):
            for i in range(5):
                yield Compute(100)
                yield from q.put(i)
            yield from q.close()

        def consumer(proc):
            while True:
                item = yield from q.get()
                if item is None:
                    break
                got.append(item)

        drive([("p", producer), ("c", consumer)])
        assert got == [0, 1, 2, 3, 4]

    def test_close_drains_remaining_items(self):
        q = SimQueue("q", op_cycles=1)
        got = []

        def producer(proc):
            for i in range(3):
                yield from q.put(i)
            yield from q.close()

        def consumer(proc):
            yield Compute(10_000)  # start late: everything queued+closed
            while True:
                item = yield from q.get()
                if item is None:
                    break
                got.append(item)

        drive([("p", producer), ("c", consumer)])
        assert got == [0, 1, 2]

    def test_put_after_close_rejected(self):
        q = SimQueue("q", op_cycles=1)

        def producer(proc):
            yield from q.close()
            yield from q.put(1)

        with pytest.raises(RuntimeError, match="closed"):
            drive([("p", producer)])

    def test_max_depth_tracked(self):
        q = SimQueue("q", op_cycles=1)

        def producer(proc):
            for i in range(7):
                yield from q.put(i)
            yield from q.close()

        def consumer(proc):
            yield Compute(1000)
            while (yield from q.get()) is not None:
                pass

        drive([("p", producer), ("c", consumer)])
        assert q.max_depth == 7


@pytest.fixture(scope="module")
def make_entries(medium_stream):
    """Factory for fresh coding-order picture entries (entries are
    mutated by the queue, so each run needs its own)."""
    from repro.parallel.slice_level import SliceLevelDecoder

    profile, _ = profile_stream(medium_stream)
    decoder = SliceLevelDecoder(profile)
    return decoder._build_entries


class TestSliceTaskQueue:
    def _run(self, entries, mode, workers):
        """Feed all entries then let workers drain; record claim order."""
        q = SliceTaskQueue("q", op_cycles=1, mode=mode)
        claims = []

        def scan(proc):
            for e in entries:
                yield from q.add_picture(e)
            yield from q.finish_feeding()

        def worker(wid):
            def body(proc):
                while True:
                    task = yield from q.get_slice()
                    if task is None:
                        break
                    claims.append((wid, task.entry.order, task.slice_index))
                    yield Compute(500)
                    yield from q.complete_slice(task)
            return body

        sim = Simulator()
        sim.add_process("scan", scan)
        for w in range(workers):
            sim.add_process(f"w{w}", worker(w))
        sim.run()
        return claims, q

    def test_all_slices_claimed_exactly_once(self, make_entries):
        total = sum(len(e.picture.slices) for e in make_entries())
        for mode in ("simple", "improved"):
            claims, q = self._run(make_entries(), mode, workers=4)
            assert len(claims) == total
            assert len({(o, s) for _, o, s in claims}) == total
            assert q.pictures_complete == len(q.entries)

    def test_simple_mode_is_strictly_picture_ordered(self, make_entries):
        claims, _ = self._run(make_entries(), "simple", workers=4)
        orders = [o for _, o, _ in claims]
        assert orders == sorted(orders)

    def test_improved_mode_interleaves_b_pictures(self, make_entries):
        """With dependencies satisfied, slices of consecutive pictures
        may be claimed out of strict order — that's the extra
        concurrency the improved version exposes."""
        claims, _ = self._run(make_entries(), "improved", workers=8)
        orders = [o for _, o, _ in claims]
        assert orders != sorted(orders)

    def test_improved_never_starts_before_references_complete(self, make_entries):
        entries = make_entries()
        q = SliceTaskQueue("q", op_cycles=1, mode="improved")
        violations = []

        def scan(proc):
            for e in entries:
                yield from q.add_picture(e)
            yield from q.finish_feeding()

        def worker(proc):
            while True:
                task = yield from q.get_slice()
                if task is None:
                    break
                for dep in task.entry.dependencies:
                    if not q.entries[dep].complete:
                        violations.append((task.entry.order, dep))
                yield Compute(997)
                yield from q.complete_slice(task)

        sim = Simulator()
        sim.add_process("scan", scan)
        for w in range(6):
            sim.add_process(f"w{w}", worker)
        sim.run()
        assert violations == []

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SliceTaskQueue("q", 1, "bogus")
